// Span tracer: RAII scoped spans, instant events and counter tracks
// recorded into per-thread ring buffers and exported as Chrome
// trace-event JSON — the file chrome://tracing and Perfetto load
// directly. Built for "always compiled in, almost always off":
//
//   * runtime-off fast path — every record first checks one relaxed
//     atomic bool and returns; a disabled tracer costs a load+branch;
//   * compile-out — building with ACSEL_OBS_NO_TRACING (CMake option
//     ACSEL_OBS_TRACING=OFF) turns the ACSEL_OBS_* macros into no-ops,
//     removing even that load from instrumented call sites;
//   * bounded memory — each thread writes a fixed-capacity ring;
//     overflow overwrites the oldest events and counts the drops, so a
//     day-long run can leave tracing on and still export the tail.
//
// Timestamps are monotonic nanoseconds since the tracer's construction
// (steady_clock), exported as microseconds per the trace-event spec.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace acsel::obs {

enum class TraceEventType : std::uint8_t {
  Complete,  ///< a span: ts + duration ("ph":"X")
  Instant,   ///< a point event ("ph":"i")
  Counter,   ///< one sample of a counter track ("ph":"C")
};

struct TraceEvent {
  std::string name;
  std::string category;
  TraceEventType type = TraceEventType::Instant;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< Complete only
  double value = 0.0;        ///< Counter only
  int tid = 0;               ///< small per-thread id assigned by the tracer
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer the instrumentation macros record into
  /// (never destroyed; starts disabled).
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic nanoseconds since construction — the timebase of every
  /// recorded event.
  std::uint64_t now_ns() const;

  /// Records a finished span [start_ns, start_ns + dur_ns). No-op while
  /// disabled.
  void record_complete(std::string name, std::string category,
                       std::uint64_t start_ns, std::uint64_t dur_ns);
  /// Records a point event at now. No-op while disabled.
  void record_instant(std::string name, std::string category);
  /// Records one sample of the counter track `name` at now. No-op while
  /// disabled.
  void record_counter(std::string name, double value);

  /// All buffered events from every thread, sorted by timestamp.
  std::vector<TraceEvent> collected() const;
  /// Events overwritten by ring overflow, across all threads.
  std::uint64_t dropped() const;
  /// Empties every ring (buffers stay allocated; references stay valid).
  void clear();

  /// Writes {"traceEvents": [...], "displayTimeUnit": "ms"} — the Chrome
  /// trace-event JSON object format.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;  // circular once at capacity
    std::size_t next = 0;            // overwrite cursor
    std::uint64_t dropped = 0;
    int tid = 0;
  };

  Ring& ring_for_this_thread();
  void push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  const std::size_t ring_capacity_;
  const std::uint64_t tracer_id_;  // process-unique, for thread caches
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex rings_mu_;
  std::map<std::thread::id, std::unique_ptr<Ring>> rings_;
  int next_tid_ = 1;
};

/// RAII span: samples the clock on construction (when the tracer is
/// enabled) and records a Complete event on destruction. Cheap to place
/// on hot paths — a disabled tracer reduces it to one relaxed load.
class Span {
 public:
  Span(Tracer& tracer, std::string name, std::string category)
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      name_ = std::move(name);
      category_ = std::move(category);
      start_ns_ = tracer_->now_ns();
    }
  }

  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->record_complete(std::move(name_), std::move(category_),
                               start_ns_, tracer_->now_ns() - start_ns_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;  // nullptr when the tracer was disabled at entry
  std::string name_;
  std::string category_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace acsel::obs

// Instrumentation macros. Compile to nothing under ACSEL_OBS_NO_TRACING;
// otherwise record into Tracer::global() with a one-load fast path while
// tracing is off.
#ifdef ACSEL_OBS_NO_TRACING
#define ACSEL_OBS_SPAN(name, category) \
  do {                                 \
  } while (false)
#define ACSEL_OBS_INSTANT(name, category) \
  do {                                    \
  } while (false)
#define ACSEL_OBS_COUNTER(name, value) \
  do {                                 \
  } while (false)
#else
#define ACSEL_OBS_CONCAT_INNER(a, b) a##b
#define ACSEL_OBS_CONCAT(a, b) ACSEL_OBS_CONCAT_INNER(a, b)
#define ACSEL_OBS_SPAN(name, category)                        \
  ::acsel::obs::Span ACSEL_OBS_CONCAT(acsel_obs_span_,        \
                                      __LINE__){              \
      ::acsel::obs::Tracer::global(), name, category}
#define ACSEL_OBS_INSTANT(name, category) \
  ::acsel::obs::Tracer::global().record_instant(name, category)
#define ACSEL_OBS_COUNTER(name, value) \
  ::acsel::obs::Tracer::global().record_counter(name, value)
#endif
