// Span tracer: RAII scoped spans, instant events and counter tracks
// recorded into per-thread ring buffers and exported as Chrome
// trace-event JSON — the file chrome://tracing and Perfetto load
// directly. Built for "always compiled in, almost always off":
//
//   * runtime-off fast path — every record first checks one relaxed
//     atomic bool and returns; a disabled tracer costs a load+branch;
//   * compile-out — building with ACSEL_OBS_NO_TRACING (CMake option
//     ACSEL_OBS_TRACING=OFF) turns the ACSEL_OBS_* macros into no-ops,
//     removing even that load from instrumented call sites;
//   * bounded memory — each thread writes a fixed-capacity ring;
//     overflow overwrites the oldest events and counts the drops (the
//     obs.trace.dropped_events counter in the global registry, plus the
//     "droppedEvents" field of the Chrome export), so a day-long run can
//     leave tracing on and still export the tail.
//
// Distributed tracing: a TraceContext names one request's trace
// (trace_id), the caller's span (span_id) and its parent, plus the
// sampling verdict. The context travels across threads and processes
// explicitly — installed with ScopedTraceContext at every boundary (a
// worker picking up a queued job, a server decoding a wire frame) — and
// implicitly within a thread: a Span constructed while a sampled context
// is installed stamps its events with the trace, allocates itself a
// process-unique span id, and becomes the parent of spans nested under
// it. Events carry the ids into the export, where obs::Collector merges
// rings from many processes into end-to-end traces.
//
// Timestamps are monotonic nanoseconds since the tracer's construction
// (steady_clock), exported as microseconds per the trace-event spec.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace acsel::obs {

class Counter;

/// One request's position in a distributed trace. Zero ids mean "none":
/// a default-constructed context is the absence of a trace, and spans
/// recorded under it carry no ids. `sampled` is the head-based sampling
/// verdict — it rides the wire so every hop of a sampled request traces,
/// and no hop of an unsampled one does.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  bool sampled = false;

  /// A context that makes downstream spans record: a nonzero trace with
  /// the sampling bit set.
  bool active() const { return sampled && trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// The calling thread's installed trace context (all-zero when none).
const TraceContext& current_trace_context();

/// Installs `context` as the calling thread's trace context for the
/// current scope; restores the previous context on destruction. Use at
/// propagation boundaries: a worker thread adopting a queued request's
/// context, a server adopting the context decoded from a wire frame.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

enum class TraceEventType : std::uint8_t {
  Complete,  ///< a span: ts + duration ("ph":"X")
  Instant,   ///< a point event ("ph":"i")
  Counter,   ///< one sample of a counter track ("ph":"C")
};

struct TraceEvent {
  std::string name;
  std::string category;
  TraceEventType type = TraceEventType::Instant;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  ///< Complete only
  double value = 0.0;        ///< Counter only
  int tid = 0;               ///< small per-thread id assigned by the tracer
  // Distributed-trace ids (0 = the event belongs to no trace).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer the instrumentation macros record into
  /// (never destroyed; starts disabled).
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic nanoseconds since construction — the timebase of every
  /// recorded event.
  std::uint64_t now_ns() const;

  /// Allocates a process-unique span id (never 0, never reused).
  static std::uint64_t new_span_id();

  /// Records a finished span [start_ns, start_ns + dur_ns). No-op while
  /// disabled.
  void record_complete(std::string name, std::string category,
                       std::uint64_t start_ns, std::uint64_t dur_ns);
  /// Records a finished span stamped with explicit trace ids: the event
  /// is span `context.span_id` of trace `context.trace_id`, child of
  /// `context.parent_id`. For post-hoc recording (e.g. simulated-time
  /// replica slots) where RAII scoping cannot apply.
  void record_complete(std::string name, std::string category,
                       std::uint64_t start_ns, std::uint64_t dur_ns,
                       const TraceContext& context);
  /// Records a point event at now. No-op while disabled. Stamped with the
  /// calling thread's current trace context when that context is sampled.
  void record_instant(std::string name, std::string category);
  /// Records one sample of the counter track `name` at now. No-op while
  /// disabled.
  void record_counter(std::string name, double value);

  /// All buffered events from every thread, sorted by timestamp.
  std::vector<TraceEvent> collected() const;
  /// Events overwritten by ring overflow, across all threads.
  std::uint64_t dropped() const;
  /// Empties every ring (buffers stay allocated; references stay valid).
  void clear();

  /// Writes {"traceEvents": [...], "droppedEvents": N,
  /// "displayTimeUnit": "ms"} — the Chrome trace-event JSON object
  /// format. Events with trace ids carry them in "args" (decimal
  /// strings, since a u64 does not survive a JSON double).
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;  // circular once at capacity
    std::size_t next = 0;            // overwrite cursor
    std::uint64_t dropped = 0;
    int tid = 0;
  };

  Ring& ring_for_this_thread();
  void push(TraceEvent event);

  std::atomic<bool> enabled_{false};
  const std::size_t ring_capacity_;
  const std::uint64_t tracer_id_;  // process-unique, for thread caches
  const std::chrono::steady_clock::time_point epoch_;
  /// obs.trace.dropped_events in Registry::global() — every overwrite is
  /// surfaced through the registry's text/CSV/JSON exporters and the
  /// stats scrape, not just the tracer's own dropped() accessor.
  Counter* dropped_counter_;

  mutable std::mutex rings_mu_;
  std::map<std::thread::id, std::unique_ptr<Ring>> rings_;
  int next_tid_ = 1;
};

/// RAII span: samples the clock on construction (when the tracer is
/// enabled) and records a Complete event on destruction. Cheap to place
/// on hot paths — a disabled tracer reduces it to one relaxed load.
///
/// When the constructing thread has a sampled TraceContext installed, the
/// span joins the trace: it allocates a span id, records its parent from
/// the context, and installs itself as the thread's current context for
/// its lifetime — spans nested under it (and wire frames encoded under
/// it) chain to it automatically.
class Span {
 public:
  Span(Tracer& tracer, std::string name, std::string category);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's position in its trace: {trace_id, span_id = this span,
  /// parent_id = enclosing span}. All-zero when the span is not part of
  /// a sampled trace (or the tracer was disabled at entry).
  const TraceContext& context() const { return context_; }

 private:
  Tracer* tracer_;  // nullptr when the tracer was disabled at entry
  std::string name_;
  std::string category_;
  std::uint64_t start_ns_ = 0;
  TraceContext context_;   // this span's ids (zero outside a trace)
  TraceContext previous_;  // thread context to restore on destruction
  bool scoped_ = false;    // whether we installed context_ as current
};

/// Writes one event as a Chrome trace-event JSON object under process id
/// `pid`. Shared by the Tracer export (pid 1) and the Collector's merged
/// multi-process export.
void write_trace_event_json(const TraceEvent& event, int pid,
                            std::ostream& out);

}  // namespace acsel::obs

// Instrumentation macros. Compile to nothing under ACSEL_OBS_NO_TRACING;
// otherwise record into Tracer::global() with a one-load fast path while
// tracing is off.
#ifdef ACSEL_OBS_NO_TRACING
#define ACSEL_OBS_SPAN(name, category) \
  do {                                 \
  } while (false)
#define ACSEL_OBS_INSTANT(name, category) \
  do {                                    \
  } while (false)
#define ACSEL_OBS_COUNTER(name, value) \
  do {                                 \
  } while (false)
#else
#define ACSEL_OBS_CONCAT_INNER(a, b) a##b
#define ACSEL_OBS_CONCAT(a, b) ACSEL_OBS_CONCAT_INNER(a, b)
#define ACSEL_OBS_SPAN(name, category)                        \
  ::acsel::obs::Span ACSEL_OBS_CONCAT(acsel_obs_span_,        \
                                      __LINE__){              \
      ::acsel::obs::Tracer::global(), name, category}
#define ACSEL_OBS_INSTANT(name, category) \
  ::acsel::obs::Tracer::global().record_instant(name, category)
#define ACSEL_OBS_COUNTER(name, value) \
  ::acsel::obs::Tracer::global().record_counter(name, value)
#endif
