// Declarative SLOs with Google-SRE multi-window burn-rate alerting,
// evaluated per tick against the SeriesStore. An SLO is a ratio SLI
// (numerator/denominator series deltas per tick: delivered-fraction) or a
// value SLI (a gauge/quantile series compared against a bound: p99 below
// an objective, cap exceedance at most a target). Each tick contributes
// one good/bad bit per SLO; burn rate over a window is
//
//   burn = (bad fraction over window) / error_budget
//
// and an alert fires only when BOTH the fast window (default 5 ticks)
// and the slow window (default 60 ticks) burn at or above the threshold
// (default 14.4 — the SRE-workbook "2% of a 30-day budget in an hour"
// page rate). The fast window makes alerts clear quickly once the
// condition ends; the slow window keeps one bad tick from paging.
//
// Alerts are deterministic records, not callbacks: fired/cleared ticks,
// burn rates at fire time, and annotations snapshotted from the same
// store — membership transitions and adapt promotions/rollbacks over the
// fast window (was the fleet reconfiguring when this fired?) plus
// exemplar trace ids pulled from a configured histogram, so an alert
// links directly to a mergeable end-to-end trace of a slow request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/series.h"

namespace acsel::obs {

class Registry;

/// How a value SLI compares against its objective.
enum class SloKind : std::uint8_t {
  RatioAtLeast = 0,  ///< delta(num)/delta(den) per tick must be >= objective
  ValueBelow = 1,    ///< series value per tick must be < objective
  ValueAtMost = 2,   ///< series value per tick must be <= objective
};

const char* to_string(SloKind kind);

/// One service-level objective over SeriesStore series.
struct Slo {
  std::string name;
  SloKind kind = SloKind::RatioAtLeast;
  /// RatioAtLeast: numerator/denominator series (cumulative counters;
  /// per-tick deltas form the ratio; a tick with denominator delta <= 0
  /// is vacuously good). Value kinds: `numerator` is the series compared,
  /// `denominator` unused.
  std::string numerator;
  std::string denominator;
  double objective = 0.999;
  /// Fraction of ticks allowed to be bad (burn = bad_fraction / budget).
  double error_budget = 0.001;
  /// Histogram metric whose exemplars annotate alerts ("" = none).
  std::string exemplar_metric;
};

struct BurnRateOptions {
  std::uint64_t fast_window = 5;
  std::uint64_t slow_window = 60;
  double burn_threshold = 14.4;
};

/// One deterministic alert record. `cleared_tick` is 0 while active.
struct Alert {
  std::string slo;
  std::uint64_t fired_tick = 0;
  std::uint64_t cleared_tick = 0;
  double fast_burn = 0.0;   ///< at fire time
  double slow_burn = 0.0;   ///< at fire time
  double worst_value = 0.0; ///< worst SLI value over the fast window
  /// Fleet/adapt context over the fast window at fire time.
  double membership_transitions = 0.0;
  double promotions = 0.0;
  double rollbacks = 0.0;
  /// Trace ids of the slowest exemplars of the configured histogram.
  std::vector<std::uint64_t> exemplar_trace_ids;

  bool active() const { return cleared_tick == 0; }
};

/// Live evaluation state surfaced by the stats scrape.
struct SloState {
  std::string name;
  double sli = 0.0;  ///< last tick's SLI value
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool firing = false;
};

class SloEngine {
 public:
  explicit SloEngine(BurnRateOptions burn = {});

  void add(Slo slo);
  const std::vector<Slo>& slos() const { return slos_; }
  const BurnRateOptions& burn_options() const { return burn_; }

  /// Evaluates every SLO against the store at its current tick — call
  /// once per observe(). `registry` (optional) supplies histogram
  /// exemplars for alert annotations. Returns alerts that FIRED on this
  /// tick (the same records are retained in alerts()).
  std::vector<Alert> evaluate(const SeriesStore& store,
                              Registry* registry = nullptr);

  /// Every alert ever fired, in fire order (active ones last-cleared).
  const std::vector<Alert>& alerts() const { return alerts_; }
  /// Alerts currently firing.
  std::vector<Alert> active_alerts() const;
  /// Per-SLO live state as of the last evaluate().
  const std::vector<SloState>& states() const { return states_; }

 private:
  struct PerSlo {
    std::deque<bool> bad_bits;    // newest at back, bounded by slow_window
    std::deque<double> sli_vals;  // newest at back, bounded by fast_window
    double last_num = 0.0;
    double last_den = 0.0;
    bool have_last = false;
    bool firing = false;
    std::size_t alert_index = 0;  // into alerts_ while firing
  };

  double burn_over(const PerSlo& state, std::uint64_t window) const;

  BurnRateOptions burn_;
  std::vector<Slo> slos_;
  std::vector<PerSlo> per_slo_;
  std::vector<SloState> states_;
  std::vector<Alert> alerts_;
};

}  // namespace acsel::obs
