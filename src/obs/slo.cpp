#include "obs/slo.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"

namespace acsel::obs {

const char* to_string(SloKind kind) {
  switch (kind) {
    case SloKind::RatioAtLeast:
      return "ratio_at_least";
    case SloKind::ValueBelow:
      return "value_below";
    case SloKind::ValueAtMost:
      return "value_at_most";
  }
  return "?";
}

SloEngine::SloEngine(BurnRateOptions burn) : burn_(burn) {
  ACSEL_CHECK_MSG(burn_.fast_window > 0 && burn_.slow_window > 0,
                  "burn-rate windows must be positive");
  ACSEL_CHECK_MSG(burn_.fast_window <= burn_.slow_window,
                  "fast window must not exceed the slow window");
  ACSEL_CHECK_MSG(burn_.burn_threshold > 0.0,
                  "burn threshold must be positive");
}

void SloEngine::add(Slo slo) {
  ACSEL_CHECK_MSG(!slo.name.empty(), "SLO name must be non-empty");
  ACSEL_CHECK_MSG(!slo.numerator.empty(),
                  "SLO \"" + slo.name + "\" needs a series");
  ACSEL_CHECK_MSG(slo.kind != SloKind::RatioAtLeast ||
                      !slo.denominator.empty(),
                  "ratio SLO \"" + slo.name + "\" needs a denominator");
  ACSEL_CHECK_MSG(slo.error_budget > 0.0,
                  "SLO \"" + slo.name + "\" needs a positive error budget");
  slos_.push_back(std::move(slo));
  per_slo_.emplace_back();
  states_.push_back(SloState{slos_.back().name});
}

double SloEngine::burn_over(const PerSlo& state, std::uint64_t window) const {
  if (state.bad_bits.empty()) {
    return 0.0;
  }
  const std::size_t n =
      std::min<std::size_t>(window, state.bad_bits.size());
  std::size_t bad = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (state.bad_bits[state.bad_bits.size() - 1 - i]) {
      ++bad;
    }
  }
  const double fraction = static_cast<double>(bad) / static_cast<double>(n);
  return fraction;  // caller divides by the budget
}

std::vector<Alert> SloEngine::evaluate(const SeriesStore& store,
                                       Registry* registry) {
  std::vector<Alert> fired;
  const std::uint64_t tick = store.ticks();
  if (tick == 0) {
    return fired;
  }
  for (std::size_t i = 0; i < slos_.size(); ++i) {
    const Slo& slo = slos_[i];
    PerSlo& state = per_slo_[i];

    // One good/bad bit for this tick.
    bool bad = false;
    double sli = 0.0;
    switch (slo.kind) {
      case SloKind::RatioAtLeast: {
        const double num = store.latest(slo.numerator).value_or(0.0);
        const double den = store.latest(slo.denominator).value_or(0.0);
        const double dnum = state.have_last ? num - state.last_num : num;
        const double dden = state.have_last ? den - state.last_den : den;
        state.last_num = num;
        state.last_den = den;
        state.have_last = true;
        if (dden <= 0.0) {
          sli = 1.0;  // no traffic this tick: vacuously good
        } else {
          sli = dnum / dden;
          bad = sli < slo.objective;
        }
        break;
      }
      case SloKind::ValueBelow: {
        sli = store.latest(slo.numerator).value_or(0.0);
        bad = sli >= slo.objective;
        break;
      }
      case SloKind::ValueAtMost: {
        sli = store.latest(slo.numerator).value_or(0.0);
        bad = sli > slo.objective;
        break;
      }
    }
    state.bad_bits.push_back(bad);
    while (state.bad_bits.size() > burn_.slow_window) {
      state.bad_bits.pop_front();
    }
    state.sli_vals.push_back(sli);
    while (state.sli_vals.size() > burn_.fast_window) {
      state.sli_vals.pop_front();
    }

    const double fast_burn =
        burn_over(state, burn_.fast_window) / slo.error_budget;
    const double slow_burn =
        burn_over(state, burn_.slow_window) / slo.error_budget;
    const bool fast_hot = fast_burn >= burn_.burn_threshold;
    const bool slow_hot = slow_burn >= burn_.burn_threshold;

    if (!state.firing && fast_hot && slow_hot) {
      Alert alert;
      alert.slo = slo.name;
      alert.fired_tick = tick;
      alert.fast_burn = fast_burn;
      alert.slow_burn = slow_burn;
      // Worst SLI over the fast window: lowest ratio, highest value.
      double worst = sli;
      for (const double v : state.sli_vals) {
        worst = slo.kind == SloKind::RatioAtLeast ? std::min(worst, v)
                                                  : std::max(worst, v);
      }
      alert.worst_value = worst;
      // Incident context over the slow window: churn that *preceded* the
      // burn (a node detected dead ticks before both windows went hot)
      // still belongs on the alert.
      alert.membership_transitions =
          store.delta("fleet.membership_transitions", burn_.slow_window);
      alert.promotions = store.delta("adapt.promotions", burn_.slow_window);
      alert.rollbacks = store.delta("adapt.rollbacks", burn_.slow_window);
      if (registry != nullptr && !slo.exemplar_metric.empty()) {
        for (const Histogram::Exemplar& exemplar :
             registry->histogram(slo.exemplar_metric).exemplars()) {
          alert.exemplar_trace_ids.push_back(exemplar.trace_id);
        }
      }
      state.firing = true;
      state.alert_index = alerts_.size();
      alerts_.push_back(alert);
      fired.push_back(alert);
    } else if (state.firing && !fast_hot) {
      // Fast-window recovery clears the page; the slow window keeps its
      // memory so a flapping condition re-fires immediately.
      alerts_[state.alert_index].cleared_tick = tick;
      state.firing = false;
    }

    states_[i].sli = sli;
    states_[i].fast_burn = fast_burn;
    states_[i].slow_burn = slow_burn;
    states_[i].firing = state.firing;
  }
  return fired;
}

std::vector<Alert> SloEngine::active_alerts() const {
  std::vector<Alert> out;
  for (const Alert& alert : alerts_) {
    if (alert.active()) {
      out.push_back(alert);
    }
  }
  return out;
}

}  // namespace acsel::obs
