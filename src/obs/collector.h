// Cross-process trace assembly: merges the per-process (per-Tracer) event
// rings of a distributed request path into end-to-end traces keyed by
// trace_id, computes each trace's critical path, and exports the merged
// set as one Chrome/Perfetto JSON file with a pid per ingested process.
//
// The collector is an offline tool, not a hot-path object: benches and
// the demo ingest rings after (or between) measurement windows, and tests
// feed hand-built event sets. It is deliberately tolerant of the messes a
// real fleet produces — events arrive out of timestamp order (rings are
// per-thread and per-process), spans may reference parents whose events
// were overwritten by ring overflow (orphans are treated as roots), and a
// shard's ring may be missing entirely (the trace assembles from what
// survived).
//
// Critical path: starting from the trace's root span (the span whose
// parent is absent and whose interval extends furthest), repeatedly
// descend into the child that completed last *without outliving its
// parent* — children that finished after the parent closed (a replica
// slot slower than the voting quorum, a hedge that lost the race) did not
// determine the parent's latency and are skipped. The resulting chain is
// exactly "which replica's reply, or which hedge, made this request as
// slow as it was".
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace acsel::obs {

class Tracer;

/// One ingested event plus the process it came from.
struct CollectedEvent {
  TraceEvent event;
  std::uint32_t process = 0;  ///< index into Collector::processes()
};

/// One assembled end-to-end trace.
struct MergedTrace {
  std::uint64_t trace_id = 0;
  /// Every ingested event of the trace, sorted by (ts, span_id).
  std::vector<CollectedEvent> events;
  /// Index into `events` of the root span (the Complete event chosen as
  /// the trace's origin); events.size() when the trace has no Complete
  /// event at all.
  std::size_t root = 0;
  /// Indices into `events` of the critical path, root first.
  std::vector<std::size_t> critical_path;
  /// Extent of the trace on its timeline.
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  /// Spans whose parent_id resolved to no ingested span (ring overflow or
  /// a missing process) — they are attached as additional roots.
  std::size_t orphan_spans = 0;

  bool empty() const { return events.empty(); }
};

class Collector {
 public:
  /// Copies every event out of `tracer`'s rings under the process name.
  /// Repeat per process (per replica, per node) to merge a fleet.
  void ingest(const Tracer& tracer, const std::string& process);
  /// Ingests an explicit event set (tests, pre-collected rings).
  void ingest(std::span<const TraceEvent> events, const std::string& process);

  /// Distinct trace ids seen so far, ascending.
  std::vector<std::uint64_t> trace_ids() const;

  /// Assembles the merged trace for `trace_id` (empty result when the id
  /// was never seen). Events without trace ids are never part of a trace.
  MergedTrace assemble(std::uint64_t trace_id) const;

  /// Process names in ingestion order; CollectedEvent::process and the
  /// export's pids (index + 1) refer to this table.
  const std::vector<std::string>& processes() const { return processes_; }

  std::size_t size() const { return events_.size(); }

  /// Writes every ingested event — traced or not — as one Chrome
  /// trace-event JSON object, pid-separated per process and annotated
  /// with process_name metadata records, so Perfetto renders the fleet
  /// as one timeline with a track group per process.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::vector<std::string> processes_;
  std::vector<CollectedEvent> events_;
};

}  // namespace acsel::obs
