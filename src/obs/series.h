// Time-series store over the metric registry: observe() snapshots a
// registry on the caller's tick cadence and appends one point per scalar
// series into fixed-capacity ring buffers, so "what did this metric do
// over the last minute" is answerable from inside the process — the SLO
// engine's burn-rate windows, the stats scrape's series block, and the
// benches' verdicts all read from here.
//
// Expansion rule (one MetricSnapshot row -> scalar series):
//   counter "x"    -> series "x"        (cumulative count, as a double)
//   gauge "x"      -> series "x"        (last written value)
//   histogram "x"  -> "x.count", "x.p50_us", "x.p99_us", "x.max_us"
//
// Time is the observation tick (1-based, advanced by observe()), never a
// wall clock — a chaos soak replays bit-for-bit under a fixed fault seed,
// and so do the alerts computed from these rings. Memory is bounded by
// construction: series_count * capacity points, oldest overwritten.
//
// Single-writer contract: observe() is called from one driver thread
// (the fleet tick loop); readers take the same mutex, so scrapes may
// interleave with ticks safely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace acsel::obs {

/// One retained observation of one series.
struct SeriesPoint {
  std::uint64_t tick = 0;
  double value = 0.0;

  friend bool operator==(const SeriesPoint&, const SeriesPoint&) = default;
};

/// Aggregates over a window of retained points.
struct SeriesRollup {
  std::uint64_t points = 0;  ///< points aggregated (0 = empty window)
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double avg = 0.0;

  friend bool operator==(const SeriesRollup&, const SeriesRollup&) = default;
};

/// One scalar series: a fixed-capacity ring of (tick, value) points.
class Series {
 public:
  Series(std::string name, std::size_t capacity);

  const std::string& name() const { return name_; }
  std::size_t size() const { return points_.size(); }

  void append(std::uint64_t tick, double value);

  /// Retained points, oldest first.
  std::vector<SeriesPoint> points() const;

  /// The newest value (nullopt when nothing retained).
  std::optional<double> latest() const;
  /// The value at exactly `tick` (nullopt when not retained).
  std::optional<double> at_tick(std::uint64_t tick) const;

  /// Rollup over ticks in (now_tick - window, now_tick].
  SeriesRollup rollup(std::uint64_t window, std::uint64_t now_tick) const;

  /// Change over the window: value(now_tick) - value(oldest retained tick
  /// > now_tick - window). For cumulative counters this is the per-window
  /// delta; 0 when fewer than two points are in range.
  double delta(std::uint64_t window, std::uint64_t now_tick) const;

 private:
  std::string name_;
  std::size_t capacity_;
  std::vector<SeriesPoint> points_;  // circular once at capacity
  std::size_t next_ = 0;             // overwrite cursor
};

class SeriesStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit SeriesStore(std::size_t capacity = kDefaultCapacity);
  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  /// Appends one point per expanded series at the next tick; returns the
  /// tick just recorded (1-based). Metrics appearing for the first time
  /// start their series at the current tick (no backfill).
  std::uint64_t observe(const std::vector<MetricSnapshot>& snapshot);

  /// Ticks recorded so far (the tick of the newest point).
  std::uint64_t ticks() const;
  std::size_t capacity() const { return capacity_; }

  /// Expanded series names, ascending.
  std::vector<std::string> names() const;

  std::optional<double> latest(const std::string& series) const;
  std::optional<double> at_tick(const std::string& series,
                                std::uint64_t tick) const;
  /// Rollup of `series` over the trailing `window` ticks (empty rollup
  /// for an unknown series).
  SeriesRollup rollup(const std::string& series, std::uint64_t window) const;
  /// Per-window delta of `series` (0 for an unknown series).
  double delta(const std::string& series, std::uint64_t window) const;
  /// Retained points of `series`, oldest first (empty for unknown).
  std::vector<SeriesPoint> points(const std::string& series) const;

 private:
  Series& series_for(const std::string& name);  // mu_ held by caller

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t tick_ = 0;
  std::map<std::string, Series> series_;
};

}  // namespace acsel::obs
