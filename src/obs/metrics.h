// Process-wide metric registry: named counters, gauges and log-bucketed
// histograms with relaxed-atomic hot paths. Generalizes the serving
// layer's former private LatencyHistogram so every subsystem — the online
// runtime, the trainer, the serving layer — counts through one mechanism
// and one snapshot/export path (text table, CSV, JSON, and the serve wire
// protocol's StatsResponse all render the same MetricSnapshot rows).
//
// Hot-path contract: add()/set()/record() are wait-free (relaxed atomics
// on independent cells). Snapshots tolerate being a few events torn — the
// standard histogram trade for zero hot-path locking. Registration
// (looking a metric up by name) takes a mutex; callers on hot paths
// register once and keep the returned reference, which stays valid for
// the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/csv.h"

namespace acsel::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram of nonnegative integer samples (canonically nanoseconds; the
/// snapshot reports microseconds) with four buckets per power-of-two
/// octave — quarter-octave resolution, so quantile estimates overshoot by
/// at most ~19%. Covers 1 ns .. ~9 s; larger samples clamp into the last
/// bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 132;  // 33 octaves * 4
  /// Exemplars retained per histogram (the slowest samples seen).
  static constexpr std::size_t kExemplarSlots = 4;

  Histogram();

  /// Records one sample. Wait-free; safe from any thread.
  void record(std::uint64_t nanos);

  /// A sample annotated with the distributed trace that produced it —
  /// the link from "p99 is burning" to "this exact request was slow".
  struct Exemplar {
    std::uint64_t nanos = 0;
    std::uint64_t trace_id = 0;

    friend bool operator==(const Exemplar&, const Exemplar&) = default;
  };

  /// Records one sample and, when `trace_id` is nonzero, offers it as an
  /// exemplar: the histogram keeps the kExemplarSlots slowest traced
  /// samples. Near-wait-free — the exemplar lock is only taken when the
  /// sample beats the current floor, which stops happening almost
  /// immediately on a steady workload.
  void record(std::uint64_t nanos, std::uint64_t trace_id);

  /// The slowest traced samples, slowest first.
  std::vector<Exemplar> exemplars() const;

  /// Adds every cell of `other` into this histogram (e.g. folding
  /// per-shard histograms into a total). Safe against concurrent
  /// record() on either side; the merged snapshot may tear by a few
  /// in-flight events, like any concurrent snapshot.
  void merge(const Histogram& other);

  struct Snapshot {
    std::uint64_t count = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };

  Snapshot snapshot() const;

  /// Zeroes all cells. Not atomic against concurrent record(); callers
  /// reset between measurement windows, while the recorders are
  /// quiescent.
  void reset();

  /// Bucket index for a sample (exposed for the tests).
  static std::size_t bucket_of(std::uint64_t nanos);
  /// Inclusive upper bound of a bucket in nanoseconds — the value
  /// quantiles report for samples landing in it.
  static std::uint64_t bucket_upper_nanos(std::size_t bucket);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
  std::atomic<std::uint64_t> max_nanos_{0};
  /// Slowest traced sample admitted so far that would NOT make the
  /// exemplar table — the lock-free gate in front of exemplar_mu_.
  std::atomic<std::uint64_t> exemplar_floor_{0};
  mutable std::mutex exemplar_mu_;
  std::array<Exemplar, kExemplarSlots> exemplar_slots_{};  // exemplar_mu_
};

enum class MetricKind : std::uint8_t {
  Counter = 0,
  Gauge = 1,
  Histogram = 2,
};

const char* to_string(MetricKind kind);

/// One registry entry at snapshot time. Which fields are meaningful
/// depends on `kind`: counters fill `count`, gauges fill `value`,
/// histograms fill `count` plus the quantile fields.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;  ///< counter value / histogram sample count
  double value = 0.0;       ///< gauge value
  double p50_us = 0.0;      ///< histogram quantiles
  double p99_us = 0.0;
  double max_us = 0.0;

  friend bool operator==(const MetricSnapshot&,
                         const MetricSnapshot&) = default;
};

/// Named metric store. Metrics are created on first lookup and live for
/// the registry's lifetime (stable addresses — hot paths cache the
/// references). A name is bound to one kind forever; re-registering under
/// a different kind throws acsel::Error.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All metrics, sorted by name. Each metric's cells are read with
  /// relaxed atomics; the set of metrics is read under the registration
  /// mutex, so snapshotting is safe against concurrent registration.
  std::vector<MetricSnapshot> snapshot() const;

  /// Zeroes every metric (names and kinds survive). For use between
  /// measurement windows, while recorders are quiescent.
  void reset();

  std::size_t size() const;

  /// The process-wide default registry (never destroyed, so metrics can
  /// be recorded from detached threads during shutdown).
  static Registry& global();

 private:
  struct Entry {
    MetricKind kind = MetricKind::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(const std::string& name, MetricKind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Renders a snapshot as an aligned text table (util::TextTable style).
void print_registry(const std::vector<MetricSnapshot>& snapshot,
                    std::ostream& out, const std::string& title = "metrics");

/// CSV dump: one row per metric, matching registry_csv_header().
const std::vector<std::string>& registry_csv_header();
void write_registry_csv(CsvWriter& writer,
                        const std::vector<MetricSnapshot>& snapshot);

/// JSON dump: {"metrics": [{"name": ..., "kind": ..., ...}, ...]}.
/// Parses back with obs::JsonValue.
void write_registry_json(const std::vector<MetricSnapshot>& snapshot,
                         std::ostream& out);

}  // namespace acsel::obs
