#include "obs/json.h"

#include <cstdio>

#include "util/error.h"
#include "util/strings.h"

namespace acsel::obs {

namespace {

/// Appends one Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue value = parse_value();
    skip_whitespace();
    ACSEL_CHECK_MSG(pos_ == text_.size(),
                    "json: trailing characters after document");
    return value;
  }

 private:
  void fail(const std::string& what) const {
    throw Error{"json: " + what + " at offset " + std::to_string(pos_)};
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string{"expected '"} + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue value;
        value.type_ = JsonValue::Type::String;
        value.string_ = parse_string();
        return value;
      }
      case 't':
      case 'f': {
        JsonValue value;
        value.type_ = JsonValue::Type::Bool;
        value.bool_ = consume_literal("true");
        if (!value.bool_ && !consume_literal("false")) {
          fail("invalid literal");
        }
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) {
          fail("invalid literal");
        }
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::Object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::Array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return cp;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;  // consume the backslash
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
    }
    const auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    };
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      digits();
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
      }
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
      }
      digits();
    }
    JsonValue value;
    value.type_ = JsonValue::Type::Number;
    value.number_ = parse_double(text_.substr(start, pos_ - start));
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser{text}.document();
}

bool JsonValue::as_bool() const {
  ACSEL_CHECK_MSG(type_ == Type::Bool, "json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  ACSEL_CHECK_MSG(type_ == Type::Number, "json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  ACSEL_CHECK_MSG(type_ == Type::String, "json: value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  ACSEL_CHECK_MSG(type_ == Type::Array, "json: value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  ACSEL_CHECK_MSG(type_ == Type::Object, "json: value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) {
    return nullptr;
  }
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) {
      found = &value;  // duplicate keys: last one wins, as in parse order
    }
  }
  return found;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* found = find(key);
  ACSEL_CHECK_MSG(found != nullptr, "json: missing key \"" + key + "\"");
  return *found;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace acsel::obs
