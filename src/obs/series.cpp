#include "obs/series.h"

#include <algorithm>

namespace acsel::obs {

Series::Series(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity == 0 ? 1 : capacity) {
  points_.reserve(capacity_);
}

void Series::append(std::uint64_t tick, double value) {
  if (points_.size() < capacity_) {
    points_.push_back(SeriesPoint{tick, value});
    next_ = points_.size() % capacity_;
    return;
  }
  points_[next_] = SeriesPoint{tick, value};
  next_ = (next_ + 1) % capacity_;
}

std::vector<SeriesPoint> Series::points() const {
  std::vector<SeriesPoint> out;
  out.reserve(points_.size());
  if (points_.size() < capacity_) {
    out = points_;
    return out;
  }
  // next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    out.push_back(points_[(next_ + i) % capacity_]);
  }
  return out;
}

std::optional<double> Series::latest() const {
  if (points_.empty()) {
    return std::nullopt;
  }
  const std::size_t newest =
      points_.size() < capacity_ ? points_.size() - 1
                                 : (next_ + capacity_ - 1) % capacity_;
  return points_[newest].value;
}

std::optional<double> Series::at_tick(std::uint64_t tick) const {
  for (const SeriesPoint& point : points_) {
    if (point.tick == tick) {
      return point.value;
    }
  }
  return std::nullopt;
}

SeriesRollup Series::rollup(std::uint64_t window,
                            std::uint64_t now_tick) const {
  SeriesRollup out;
  const std::uint64_t lo = window >= now_tick ? 0 : now_tick - window;
  for (const SeriesPoint& point : points_) {
    if (point.tick <= lo || point.tick > now_tick) {
      continue;
    }
    if (out.points == 0) {
      out.min = out.max = point.value;
    } else {
      out.min = std::min(out.min, point.value);
      out.max = std::max(out.max, point.value);
    }
    out.sum += point.value;
    ++out.points;
  }
  if (out.points != 0) {
    out.avg = out.sum / static_cast<double>(out.points);
  }
  return out;
}

double Series::delta(std::uint64_t window, std::uint64_t now_tick) const {
  const std::uint64_t lo = window >= now_tick ? 0 : now_tick - window;
  bool any = false;
  SeriesPoint oldest;
  SeriesPoint newest;
  for (const SeriesPoint& point : points_) {
    if (point.tick <= lo || point.tick > now_tick) {
      continue;
    }
    if (!any) {
      oldest = newest = point;
      any = true;
      continue;
    }
    if (point.tick < oldest.tick) {
      oldest = point;
    }
    if (point.tick > newest.tick) {
      newest = point;
    }
  }
  if (!any || oldest.tick == newest.tick) {
    return 0.0;
  }
  return newest.value - oldest.value;
}

SeriesStore::SeriesStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Series& SeriesStore::series_for(const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, Series{name, capacity_}).first;
  }
  return it->second;
}

std::uint64_t SeriesStore::observe(
    const std::vector<MetricSnapshot>& snapshot) {
  std::lock_guard<std::mutex> lock{mu_};
  const std::uint64_t tick = ++tick_;
  for (const MetricSnapshot& metric : snapshot) {
    switch (metric.kind) {
      case MetricKind::Counter:
        series_for(metric.name)
            .append(tick, static_cast<double>(metric.count));
        break;
      case MetricKind::Gauge:
        series_for(metric.name).append(tick, metric.value);
        break;
      case MetricKind::Histogram:
        series_for(metric.name + ".count")
            .append(tick, static_cast<double>(metric.count));
        series_for(metric.name + ".p50_us").append(tick, metric.p50_us);
        series_for(metric.name + ".p99_us").append(tick, metric.p99_us);
        series_for(metric.name + ".max_us").append(tick, metric.max_us);
        break;
    }
  }
  return tick;
}

std::uint64_t SeriesStore::ticks() const {
  std::lock_guard<std::mutex> lock{mu_};
  return tick_;
}

std::vector<std::string> SeriesStore::names() const {
  std::lock_guard<std::mutex> lock{mu_};
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) {  // map order == ascending
    out.push_back(name);
  }
  return out;
}

std::optional<double> SeriesStore::latest(const std::string& series) const {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = series_.find(series);
  return it == series_.end() ? std::nullopt : it->second.latest();
}

std::optional<double> SeriesStore::at_tick(const std::string& series,
                                           std::uint64_t tick) const {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = series_.find(series);
  return it == series_.end() ? std::nullopt : it->second.at_tick(tick);
}

SeriesRollup SeriesStore::rollup(const std::string& series,
                                 std::uint64_t window) const {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = series_.find(series);
  return it == series_.end() ? SeriesRollup{}
                             : it->second.rollup(window, tick_);
}

double SeriesStore::delta(const std::string& series,
                          std::uint64_t window) const {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = series_.find(series);
  return it == series_.end() ? 0.0 : it->second.delta(window, tick_);
}

std::vector<SeriesPoint> SeriesStore::points(const std::string& series) const {
  std::lock_guard<std::mutex> lock{mu_};
  const auto it = series_.find(series);
  return it == series_.end() ? std::vector<SeriesPoint>{}
                             : it->second.points();
}

}  // namespace acsel::obs
