#include "obs/collector.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/json.h"

namespace acsel::obs {

void Collector::ingest(const Tracer& tracer, const std::string& process) {
  ingest(tracer.collected(), process);
}

void Collector::ingest(std::span<const TraceEvent> events,
                       const std::string& process) {
  const std::uint32_t pid = static_cast<std::uint32_t>(processes_.size());
  processes_.push_back(process);
  events_.reserve(events_.size() + events.size());
  for (const TraceEvent& event : events) {
    events_.push_back(CollectedEvent{event, pid});
  }
}

std::vector<std::uint64_t> Collector::trace_ids() const {
  std::set<std::uint64_t> ids;
  for (const CollectedEvent& collected : events_) {
    if (collected.event.trace_id != 0) {
      ids.insert(collected.event.trace_id);
    }
  }
  return {ids.begin(), ids.end()};
}

MergedTrace Collector::assemble(std::uint64_t trace_id) const {
  MergedTrace trace;
  trace.trace_id = trace_id;
  if (trace_id == 0) {
    return trace;
  }
  for (const CollectedEvent& collected : events_) {
    if (collected.event.trace_id == trace_id) {
      trace.events.push_back(collected);
    }
  }
  if (trace.events.empty()) {
    return trace;
  }
  // Deterministic order whatever order the rings were ingested in: by
  // timestamp, span id breaking ties. Rings are per-thread and
  // per-process, so arrival order carries no meaning.
  std::sort(trace.events.begin(), trace.events.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.event.ts_ns != b.event.ts_ns) {
                return a.event.ts_ns < b.event.ts_ns;
              }
              return a.event.span_id < b.event.span_id;
            });

  // Index the spans and resolve parents. A span whose parent id is
  // nonzero but absent (overwritten by ring overflow, or its process was
  // never ingested) is an orphan: it still assembles, as a root.
  std::map<std::uint64_t, std::size_t> by_span_id;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& event = trace.events[i].event;
    if (event.type == TraceEventType::Complete && event.span_id != 0) {
      by_span_id.emplace(event.span_id, i);
    }
  }
  std::vector<std::size_t> roots;
  std::map<std::size_t, std::vector<std::size_t>> children;
  trace.begin_ns = trace.events.front().event.ts_ns;
  trace.end_ns = trace.begin_ns;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& event = trace.events[i].event;
    trace.begin_ns = std::min(trace.begin_ns, event.ts_ns);
    trace.end_ns = std::max(trace.end_ns, event.ts_ns + event.dur_ns);
    if (event.type != TraceEventType::Complete || event.span_id == 0) {
      continue;
    }
    const auto parent = by_span_id.find(event.parent_id);
    if (event.parent_id == 0 || parent == by_span_id.end() ||
        parent->second == i) {
      if (event.parent_id != 0) {
        ++trace.orphan_spans;
      }
      roots.push_back(i);
    } else {
      children[parent->second].push_back(i);
    }
  }
  if (roots.empty()) {
    // Every Complete span had a resolvable parent — a cycle, which only
    // corrupt ids produce. No root, no critical path.
    trace.root = trace.events.size();
    return trace;
  }
  // The root is the candidate whose interval extends furthest — the span
  // that covers the request end to end (ties: earliest start wins, which
  // the sort already guarantees).
  trace.root = roots.front();
  for (const std::size_t candidate : roots) {
    const TraceEvent& best = trace.events[trace.root].event;
    const TraceEvent& event = trace.events[candidate].event;
    if (event.ts_ns + event.dur_ns > best.ts_ns + best.dur_ns) {
      trace.root = candidate;
    }
  }

  // Critical path: descend into the child that completed last without
  // outliving its parent. Children that ended after the parent closed
  // (slots slower than the quorum, losing hedges) are skipped — they did
  // not determine the parent's latency.
  std::size_t at = trace.root;
  trace.critical_path.push_back(at);
  while (true) {
    const auto kids = children.find(at);
    if (kids == children.end()) {
      break;
    }
    const TraceEvent& parent = trace.events[at].event;
    const std::uint64_t parent_end = parent.ts_ns + parent.dur_ns;
    std::size_t next = trace.events.size();
    std::uint64_t next_end = 0;
    for (const std::size_t child : kids->second) {
      const TraceEvent& event = trace.events[child].event;
      const std::uint64_t end = event.ts_ns + event.dur_ns;
      if (end <= parent_end && end >= next_end) {
        next = child;
        next_end = end;
      }
    }
    if (next == trace.events.size()) {
      break;  // every child outlived the parent; the parent is the leaf
    }
    trace.critical_path.push_back(next);
    at = next;
  }
  return trace;
}

void Collector::write_chrome_trace(std::ostream& out) const {
  out << "{\"traceEvents\": [";
  bool first = true;
  // Metadata records name each process track (Perfetto renders them as
  // group labels). pids are 1-based: pid 0 renders as "(unknown)".
  for (std::size_t p = 0; p < processes_.size(); ++p) {
    out << (first ? "\n" : ",\n") << "  "
        << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << p + 1
        << ", \"tid\": 0, \"args\": {\"name\": \""
        << json_escape(processes_[p]) << "\"}}";
    first = false;
  }
  std::vector<CollectedEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     return a.event.ts_ns < b.event.ts_ns;
                   });
  for (const CollectedEvent& collected : sorted) {
    out << (first ? "\n" : ",\n") << "  ";
    write_trace_event_json(collected.event,
                           static_cast<int>(collected.process) + 1, out);
    first = false;
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace acsel::obs
