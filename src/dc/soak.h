// Scenario-scripted datacenter soak: drives a fleet::Fleet through a
// TrafficGenerator stream while a deterministic script of infrastructure
// events plays out — shard blackouts, facility power emergencies
// (fleet brownouts), forced burst waves, and a mid-run workload shift —
// and closes the adaptation loop: sampled delivered requests feed
// measured residuals into an adapt::AdaptController, and a promoted
// retrain is re-published fleet-wide.
//
// The driver owns the whole experiment: the World (machine, workload
// pool, offline model, clean/shifted ground truth), the fleet, the
// trainer-side registry + controller, and the per-tick timeline the
// soak bench turns into BENCH_dc.json. Everything is deterministic in
// (options, world): traffic replays bit-for-bit, scripted events land on
// fixed ticks, and adapt decisions follow the deterministic observation
// stream (retrains are awaited every tick).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "adapt/controller.h"
#include "dc/traffic.h"
#include "exec/executor.h"
#include "fleet/fleet.h"
#include "serve/message.h"

namespace acsel::dc {

/// One scripted infrastructure event, applied at the start of its tick.
struct ScenarioEvent {
  enum class Kind : std::uint8_t {
    /// Fails every replica of shard `value` (a rack blackout).
    FailShard,
    /// Revives every replica in the fleet.
    ReviveAll,
    /// Pins the traffic generator's burst state on / off.
    BurstOn,
    BurstOff,
    /// Power emergency: the fleet's budget drops to `value` x base.
    BudgetCut,
    /// Ends the emergency; the brownout unwinds one stage per rebalance.
    BudgetRestore,
    /// The workload shifts: measured feedback switches to the shifted
    /// ground truth, so the stale model's residuals start drifting.
    KernelShift,
  };
  std::uint64_t tick = 0;
  Kind kind = Kind::FailShard;
  double value = 0.0;
};

const char* to_string(ScenarioEvent::Kind kind);

/// Everything the soak serves and measures against: a kernel pool (the
/// traffic generator indexes into it), the offline model, and per-base
/// ground truth before and after the workload shift.
struct World {
  /// Kernel index -> sample pair (distinct identities for the ring).
  std::vector<core::SamplePair> pool;
  /// Kernel index -> row in clean_truth / shifted_truth.
  std::vector<std::size_t> truth_of;
  std::vector<core::KernelCharacterization> clean_truth;
  std::vector<core::KernelCharacterization> shifted_truth;
  /// Offline training set (the adapt controller's seed data).
  std::vector<core::KernelCharacterization> training;
  core::PredictorPtr model;
};

struct WorldOptions {
  std::uint64_t machine_seed = 90210;
  /// Distinct kernel identities in the pool (variants of the held-out
  /// benchmark's instances).
  std::size_t kernels = 96;
  /// Benchmark held out of training and served (the unseen workload).
  std::string held_out = "LU";
  /// soc.kernel_shift magnitude the shifted truth is characterized under.
  double shift_magnitude = 1.6;
  /// Caps on world size, for small test worlds.
  std::size_t max_training = static_cast<std::size_t>(-1);
  std::size_t max_bases = static_cast<std::size_t>(-1);
};

/// Characterizes the machine, trains the offline model, and builds the
/// kernel pool plus clean/shifted ground truth.
World make_world(const WorldOptions& options);

struct SoakOptions {
  TrafficOptions traffic;
  fleet::FleetOptions fleet;
  adapt::AdaptOptions adapt;
  std::uint64_t ticks = 200;
  std::vector<ScenarioEvent> script;
  /// Every Nth delivered request (by request id) feeds the adapt loop.
  std::uint64_t measure_every = 4;
  /// Every Nth measurement carries the full characterization label.
  std::uint64_t label_every = 1;
  /// Fan-out/driver executor (nullptr = serial) — also runs retrains.
  exec::Executor* executor = nullptr;
};

/// Tuned adapt options for the soak (CUSUM drift, full shadowing, small
/// canary/probation windows) — the adapt_loop bench's configuration.
adapt::AdaptOptions soak_adapt_defaults();

/// One tick of the soak timeline. Request counters are deltas over the
/// tick; gauges are the fleet's windowed values after it.
struct TickSample {
  std::uint64_t tick = 0;
  std::uint64_t offered = 0;
  bool bursting = false;
  std::array<std::uint64_t, serve::kPriorityClasses> routed{};
  std::array<std::uint64_t, serve::kPriorityClasses> delivered{};
  std::array<std::uint64_t, serve::kPriorityClasses> shed{};
  std::uint32_t brownout_stage = 0;
  double budget_w = 0.0;
  double window_p99_us = 0.0;
  /// Windowed fraction of capped requests answered predicted-infeasible.
  double cap_exceedance = 0.0;
};

struct SoakReport {
  std::vector<TickSample> timeline;
  serve::FleetStats fleet;
  fleet::Fleet::ClientTotals client;
  serve::AdaptStats adapt;
  std::uint64_t offered = 0;
  /// routed - delivered - shed; the zero-loss contract.
  std::uint64_t lost = 0;
  double sim_seconds = 0.0;
  std::array<double, serve::kPriorityClasses> delivered_qps{};
  /// delivered / routed per class (1.0 when the class saw no traffic).
  std::array<double, serve::kPriorityClasses> delivered_fraction{};
  /// p99 of the cumulative fleet service-latency histogram, us.
  double p99_us = 0.0;
  /// Deepest brownout stage reached, and None->brownout transitions.
  std::uint32_t brownout_depth = 0;
  std::uint64_t brownout_events = 0;
  /// Last tick any brownout stage was active (ticks when never).
  std::uint64_t last_brownout_tick = 0;
  bool brownout_seen = false;
  /// Ticks the final brownout spent unwinding after the budget was back
  /// at base — the staged-recovery time.
  std::uint64_t recovery_ticks = 0;
  /// Ticks after the last brownout with a nonzero cap-exceedance window
  /// (the CI gate wants exactly zero).
  std::uint64_t cap_exceedance_ticks_after_recovery = 0;
  /// Ticks from the KernelShift event to the first model promotion; -1
  /// when no shift was scripted or no promotion happened.
  std::int64_t adaptation_lag_ticks = -1;
  std::uint64_t promotions = 0;
};

class SoakDriver {
 public:
  /// `world` must outlive run().
  SoakDriver(const SoakOptions& options, const World& world);

  /// Runs the full scripted soak and returns the timeline + verdicts.
  SoakReport run();

 private:
  SoakOptions options_;
  const World& world_;
};

}  // namespace acsel::dc
