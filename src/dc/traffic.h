// Deterministic, seeded datacenter traffic generation for the soak
// harness: the offered load follows a diurnal sinusoid, a two-state
// Markov chain overlays bursty on-off arrival waves, kernel popularity
// is Zipf-distributed with a slow rotation that drifts the mix over the
// run, and each arrival draws a priority class, scheduling goal, and
// power cap from configured mixes.
//
// Determinism contract: each tick's draws come from a fresh
// Rng{mix_seeds(seed, tick)} stream, so a generator replays the exact
// same arrival sequence for a given (options, call order) — the burst
// chain and the drift rotation are the only cross-tick state, and both
// advance deterministically. Two generators with the same options
// produce bitwise-identical traffic; the time-compression factor only
// rescales how much simulated trace time one tick covers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/scheduler.h"
#include "serve/message.h"
#include "util/rng.h"

namespace acsel::dc {

struct TrafficOptions {
  std::uint64_t seed = 271828;
  /// Mean offered load at the diurnal midline, requests per simulated
  /// second.
  double base_qps = 240.0;
  /// Peak-to-midline swing of the diurnal curve, as a fraction of
  /// base_qps (0 = flat, 0.5 = 50% swing). Must stay below 1.
  double diurnal_amplitude = 0.5;
  /// Ticks per diurnal cycle ("one day").
  std::uint64_t diurnal_period_ticks = 96;
  /// Markov on-off burst overlay: per-tick probability of entering /
  /// leaving a burst, and the load multiplier while inside one.
  double burst_enter = 0.03;
  double burst_exit = 0.25;
  double burst_multiplier = 2.5;
  /// Priority mix; the remainder is Normal.
  double high_fraction = 0.2;
  double low_fraction = 0.3;
  /// Kernel popularity: Zipf(s) over `kernels` distinct identities.
  double zipf_exponent = 1.1;
  std::size_t kernels = 96;
  /// Kernel-mix drift: the popularity ranking rotates by this many
  /// kernels per tick (fractional values accumulate), so the hot set
  /// migrates across the ring over the run.
  double drift_per_tick = 0.0;
  /// Power caps drawn by capped requests; the rest run unconstrained.
  std::vector<double> cap_pool_w = {22.0, 26.0, 30.0, 40.0};
  double capped_fraction = 0.8;
  /// Simulated trace seconds one tick covers, before compression.
  double tick_seconds = 0.05;
  /// Replay speed-up: one tick covers tick_seconds * time_compression
  /// seconds of trace (2 = the trace plays at double speed).
  double time_compression = 1.0;
};

/// One generated request, by reference into the caller's kernel pool.
struct Arrival {
  std::uint64_t request_id = 0;
  std::size_t kernel = 0;
  serve::Priority priority = serve::Priority::Normal;
  core::SchedulingGoal goal = core::SchedulingGoal::MaxPerformance;
  std::optional<double> cap_w;
};

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficOptions& options);

  /// Generates the next tick's arrivals. Call sequentially; the arrival
  /// count is Poisson in the tick's offered load.
  std::vector<Arrival> tick();

  /// The diurnal curve alone (no burst overlay) at tick `t`, requests
  /// per simulated second.
  double diurnal_qps(std::uint64_t t) const;

  /// Simulated seconds covered by one tick (tick_seconds x compression).
  double tick_span_seconds() const;

  /// Whether the burst chain is currently on.
  bool bursting() const { return bursting_; }
  /// Scenario override: pins the burst state; the chain resumes its own
  /// transitions from the pinned state on the next tick.
  void force_burst(bool on) { bursting_ = on; }

  /// Ticks generated so far.
  std::uint64_t ticks() const { return tick_; }

  const TrafficOptions& options() const { return options_; }

 private:
  std::size_t zipf_draw(Rng& rng) const;
  static std::uint64_t poisson(Rng& rng, double lambda);

  TrafficOptions options_;
  std::vector<double> zipf_cdf_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_id_ = 1;
  bool bursting_ = false;
  double rotation_ = 0.0;
};

}  // namespace acsel::dc
