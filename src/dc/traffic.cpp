#include "dc/traffic.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace acsel::dc {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

TrafficGenerator::TrafficGenerator(const TrafficOptions& options)
    : options_(options) {
  ACSEL_CHECK_MSG(options_.base_qps > 0.0, "traffic: base_qps must be > 0");
  ACSEL_CHECK_MSG(options_.diurnal_amplitude >= 0.0 &&
                      options_.diurnal_amplitude < 1.0,
                  "traffic: diurnal amplitude must be in [0, 1)");
  ACSEL_CHECK_MSG(options_.diurnal_period_ticks >= 1,
                  "traffic: diurnal period must be >= 1 tick");
  ACSEL_CHECK_MSG(options_.burst_enter >= 0.0 && options_.burst_enter <= 1.0 &&
                      options_.burst_exit >= 0.0 &&
                      options_.burst_exit <= 1.0,
                  "traffic: burst probabilities must be in [0, 1]");
  ACSEL_CHECK_MSG(options_.burst_multiplier >= 1.0,
                  "traffic: burst multiplier must be >= 1");
  ACSEL_CHECK_MSG(options_.high_fraction >= 0.0 &&
                      options_.low_fraction >= 0.0 &&
                      options_.high_fraction + options_.low_fraction <= 1.0,
                  "traffic: priority fractions must be a sub-unit split");
  ACSEL_CHECK_MSG(options_.kernels >= 1, "traffic: need >= 1 kernel");
  ACSEL_CHECK_MSG(options_.capped_fraction >= 0.0 &&
                      options_.capped_fraction <= 1.0,
                  "traffic: capped fraction must be in [0, 1]");
  ACSEL_CHECK_MSG(options_.capped_fraction == 0.0 ||
                      !options_.cap_pool_w.empty(),
                  "traffic: capped requests need a non-empty cap pool");
  ACSEL_CHECK_MSG(options_.tick_seconds > 0.0 &&
                      options_.time_compression > 0.0,
                  "traffic: tick span must be positive");

  // Zipf CDF over popularity ranks: weight(rank r) = 1 / r^s.
  zipf_cdf_.reserve(options_.kernels);
  double total = 0.0;
  for (std::size_t r = 1; r <= options_.kernels; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r), options_.zipf_exponent);
    zipf_cdf_.push_back(total);
  }
  for (double& cum : zipf_cdf_) {
    cum /= total;
  }
}

double TrafficGenerator::diurnal_qps(std::uint64_t t) const {
  const double phase = kTwoPi *
                       static_cast<double>(t % options_.diurnal_period_ticks) /
                       static_cast<double>(options_.diurnal_period_ticks);
  return options_.base_qps *
         (1.0 + options_.diurnal_amplitude * std::sin(phase));
}

double TrafficGenerator::tick_span_seconds() const {
  return options_.tick_seconds * options_.time_compression;
}

std::size_t TrafficGenerator::zipf_draw(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - zipf_cdf_.begin(),
                               static_cast<std::ptrdiff_t>(options_.kernels) -
                                   1));
}

std::uint64_t TrafficGenerator::poisson(Rng& rng, double lambda) {
  if (lambda <= 0.0) {
    return 0;
  }
  if (lambda > 64.0) {
    // Normal approximation keeps the per-tick cost flat at high load.
    const double draw = rng.normal(lambda, std::sqrt(lambda));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  // Knuth's product-of-uniforms method.
  const double limit = std::exp(-lambda);
  std::uint64_t n = 0;
  double product = rng.uniform();
  while (product > limit) {
    ++n;
    product *= rng.uniform();
  }
  return n;
}

std::vector<Arrival> TrafficGenerator::tick() {
  const std::uint64_t t = tick_++;
  Rng rng{Rng::mix_seeds(options_.seed, t)};

  // Burst chain first, so a forced state still transitions next tick.
  const double flip = rng.uniform();
  if (bursting_) {
    bursting_ = flip >= options_.burst_exit;
  } else {
    bursting_ = flip < options_.burst_enter;
  }

  const double qps =
      diurnal_qps(t) * (bursting_ ? options_.burst_multiplier : 1.0);
  const std::uint64_t count = poisson(rng, qps * tick_span_seconds());
  rotation_ += options_.drift_per_tick;
  const std::size_t offset =
      static_cast<std::size_t>(rotation_) % options_.kernels;

  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Arrival arrival;
    arrival.request_id = next_id_++;
    arrival.kernel = (zipf_draw(rng) + offset) % options_.kernels;
    const double p = rng.uniform();
    if (p < options_.high_fraction) {
      arrival.priority = serve::Priority::High;
    } else if (p < options_.high_fraction + options_.low_fraction) {
      arrival.priority = serve::Priority::Low;
    } else {
      arrival.priority = serve::Priority::Normal;
    }
    arrival.goal =
        static_cast<core::SchedulingGoal>(rng.uniform_index(3));
    if (rng.uniform() < options_.capped_fraction) {
      arrival.cap_w =
          options_.cap_pool_w[rng.uniform_index(options_.cap_pool_w.size())];
    }
    arrivals.push_back(arrival);
  }
  return arrivals;
}

}  // namespace acsel::dc
