#include "dc/soak.h"

#include <algorithm>
#include <utility>

#include "adapt/drift.h"
#include "core/trainer.h"
#include "eval/characterize.h"
#include "exec/parallel_for.h"
#include "fault/fault.h"
#include "serve/registry.h"
#include "util/error.h"
#include "util/log.h"
#include "workloads/suite.h"

namespace acsel::dc {

const char* to_string(ScenarioEvent::Kind kind) {
  switch (kind) {
    case ScenarioEvent::Kind::FailShard:
      return "fail-shard";
    case ScenarioEvent::Kind::ReviveAll:
      return "revive-all";
    case ScenarioEvent::Kind::BurstOn:
      return "burst-on";
    case ScenarioEvent::Kind::BurstOff:
      return "burst-off";
    case ScenarioEvent::Kind::BudgetCut:
      return "budget-cut";
    case ScenarioEvent::Kind::BudgetRestore:
      return "budget-restore";
    case ScenarioEvent::Kind::KernelShift:
      return "kernel-shift";
  }
  return "?";
}

World make_world(const WorldOptions& options) {
  soc::Machine machine{soc::MachineSpec{}, options.machine_seed};
  const auto suite = workloads::Suite::standard();
  World world;

  // Offline training set: every instance of the non-held-out
  // benchmarks, each on its own deterministic machine clone.
  std::size_t trained = 0;
  for (const auto& instance : suite.instances()) {
    if (instance.benchmark == options.held_out ||
        trained >= options.max_training) {
      continue;
    }
    soc::Machine clone = machine.clone(trained);
    world.training.push_back(eval::characterize_instance(clone, instance));
    ++trained;
  }
  ACSEL_CHECK_MSG(!world.training.empty(),
                  "dc: no training instances outside the held-out benchmark");
  world.model = core::make_predictor(core::train(world.training).model);

  // Ground truth for the served (held-out) instances, before and after
  // the workload shift. The shifted sweep reuses the soc.kernel_shift
  // fault site; the site is re-disarmed afterwards, so arm any scenario
  // shift preset after building the world.
  fault::Injector& injector = fault::Injector::global();
  std::size_t bases = 0;
  for (const auto& instance : suite.instances()) {
    if (instance.benchmark != options.held_out ||
        bases >= options.max_bases) {
      continue;
    }
    soc::Machine clean_clone = machine.clone(100'000 + bases);
    world.clean_truth.push_back(
        eval::characterize_instance(clean_clone, instance));
    injector.arm("soc.kernel_shift", {1.0, 1, options.shift_magnitude});
    soc::Machine shifted_clone = machine.clone(100'000 + bases);
    world.shifted_truth.push_back(
        eval::characterize_instance(shifted_clone, instance));
    injector.disarm("soc.kernel_shift");
    ++bases;
  }
  ACSEL_CHECK_MSG(bases > 0, "dc: held-out benchmark has no instances");

  // The kernel pool: variants of the served instances, widened into
  // distinct identities so the consistent-hash ring has keys to spread
  // (a variant is a new kernel cluster to the router; measurements are
  // the base instance's).
  world.pool.reserve(options.kernels);
  world.truth_of.reserve(options.kernels);
  for (std::size_t k = 0; k < options.kernels; ++k) {
    const std::size_t base = k % bases;
    core::SamplePair variant = world.clean_truth[base].samples;
    variant.cpu.input += "-v" + std::to_string(k);
    variant.gpu.input += "-v" + std::to_string(k);
    world.pool.push_back(std::move(variant));
    world.truth_of.push_back(base);
  }
  return world;
}

adapt::AdaptOptions soak_adapt_defaults() {
  adapt::AdaptOptions options;
  options.drift.method = adapt::DriftDetector::Method::Cusum;
  options.drift.threshold = 2.0;
  options.drift.delta = 0.02;
  options.drift.grace_samples = 8;
  options.canary.shadow_fraction = 1.0;
  options.canary.min_evals = 8;
  options.canary.error_margin = 0.02;
  options.promoter.probation_observations = 12;
  options.trainer.clusters = 8;
  return options;
}

namespace {

serve::SelectRequest make_request(const Arrival& arrival,
                                  const World& world) {
  serve::SelectRequest request;
  request.request_id = arrival.request_id;
  request.samples = world.pool[arrival.kernel];
  request.goal = arrival.goal;
  request.cap_w = arrival.cap_w;
  request.priority = arrival.priority;
  return request;
}

}  // namespace

SoakDriver::SoakDriver(const SoakOptions& options, const World& world)
    : options_(options), world_(world) {
  ACSEL_CHECK_MSG(options_.ticks >= 1, "dc: soak needs >= 1 tick");
  ACSEL_CHECK_MSG(options_.traffic.kernels <= world.pool.size(),
                  "dc: traffic kernels exceed the world's pool");
  ACSEL_CHECK_MSG(world.model != nullptr, "dc: world has no model");
}

SoakReport SoakDriver::run() {
  SoakOptions opts = options_;
  // The timeline reads the windowed p99/cap-exceedance gauges, which
  // only the SLO tick path maintains.
  opts.fleet.slo.enabled = true;
  if (opts.executor != nullptr && opts.fleet.executor == nullptr) {
    opts.fleet.executor = opts.executor;
  }
  fleet::Fleet fleet{opts.fleet};
  serve::ModelRegistry trainer_registry;
  trainer_registry.publish(world_.model);
  exec::Executor& executor =
      opts.executor != nullptr ? *opts.executor : exec::inline_executor();
  adapt::AdaptController controller{trainer_registry, executor,
                                    world_.training, opts.adapt};
  fleet.publish(world_.model);
  TrafficGenerator traffic{opts.traffic};

  SoakReport report;
  report.timeline.reserve(opts.ticks);
  const double base_budget = fleet.budget().base_budget_w();

  bool shifted = false;
  std::int64_t shift_tick = -1;
  std::uint64_t promotions_seen = 0;
  std::uint64_t measurements = 0;
  serve::FleetStats prev = fleet.stats();

  for (std::uint64_t t = 0; t < opts.ticks; ++t) {
    for (const ScenarioEvent& event : opts.script) {
      if (event.tick != t) {
        continue;
      }
      ACSEL_LOG_INFO("dc: tick " << t << " scenario event "
                                 << to_string(event.kind));
      switch (event.kind) {
        case ScenarioEvent::Kind::FailShard: {
          const auto shard = static_cast<std::uint32_t>(event.value);
          for (std::uint32_t r = 0; r < opts.fleet.replicas; ++r) {
            fleet.fail_node(fleet::NodeId{shard, r});
          }
          break;
        }
        case ScenarioEvent::Kind::ReviveAll:
          for (std::uint32_t s = 0; s < opts.fleet.shards; ++s) {
            for (std::uint32_t r = 0; r < opts.fleet.replicas; ++r) {
              fleet.revive_node(fleet::NodeId{s, r});
            }
          }
          break;
        case ScenarioEvent::Kind::BurstOn:
          traffic.force_burst(true);
          break;
        case ScenarioEvent::Kind::BurstOff:
          traffic.force_burst(false);
          break;
        case ScenarioEvent::Kind::BudgetCut:
          fleet.set_emergency_budget(std::max(event.value, 0.05) *
                                     base_budget);
          break;
        case ScenarioEvent::Kind::BudgetRestore:
          fleet.clear_emergency_budget();
          break;
        case ScenarioEvent::Kind::KernelShift:
          shifted = true;
          shift_tick = static_cast<std::int64_t>(t);
          break;
      }
    }

    const std::vector<Arrival> arrivals = traffic.tick();
    std::vector<serve::SelectResponse> responses(arrivals.size());
    const auto serve_one = [&](std::size_t i) {
      responses[i] = fleet.select(make_request(arrivals[i], world_));
    };
    if (opts.executor != nullptr && arrivals.size() > 1) {
      exec::parallel_for(*opts.executor, arrivals.size(), serve_one);
    } else {
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        serve_one(i);
      }
    }

    // Measured feedback: every measure_every-th request id that came
    // back Ok is "run" against ground truth and fed to the adapt loop
    // (a deterministic sample whatever the fan-out interleaving was).
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      const serve::SelectResponse& response = responses[i];
      if (response.status != serve::ResponseStatus::Ok ||
          response.model_version == 0 || opts.measure_every == 0 ||
          arrivals[i].request_id % opts.measure_every != 0) {
        continue;
      }
      const core::KernelCharacterization& truth =
          (shifted ? world_.shifted_truth
                   : world_.clean_truth)[world_.truth_of[arrivals[i].kernel]];
      adapt::Feedback feedback;
      feedback.samples = world_.pool[arrivals[i].kernel];
      feedback.predicted_power_w = response.predicted_power_w;
      feedback.predicted_performance = response.predicted_performance;
      feedback.measured_power_w = truth.powers()[response.config_index];
      feedback.measured_performance =
          truth.performances()[response.config_index];
      feedback.cap_w = arrivals[i].cap_w;
      if (opts.label_every > 0 && ++measurements % opts.label_every == 0) {
        feedback.label = truth;
      }
      controller.observe(feedback);
    }

    // Await any retrain the feedback kicked off, then re-publish a
    // promotion fleet-wide — the adaptation lag the report measures.
    controller.wait_for_retrain();
    const serve::AdaptStats adapt_stats = controller.adapt_stats();
    if (adapt_stats.promotions > promotions_seen) {
      promotions_seen = adapt_stats.promotions;
      fleet.publish(trainer_registry.current().model);
      if (shift_tick >= 0 && report.adaptation_lag_ticks < 0) {
        report.adaptation_lag_ticks =
            static_cast<std::int64_t>(t) - shift_tick;
      }
      ACSEL_LOG_INFO("dc: tick " << t
                                 << " promoted retrain published fleet-wide");
    }

    fleet.tick();

    const serve::FleetStats now = fleet.stats();
    TickSample sample;
    sample.tick = t;
    sample.offered = arrivals.size();
    sample.bursting = traffic.bursting();
    for (std::size_t p = 0; p < serve::kPriorityClasses; ++p) {
      sample.routed[p] = now.routed_by_priority[p] - prev.routed_by_priority[p];
      sample.delivered[p] =
          now.delivered_by_priority[p] - prev.delivered_by_priority[p];
      sample.shed[p] = now.shed_by_priority[p] - prev.shed_by_priority[p];
    }
    sample.brownout_stage = now.brownout_stage;
    sample.budget_w = now.global_budget_w;
    for (const obs::MetricSnapshot& row : fleet.stats_registry().snapshot()) {
      if (row.name == "fleet.window_p99_us") {
        sample.window_p99_us = row.value;
      } else if (row.name == "fleet.window_cap_exceedance") {
        sample.cap_exceedance = row.value;
      }
    }
    report.timeline.push_back(sample);
    report.offered += arrivals.size();
    prev = now;
  }

  report.fleet = fleet.stats();
  report.client = fleet.client_totals();
  report.adapt = controller.adapt_stats();
  report.promotions = promotions_seen;
  report.lost =
      report.fleet.routed - report.fleet.delivered - report.fleet.shed;
  report.sim_seconds =
      static_cast<double>(opts.ticks) * traffic.tick_span_seconds();
  for (std::size_t p = 0; p < serve::kPriorityClasses; ++p) {
    report.delivered_qps[p] =
        static_cast<double>(report.fleet.delivered_by_priority[p]) /
        report.sim_seconds;
    report.delivered_fraction[p] =
        report.fleet.routed_by_priority[p] > 0
            ? static_cast<double>(report.fleet.delivered_by_priority[p]) /
                  static_cast<double>(report.fleet.routed_by_priority[p])
            : 1.0;
  }
  report.p99_us = fleet.latency_snapshot().p99_us;
  report.brownout_events = report.fleet.brownout_events;
  for (const TickSample& sample : report.timeline) {
    if (sample.brownout_stage > 0) {
      report.brownout_seen = true;
      report.last_brownout_tick = sample.tick;
      report.brownout_depth =
          std::max(report.brownout_depth, sample.brownout_stage);
      if (sample.budget_w >= base_budget * 0.999) {
        // Budget already restored but stages still unwinding: the
        // staged-recovery tail.
        ++report.recovery_ticks;
      }
    }
  }
  if (!report.brownout_seen) {
    report.last_brownout_tick = opts.ticks;
  }
  for (const TickSample& sample : report.timeline) {
    if ((!report.brownout_seen || sample.tick > report.last_brownout_tick) &&
        sample.cap_exceedance > 0.0) {
      ++report.cap_exceedance_ticks_after_recovery;
    }
  }
  return report;
}

}  // namespace acsel::dc
