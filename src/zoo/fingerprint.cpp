#include "zoo/fingerprint.h"

#include <cstring>

#include "hw/pstate.h"
#include "soc/power_model.h"

namespace acsel::zoo {

namespace {

/// Canonical-serialization format version. Bump when fields are added or
/// reordered: the version byte is hashed, so old and new serializations
/// can never collide silently.
constexpr std::uint8_t kCanonicalVersion = 1;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

/// FNV-1a, 64-bit: simple, stable across platforms, and good enough for
/// identity hashing (the descriptor, not the hash, breaks near-ties).
std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Closed-form peak-power envelope: idle plus every plane at its maximum
/// operating point and activity 1 — an upper bound, not a measurement, so
/// it is deterministic and spec-only.
double peak_power_w(const soc::MachineSpec& spec) {
  const hw::CpuPState cpu = hw::cpu_pstates()[hw::kCpuMaxPState];
  const hw::GpuPState gpu = hw::gpu_pstates()[hw::kGpuMaxPState];
  double cpu_threads = static_cast<double>(hw::kCpuCores);
  if (spec.asymmetric.enabled) {
    const double little = static_cast<double>(hw::kCoresPerModule);
    cpu_threads = (cpu_threads - little) +
                  spec.asymmetric.little_power_scale * little;
  }
  const double cpu_dyn = cpu_threads * spec.cpu_core_dyn_w * cpu.freq_ghz *
                         cpu.voltage * cpu.voltage *
                         (1.0 + spec.cpu_vector_power_gain);
  const double gpu_dyn = spec.gpu_dyn_w * (gpu.freq_mhz / 1000.0) *
                         gpu.voltage * gpu.voltage;
  const double nb = spec.nb_w_per_gbs * (spec.dram_bw_gbs + spec.gpu_bw_gbs);
  return soc::idle_power(spec).total() + cpu_dyn + gpu_dyn + nb;
}

}  // namespace

std::vector<std::uint8_t> canonical_spec_bytes(const soc::MachineSpec& spec) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(256);
  put_u8(bytes, kCanonicalVersion);
  // Topology: core counts, then the DVFS grids in table order.
  put_u32(bytes, static_cast<std::uint32_t>(hw::kCpuCores));
  put_u32(bytes, static_cast<std::uint32_t>(hw::kCoresPerModule));
  put_u32(bytes, static_cast<std::uint32_t>(hw::kGpuCores));
  put_u32(bytes, static_cast<std::uint32_t>(hw::kCpuPStateCount));
  for (const hw::CpuPState& p : hw::cpu_pstates()) {
    put_f64(bytes, p.freq_ghz);
    put_f64(bytes, p.voltage);
  }
  put_u32(bytes, static_cast<std::uint32_t>(hw::kGpuPStateCount));
  for (const hw::GpuPState& p : hw::gpu_pstates()) {
    put_f64(bytes, p.freq_mhz);
    put_f64(bytes, p.voltage);
  }
  // Performance coefficients, MachineSpec declaration order.
  for (const double v :
       {spec.cpu_scalar_flops_per_cycle, spec.cpu_vector_gain,
        spec.module_share_penalty, spec.dram_bw_gbs, spec.gpu_bw_gbs,
        spec.single_thread_bw_frac, spec.gpu_flops_per_core_cycle,
        spec.gpu_divergence_penalty, spec.omp_overhead_ms}) {
    put_f64(bytes, v);
  }
  // Power coefficients, declaration order.
  for (const double v :
       {spec.base_power_w, spec.cpu_leak_w_per_v2, spec.cpu_core_dyn_w,
        spec.cpu_vector_power_gain, spec.gpu_leak_w_per_v2, spec.gpu_dyn_w,
        spec.nb_w_per_gbs, spec.activity_floor}) {
    put_f64(bytes, v);
  }
  // Asymmetric-cluster block.
  put_u8(bytes, spec.asymmetric.enabled ? 1 : 0);
  for (const double v :
       {spec.asymmetric.little_perf_scale, spec.asymmetric.little_power_scale,
        spec.asymmetric.migration_cost_ms}) {
    put_f64(bytes, v);
  }
  // DRAM device-power block (a third power domain when enabled).
  put_u8(bytes, spec.model_dram_power ? 1 : 0);
  put_f64(bytes, spec.dram_background_w);
  put_f64(bytes, spec.dram_w_per_gbs);
  return bytes;
}

HardwareFingerprint fingerprint_of(const soc::MachineSpec& spec) {
  HardwareFingerprint fp;
  fp.hash = fnv1a(canonical_spec_bytes(spec));
  if (fp.hash == 0) {
    fp.hash = 1;  // 0 is the wire's "no fingerprint" sentinel
  }
  fp.cpu_cores = static_cast<std::uint32_t>(hw::kCpuCores);
  fp.gpu_cores = static_cast<std::uint32_t>(hw::kGpuCores);
  fp.cpu_peak_ghz = hw::cpu_pstates()[hw::kCpuMaxPState].freq_ghz;
  fp.gpu_peak_mhz = hw::gpu_pstates()[hw::kGpuMaxPState].freq_mhz;
  fp.idle_power_w = soc::idle_power(spec).total();
  fp.peak_power_w = peak_power_w(spec);
  return fp;
}

}  // namespace acsel::zoo
