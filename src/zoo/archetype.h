// The machine zoo: a parameterized family of machine architectures built
// on soc::MachineSpec. Everything upstream of this library ran on one
// synthetic Trinity-like APU; the zoo adds the architecture classes the
// related work names — an asymmetric big.LITTLE mobile SoC (Coutinho
// 2020), a discrete-GPU HPC node (Silva 2018) and a low-power edge class
// (Chen cross-architectural power modelling) — so training, serving,
// adaptation and the fleet can be exercised *across* architectures, not
// just across workloads.
//
// Every spec is deterministic from (catalog seed, archetype): the base
// coefficients of the archetype get a small seeded calibration jitter
// (the spread between two physical units of one SKU), derived with
// Rng::mix_seeds so the result is bitwise-identical across runs and
// thread counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "soc/machine.h"
#include "soc/perf_model.h"

namespace acsel::zoo {

/// The architecture classes the zoo generates.
enum class Archetype : std::uint8_t {
  /// The paper's Trinity-class APU baseline (MachineSpec defaults).
  Trinity = 0,
  /// Asymmetric big.LITTLE mobile SoC: one big + one LITTLE cluster with
  /// distinct perf/power curves and a cluster-migration cost.
  BigLittle = 1,
  /// Discrete-GPU HPC node: high idle power, a much steeper GPU
  /// frequency/power law, wide memory system.
  HpcGpu = 2,
  /// Low-power edge class: everything small — frequencies count the same
  /// but every watt coefficient shrinks.
  Edge = 3,
};

inline constexpr std::size_t kArchetypeCount = 4;

const char* to_string(Archetype archetype);

/// Parses a to_string() name back; throws acsel::Error on unknown names.
Archetype archetype_from_string(const std::string& name);

/// All archetypes in catalog order (the A×B transfer-matrix order).
std::span<const Archetype> all_archetypes();

/// A named spec variant — the catalog's unit of exchange with benches
/// that iterate machine families (transfer matrix, calibration
/// sensitivity).
struct NamedSpec {
  std::string name;
  soc::MachineSpec spec;
};

class ArchetypeCatalog {
 public:
  /// `seed` selects the calibration jitter of every generated spec; two
  /// catalogs with one seed generate bit-identical specs.
  explicit ArchetypeCatalog(std::uint64_t seed = 0);

  std::uint64_t seed() const { return seed_; }

  /// The archetype's spec: base_spec() plus a deterministic ±3% jitter on
  /// the continuous perf/power coefficients, a pure function of
  /// (seed, archetype).
  soc::MachineSpec spec(Archetype archetype) const;

  /// A machine of the archetype, seeded like the benches seed theirs
  /// (the machine seed folds the catalog seed with the archetype, so two
  /// archetypes never share a noise stream).
  soc::Machine make_machine(Archetype archetype) const;

  /// Every archetype as a NamedSpec, catalog order.
  std::vector<NamedSpec> specs() const;

  /// The jitter-free base coefficients of the archetype. Trinity is the
  /// MachineSpec default; the others perturb it per the class comments
  /// above.
  static soc::MachineSpec base_spec(Archetype archetype);

  /// The calibration-sensitivity perturbation family of the robustness
  /// bench (DESIGN §sensitivity): the Trinity baseline plus ±25% GPU
  /// power, +25% DRAM bandwidth, a hungrier CPU, and 3x measurement
  /// noise. Lives here so exactly one place builds machine variants.
  static std::vector<NamedSpec> calibration_variants();

 private:
  std::uint64_t seed_;
};

}  // namespace acsel::zoo
