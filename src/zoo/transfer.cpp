#include "zoo/transfer.h"

#include <algorithm>
#include <cmath>

#include "adapt/canary.h"
#include "core/model.h"
#include "eval/characterize.h"
#include "util/error.h"
#include "workloads/suite.h"
#include "zoo/fingerprint.h"

namespace acsel::zoo {

namespace {

/// The adapt tuning of the transfer loop, mirroring bench/adapt_loop: a
/// CUSUM detector so a rejected canary can re-fire on the still-biased
/// residuals, full shadowing, and a cluster budget sized for the
/// reservoir of serve-machine observations.
adapt::AdaptOptions transfer_adapt_options(const TransferOptions& transfer) {
  adapt::AdaptOptions options;
  options.drift.method = adapt::DriftDetector::Method::Cusum;
  options.drift.threshold = 2.0;
  options.drift.delta = 0.02;
  options.drift.grace_samples = 8;
  options.canary.shadow_fraction = 1.0;
  options.canary.min_evals = 8;
  options.canary.error_margin = 0.02;
  // Without the penalty a cap-blowing incumbent posts error 0 and no
  // honest candidate can ever beat it (see CanaryOptions).
  options.canary.violation_penalty = transfer.violation_penalty;
  // With violations priced into the score, the separate hard violation
  // gate double-counts: an over-conservative incumbent (0 violations,
  // huge performance loss) would veto every honest candidate whose
  // violation rate matches the serve machine's own matched model.
  options.canary.violation_margin = 1.0;
  // The variance gate compares against the incumbent's *stated* sigma —
  // on a foreign architecture the mis-deployed incumbent is confidently
  // wrong (its tiny sigma describes the machine it was trained on), so
  // an honest candidate that reports the serve machine's real spread
  // would be rejected for truthfulness. Off for cross-machine transfer.
  options.canary.uncertainty_margin = -1.0;
  options.promoter.probation_observations = 12;
  options.trainer.clusters = 8;
  options.goal = transfer.goal;
  return options;
}

adapt::Feedback feedback_for(const core::Predictor& model,
                             const core::KernelCharacterization& truth,
                             double cap_w, core::SchedulingGoal goal) {
  // The serving fiction of a cross-architecture deployment: samples are
  // measured on the *serving* machine (they are all the online stage
  // ever has), predictions come from whatever model is current, and the
  // measured outcome is the serving machine's truth at the chosen config.
  const core::Prediction prediction = model.predict(truth.samples);
  const core::Scheduler::Choice choice =
      core::Scheduler{prediction}.select_goal(goal, cap_w);
  adapt::Feedback feedback;
  feedback.samples = truth.samples;
  feedback.predicted_power_w = choice.predicted_power_w;
  feedback.predicted_performance = choice.predicted_performance;
  feedback.measured_power_w = truth.powers()[choice.config_index];
  feedback.measured_performance = truth.performances()[choice.config_index];
  feedback.cap_w = cap_w;
  feedback.label = truth;
  return feedback;
}

}  // namespace

TransferEval::TransferEval(TransferOptions options)
    : options_(options), cache_(kArchetypeCount) {
  ACSEL_CHECK_MSG(options_.kernels >= 2, "transfer needs >= 2 kernels");
  ACSEL_CHECK_MSG(
      options_.cap_quantile > 0.0 && options_.cap_quantile < 1.0,
      "cap_quantile must be in (0, 1)");
}

double TransferEval::mean_error(const core::Predictor& model,
                                const ArchData& serve,
                                double* violation_rate) const {
  double error_sum = 0.0;
  std::size_t violations = 0;
  for (const core::KernelCharacterization& truth : serve.truths) {
    const adapt::SelectionQuality quality = adapt::selection_quality(
        model, truth, serve.cap_w, options_.goal, {});
    error_sum += quality.error;
    violations += quality.violation ? 1 : 0;
  }
  const double n = static_cast<double>(serve.truths.size());
  if (violation_rate != nullptr) {
    *violation_rate = static_cast<double>(violations) / n;
  }
  return error_sum / n;
}

const ArchData& TransferEval::data(Archetype archetype) {
  std::optional<ArchData>& slot = cache_[static_cast<std::size_t>(archetype)];
  if (slot.has_value()) {
    return *slot;
  }
  const ArchetypeCatalog catalog{options_.seed};
  const soc::Machine machine = catalog.make_machine(archetype);
  const auto suite = workloads::Suite::standard();

  ArchData data;
  data.archetype = archetype;
  data.fingerprint = fingerprint_of(catalog.spec(archetype));
  for (std::size_t i = 0; i < options_.kernels && i < suite.size(); ++i) {
    soc::Machine clone = machine.clone(i);
    data.truths.push_back(
        eval::characterize_instance(clone, suite.instances()[i]));
  }

  // The cap sits at a quantile of this machine's measured per-config
  // power distribution, so every archetype gets a comparably *hard*
  // constraint in its own wattage regime.
  std::vector<double> powers;
  for (const core::KernelCharacterization& truth : data.truths) {
    const std::vector<double> p = truth.powers();
    powers.insert(powers.end(), p.begin(), p.end());
  }
  std::sort(powers.begin(), powers.end());
  data.cap_w = powers[static_cast<std::size_t>(
      options_.cap_quantile * static_cast<double>(powers.size() - 1))];

  data.model = core::make_predictor(core::train(data.truths).model);
  data.matched_error =
      mean_error(*data.model, data, &data.matched_violation_rate);
  data.matched_score = data.matched_error +
                       options_.violation_penalty *
                           data.matched_violation_rate;
  slot = std::move(data);
  return *slot;
}

TransferResult TransferEval::run(Archetype train_arch, Archetype serve_arch) {
  const ArchData& trained = data(train_arch);
  const ArchData& serving = data(serve_arch);

  const auto score = [this](double error, double violation_rate) {
    return error + options_.violation_penalty * violation_rate;
  };
  TransferResult result;
  result.train_arch = train_arch;
  result.serve_arch = serve_arch;
  result.matched_error = serving.matched_error;
  result.matched_score = serving.matched_score;
  result.mismatched_error = mean_error(*trained.model, serving,
                                       &result.mismatched_violation_rate);
  result.mismatched_score =
      score(result.mismatched_error, result.mismatched_violation_rate);
  if (train_arch == serve_arch) {
    result.recovered_error = result.mismatched_error;
    result.recovered_violation_rate = result.mismatched_violation_rate;
    result.recovered_score = result.mismatched_score;
    return result;
  }

  // The adaptation leg: a registry seeded with A's model (keyed by A's
  // fingerprint — this *is* the mis-deployment), fed B's live feedback.
  // Seed data is empty on purpose: in a workload shift the old truths
  // still describe the machine, but here they are labels from a foreign
  // architecture — mixing them into the retrain set teaches the
  // candidate A's power curves all over again. The reservoir of live B
  // observations is the only honest training data the serving box has.
  exec::Executor& executor = options_.executor != nullptr
                                 ? *options_.executor
                                 : exec::inline_executor();
  serve::ModelRegistry registry{{.retain_limit = 4}};
  registry.publish(trained.model, trained.fingerprint);
  adapt::AdaptController controller{registry, executor, {},
                                    transfer_adapt_options(options_)};

  std::uint64_t promotions_seen = 0;
  int last_promotion_round = 0;
  for (int round = 0; round < options_.max_rounds; ++round) {
    for (const core::KernelCharacterization& truth : serving.truths) {
      controller.observe(feedback_for(*registry.current().model, truth,
                                      serving.cap_w, options_.goal));
      controller.wait_for_retrain();
    }
    const serve::AdaptStats progress = controller.adapt_stats();
    if (progress.promotions > promotions_seen) {
      promotions_seen = progress.promotions;
      last_promotion_round = round;
      if (result.rounds_to_promotion < 0) {
        result.rounds_to_promotion = round + 1;
      }
    }
    if (promotions_seen > 0 && round >= last_promotion_round + 3 &&
        !controller.canary_active()) {
      break;  // post-promotion rounds covered probation; the loop is quiet
    }
  }
  result.adapt = controller.adapt_stats();
  result.recovered_error = mean_error(*registry.current().model, serving,
                                      &result.recovered_violation_rate);
  result.recovered_score =
      score(result.recovered_error, result.recovered_violation_rate);
  return result;
}

std::vector<TransferResult> TransferEval::run_matrix(
    std::span<const Archetype> archetypes) {
  std::vector<TransferResult> results;
  results.reserve(archetypes.size() * archetypes.size());
  for (const Archetype train_arch : archetypes) {
    for (const Archetype serve_arch : archetypes) {
      results.push_back(run(train_arch, serve_arch));
    }
  }
  return results;
}

}  // namespace acsel::zoo
