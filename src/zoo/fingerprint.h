// Hardware fingerprinting: a stable hash of what makes a machine *the
// same architecture* — core counts, the P-state frequency/voltage grids,
// and the perf/power-curve coefficients of its MachineSpec — plus the
// coarse descriptor the registry uses for nearest-architecture fallback.
//
// The canonical serialization is explicit and versioned (see
// canonical_spec_bytes), so the hash is reproducible across builds,
// platforms and thread counts: same spec, same bytes, same fingerprint.
// Measurement-noise, sensor-guard, thermal-boost and trace fields are
// deliberately excluded — they describe how a machine is *observed*, not
// what it *is*, and a model transfers across them.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/message.h"
#include "soc/perf_model.h"

namespace acsel::zoo {

/// The wire/registry type lives in serve (the codec must encode it and
/// serve never depends on the layers above it, like FleetStats); the zoo
/// name is the one call sites should read.
using HardwareFingerprint = serve::HardwareFingerprint;

/// The canonical byte serialization fingerprint hashes are computed from:
/// a format-version byte, the hw core counts and P-state grids, then the
/// spec's perf/power coefficients in declared order (little-endian, f64
/// as IEEE-754 bit patterns). Exposed so tests can assert bit-identical
/// serialization across runs and thread counts.
std::vector<std::uint8_t> canonical_spec_bytes(const soc::MachineSpec& spec);

/// The spec's fingerprint: FNV-1a over canonical_spec_bytes (finalized so
/// the hash is never 0 — 0 means "no fingerprint" on the wire) plus the
/// coarse descriptor (core counts, peak frequencies, idle/peak power
/// envelope) used for nearest-architecture fallback.
HardwareFingerprint fingerprint_of(const soc::MachineSpec& spec);

}  // namespace acsel::zoo
