#include "zoo/archetype.h"

#include <array>

#include "util/error.h"
#include "util/rng.h"

namespace acsel::zoo {

namespace {

constexpr std::array<Archetype, kArchetypeCount> kAllArchetypes{
    Archetype::Trinity, Archetype::BigLittle, Archetype::HpcGpu,
    Archetype::Edge};

/// Applies the catalog's calibration jitter: every continuous perf/power
/// coefficient moves by at most ±3%, in a fixed field order so the result
/// is a pure function of the rng seed. Measurement, guard, thermal and
/// trace fields are identity, not calibration — they stay exact.
void jitter_spec(soc::MachineSpec& spec, Rng& rng) {
  double* fields[] = {
      &spec.cpu_scalar_flops_per_cycle,
      &spec.cpu_vector_gain,
      &spec.module_share_penalty,
      &spec.dram_bw_gbs,
      &spec.gpu_bw_gbs,
      &spec.single_thread_bw_frac,
      &spec.gpu_flops_per_core_cycle,
      &spec.gpu_divergence_penalty,
      &spec.omp_overhead_ms,
      &spec.base_power_w,
      &spec.cpu_leak_w_per_v2,
      &spec.cpu_core_dyn_w,
      &spec.cpu_vector_power_gain,
      &spec.gpu_leak_w_per_v2,
      &spec.gpu_dyn_w,
      &spec.nb_w_per_gbs,
  };
  for (double* field : fields) {
    *field *= rng.uniform(0.97, 1.03);
  }
}

}  // namespace

const char* to_string(Archetype archetype) {
  switch (archetype) {
    case Archetype::Trinity:
      return "trinity";
    case Archetype::BigLittle:
      return "biglittle";
    case Archetype::HpcGpu:
      return "hpc-gpu";
    case Archetype::Edge:
      return "edge";
  }
  return "?";
}

Archetype archetype_from_string(const std::string& name) {
  for (const Archetype archetype : kAllArchetypes) {
    if (name == to_string(archetype)) {
      return archetype;
    }
  }
  throw Error("unknown archetype: \"" + name + '"');
}

std::span<const Archetype> all_archetypes() { return kAllArchetypes; }

ArchetypeCatalog::ArchetypeCatalog(std::uint64_t seed) : seed_(seed) {}

soc::MachineSpec ArchetypeCatalog::base_spec(Archetype archetype) {
  soc::MachineSpec spec;  // the Trinity baseline
  switch (archetype) {
    case Archetype::Trinity:
      break;
    case Archetype::BigLittle:
      // Mobile SoC: module 1 becomes a LITTLE cluster, LPDDR-class
      // memory, a smaller integrated GPU, and a lower power floor.
      spec.asymmetric.enabled = true;
      spec.asymmetric.little_perf_scale = 0.40;
      spec.asymmetric.little_power_scale = 0.28;
      spec.asymmetric.migration_cost_ms = 0.30;
      spec.dram_bw_gbs = 14.0;
      spec.gpu_bw_gbs = 16.0;
      spec.gpu_flops_per_core_cycle = 1.4;
      spec.gpu_dyn_w = 22.0;
      spec.gpu_leak_w_per_v2 = 1.2;
      spec.base_power_w = 3.5;
      spec.cpu_core_dyn_w = 1.1;
      spec.cpu_leak_w_per_v2 = 2.2;
      break;
    case Archetype::HpcGpu:
      // Discrete-GPU node: the accelerator dwarfs the host — high idle
      // floor (board + VRMs + fans), a steep GPU dynamic-power law, wide
      // GDDR-class bandwidth, and beefier server cores.
      spec.base_power_w = 45.0;
      spec.gpu_dyn_w = 130.0;
      spec.gpu_leak_w_per_v2 = 7.0;
      spec.gpu_flops_per_core_cycle = 4.0;
      spec.gpu_bw_gbs = 180.0;
      spec.gpu_divergence_penalty = 0.55;
      spec.dram_bw_gbs = 60.0;
      spec.single_thread_bw_frac = 0.4;
      spec.cpu_scalar_flops_per_cycle = 4.0;
      spec.cpu_core_dyn_w = 2.8;
      spec.cpu_leak_w_per_v2 = 5.0;
      spec.nb_w_per_gbs = 0.12;
      break;
    case Archetype::Edge:
      // Low-power edge class: every watt coefficient shrinks faster than
      // the performance ones, so its feasible-under-cap region looks
      // nothing like the Trinity's.
      spec.base_power_w = 1.2;
      spec.cpu_leak_w_per_v2 = 0.7;
      spec.cpu_core_dyn_w = 0.45;
      spec.cpu_vector_power_gain = 0.5;
      spec.gpu_leak_w_per_v2 = 0.5;
      spec.gpu_dyn_w = 7.0;
      spec.nb_w_per_gbs = 0.15;
      spec.cpu_scalar_flops_per_cycle = 1.2;
      spec.cpu_vector_gain = 1.8;
      spec.dram_bw_gbs = 9.0;
      spec.gpu_bw_gbs = 11.0;
      spec.gpu_flops_per_core_cycle = 1.0;
      spec.omp_overhead_ms = 0.05;
      break;
  }
  return spec;
}

soc::MachineSpec ArchetypeCatalog::spec(Archetype archetype) const {
  soc::MachineSpec spec = base_spec(archetype);
  Rng rng{Rng::mix_seeds(
      seed_, static_cast<std::uint64_t>(archetype) + 1)};
  jitter_spec(spec, rng);
  return spec;
}

soc::Machine ArchetypeCatalog::make_machine(Archetype archetype) const {
  // Fold the archetype into the machine seed too: two archetypes from one
  // catalog never share a measurement-noise stream.
  return soc::Machine{
      spec(archetype),
      Rng::mix_seeds(seed_,
                           0x2000u + static_cast<std::uint64_t>(archetype))};
}

std::vector<NamedSpec> ArchetypeCatalog::specs() const {
  std::vector<NamedSpec> out;
  out.reserve(kArchetypeCount);
  for (const Archetype archetype : kAllArchetypes) {
    out.push_back(NamedSpec{to_string(archetype), spec(archetype)});
  }
  return out;
}

std::vector<NamedSpec> ArchetypeCatalog::calibration_variants() {
  std::vector<NamedSpec> variants;
  variants.push_back({"baseline", soc::MachineSpec{}});
  {
    NamedSpec v{"GPU 25% weaker (gpu_dyn/eff)", soc::MachineSpec{}};
    v.spec.gpu_dyn_w *= 1.25;                 // hungrier
    v.spec.gpu_flops_per_core_cycle *= 0.75;  // slower
    variants.push_back(v);
  }
  {
    NamedSpec v{"GPU 25% stronger", soc::MachineSpec{}};
    v.spec.gpu_dyn_w *= 0.75;
    v.spec.gpu_flops_per_core_cycle *= 1.25;
    variants.push_back(v);
  }
  {
    NamedSpec v{"DRAM bandwidth +25%", soc::MachineSpec{}};
    v.spec.dram_bw_gbs *= 1.25;
    v.spec.gpu_bw_gbs *= 1.25;
    variants.push_back(v);
  }
  {
    NamedSpec v{"CPU cores 25% hungrier", soc::MachineSpec{}};
    v.spec.cpu_core_dyn_w *= 1.25;
    variants.push_back(v);
  }
  {
    NamedSpec v{"3x SMU noise", soc::MachineSpec{}};
    v.spec.power_noise_frac *= 3.0;
    variants.push_back(v);
  }
  return variants;
}

}  // namespace acsel::zoo
