// The transfer-evaluation harness: train on architecture A, serve
// architecture B, measure the accuracy/cap-violation cliff, then let the
// adapt loop (drift → retrain → canary → republish) close it and report
// the recovery lag. This is the zoo's hardest test of acsel_adapt: the
// residual stream is not a drifted *workload* but a wholly different
// *machine*, so the stale model's power predictions are biased by the
// architecture gap, the drift detectors fire, and the loop must retrain
// its way down to near-matched error.
//
// Per-archetype work (characterization sweep, model training, matched
// baseline) is computed once and cached, so the full A×B matrix costs
// four sweeps plus the adapt loops of the off-diagonal pairs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "adapt/controller.h"
#include "core/characterization.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "exec/executor.h"
#include "serve/message.h"
#include "zoo/archetype.h"

namespace acsel::zoo {

struct TransferOptions {
  /// Catalog + machine seed (one seed, one reproducible matrix).
  std::uint64_t seed = 90210;
  /// Kernels characterized per archetype (first N of the standard suite).
  std::size_t kernels = 10;
  /// Power cap as a quantile of each *serving* archetype's per-config
  /// power range — a fixed wattage would be trivially infeasible on the
  /// HPC node and trivially slack on the edge class.
  double cap_quantile = 0.6;
  core::SchedulingGoal goal = core::SchedulingGoal::MaxPerformance;
  /// Weight of a cap violation in the transfer score (score = selection
  /// error + penalty * violation rate) and in the adapt loop's canary
  /// comparison. A mis-deployed model can post error 0 by blowing the
  /// cap on every request — under a power cap that is the cliff, not a
  /// win, so violations must carry weight.
  double violation_penalty = 1.0;
  /// Adapt rounds before giving up on recovery (each round feeds every
  /// kernel's feedback once).
  int max_rounds = 30;
  /// Executor for characterization and retrains; nullptr = inline.
  exec::Executor* executor = nullptr;
};

/// Cached per-archetype state: the ground truth of its machine, the model
/// trained on it, the cap derived from its power range, and the matched
/// (train = serve) baseline quality.
struct ArchData {
  Archetype archetype = Archetype::Trinity;
  serve::HardwareFingerprint fingerprint;
  double cap_w = 0.0;
  std::vector<core::KernelCharacterization> truths;
  core::PredictorPtr model;
  double matched_error = 0.0;
  double matched_violation_rate = 0.0;
  /// matched_error + violation_penalty * matched_violation_rate.
  double matched_score = 0.0;
};

/// One cell of the transfer matrix.
struct TransferResult {
  Archetype train_arch = Archetype::Trinity;
  Archetype serve_arch = Archetype::Trinity;
  /// Selection error of the serve archetype's own model on its own truth.
  double matched_error = 0.0;
  /// Error/violations of the train archetype's model served cold on the
  /// serve archetype — the cliff.
  double mismatched_error = 0.0;
  double mismatched_violation_rate = 0.0;
  /// After the adapt loop ran (equals the mismatched numbers on the
  /// diagonal, where no adaptation happens).
  double recovered_error = 0.0;
  double recovered_violation_rate = 0.0;
  /// Feedback rounds until the first promotion; -1 = never promoted.
  int rounds_to_promotion = -1;
  serve::AdaptStats adapt;

  /// Combined scores (error + violation_penalty * violation rate) — the
  /// quantity the cliff and recovery claims are made about. A model that
  /// ignores the cap is worse, not better, than the matched baseline.
  double matched_score = 0.0;
  double mismatched_score = 0.0;
  double recovered_score = 0.0;
};

class TransferEval {
 public:
  explicit TransferEval(TransferOptions options = {});

  /// Lazily characterizes + trains the archetype (cached thereafter).
  const ArchData& data(Archetype archetype);

  /// Runs one matrix cell. Off-diagonal: publish A's model, stream B's
  /// feedback through an AdaptController until it promotes (or
  /// max_rounds), then score the registry's final model on B.
  TransferResult run(Archetype train_arch, Archetype serve_arch);

  /// The full ordered matrix over `archetypes` (diagonal included — the
  /// diagonal rows carry the matched baselines).
  std::vector<TransferResult> run_matrix(
      std::span<const Archetype> archetypes);

  const TransferOptions& options() const { return options_; }

 private:
  double mean_error(const core::Predictor& model, const ArchData& serve,
                    double* violation_rate) const;

  TransferOptions options_;
  std::vector<std::optional<ArchData>> cache_;
};

}  // namespace acsel::zoo
