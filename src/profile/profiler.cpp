#include "profile/profiler.h"

#include "util/csv.h"
#include "util/error.h"

namespace acsel::profile {

Profiler::Profiler(soc::Machine& machine) : machine_(&machine) {}

const KernelRecord& Profiler::run(
    const workloads::WorkloadInstance& instance,
    const hw::Configuration& config, soc::Governor* governor) {
  const soc::ExecutionResult result =
      machine_->run(instance.traits, config, governor);

  KernelRecord record;
  record.benchmark = instance.benchmark;
  record.input = instance.input;
  record.kernel = instance.kernel;
  record.config = result.final_config;
  record.time_ms = result.time_ms;
  record.cpu_power_w = result.avg_cpu_power_w;
  record.nbgpu_power_w = result.avg_nbgpu_power_w;
  record.energy_j = result.energy_j;
  record.counters = result.counters;
  history_.push_back(std::move(record));
  return history_.back();
}

std::vector<KernelRecord> Profiler::records_for(
    const std::string& instance_id) const {
  std::vector<KernelRecord> out;
  for (const auto& record : history_) {
    if (record.instance_id() == instance_id) {
      out.push_back(record);
    }
  }
  return out;
}

std::optional<KernelRecord> Profiler::latest(
    const std::string& instance_id, const hw::Configuration& config) const {
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if (it->config == config && it->instance_id() == instance_id) {
      return *it;
    }
  }
  return std::nullopt;
}

std::optional<Profiler::Aggregate> Profiler::aggregate(
    const std::string& instance_id, const hw::Configuration& config) const {
  Aggregate agg;
  for (const auto& record : history_) {
    if (record.config == config && record.instance_id() == instance_id) {
      ++agg.runs;
      agg.mean_time_ms += record.time_ms;
      agg.mean_power_w += record.total_power_w();
      agg.mean_performance += record.performance();
    }
  }
  if (agg.runs == 0) {
    return std::nullopt;
  }
  const double n = static_cast<double>(agg.runs);
  agg.mean_time_ms /= n;
  agg.mean_power_w /= n;
  agg.mean_performance /= n;
  return agg;
}

void Profiler::extend(const Profiler& other) {
  history_.insert(history_.end(), other.history_.begin(),
                  other.history_.end());
}

void Profiler::write_csv(std::ostream& out) const {
  CsvWriter writer{out};
  writer.header(record_csv_header());
  for (const auto& record : history_) {
    writer.row(to_csv_row(record));
  }
}

void Profiler::load_csv(const std::string& text) {
  const CsvDocument doc = parse_csv(text);
  ACSEL_CHECK_MSG(doc.header == record_csv_header(),
                  "profile CSV header mismatch");
  std::vector<KernelRecord> loaded;
  loaded.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    loaded.push_back(from_csv_row(row));
  }
  history_ = std::move(loaded);
}

}  // namespace acsel::profile
