#include "profile/record.h"

#include "util/error.h"
#include "util/strings.h"

namespace acsel::profile {

namespace {

std::string device_field(hw::Device device) {
  return device == hw::Device::Cpu ? "cpu" : "gpu";
}

hw::Device parse_device(const std::string& field) {
  if (field == "cpu") {
    return hw::Device::Cpu;
  }
  if (field == "gpu") {
    return hw::Device::Gpu;
  }
  throw Error{"bad device field: " + field};
}

std::string mapping_field(hw::CoreMapping mapping) {
  return mapping == hw::CoreMapping::Compact ? "compact" : "scatter";
}

hw::CoreMapping parse_mapping(const std::string& field) {
  if (field == "compact") {
    return hw::CoreMapping::Compact;
  }
  if (field == "scatter") {
    return hw::CoreMapping::Scatter;
  }
  throw Error{"bad mapping field: " + field};
}

}  // namespace

const std::vector<std::string>& record_csv_header() {
  static const std::vector<std::string> header{
      "benchmark",     "input",         "kernel",       "device",
      "cpu_pstate",    "threads",       "gpu_pstate",   "mapping",
      "time_ms",       "cpu_power_w",   "nbgpu_power_w", "energy_j",
      "instructions",  "l1d_misses",    "l2d_misses",   "tlb_misses",
      "branches",      "vector_insts",  "stalled_cycles",
      "core_cycles",   "reference_cycles",             "idle_fpu_cycles",
      "interrupts",    "dram_accesses",
  };
  return header;
}

std::vector<std::string> to_csv_row(const KernelRecord& r) {
  const auto d = [](double v) { return format_double(v, 17); };
  return {
      r.benchmark,
      r.input,
      r.kernel,
      device_field(r.config.device),
      std::to_string(r.config.cpu_pstate),
      std::to_string(r.config.threads),
      std::to_string(r.config.gpu_pstate),
      mapping_field(r.config.mapping),
      d(r.time_ms),
      d(r.cpu_power_w),
      d(r.nbgpu_power_w),
      d(r.energy_j),
      d(r.counters.instructions),
      d(r.counters.l1d_misses),
      d(r.counters.l2d_misses),
      d(r.counters.tlb_misses),
      d(r.counters.branches),
      d(r.counters.vector_insts),
      d(r.counters.stalled_cycles),
      d(r.counters.core_cycles),
      d(r.counters.reference_cycles),
      d(r.counters.idle_fpu_cycles),
      d(r.counters.interrupts),
      d(r.counters.dram_accesses),
  };
}

KernelRecord from_csv_row(const std::vector<std::string>& row) {
  ACSEL_CHECK_MSG(row.size() == record_csv_header().size(),
                  "record row has wrong field count");
  KernelRecord r;
  std::size_t i = 0;
  r.benchmark = row[i++];
  r.input = row[i++];
  r.kernel = row[i++];
  r.config.device = parse_device(row[i++]);
  r.config.cpu_pstate = parse_size(row[i++]);
  r.config.threads = static_cast<int>(parse_size(row[i++]));
  r.config.gpu_pstate = parse_size(row[i++]);
  r.config.mapping = parse_mapping(row[i++]);
  r.config.validate();
  r.time_ms = parse_double(row[i++]);
  r.cpu_power_w = parse_double(row[i++]);
  r.nbgpu_power_w = parse_double(row[i++]);
  r.energy_j = parse_double(row[i++]);
  r.counters.instructions = parse_double(row[i++]);
  r.counters.l1d_misses = parse_double(row[i++]);
  r.counters.l2d_misses = parse_double(row[i++]);
  r.counters.tlb_misses = parse_double(row[i++]);
  r.counters.branches = parse_double(row[i++]);
  r.counters.vector_insts = parse_double(row[i++]);
  r.counters.stalled_cycles = parse_double(row[i++]);
  r.counters.core_cycles = parse_double(row[i++]);
  r.counters.reference_cycles = parse_double(row[i++]);
  r.counters.idle_fpu_cycles = parse_double(row[i++]);
  r.counters.interrupts = parse_double(row[i++]);
  r.counters.dram_accesses = parse_double(row[i++]);
  ACSEL_CHECK_MSG(r.time_ms > 0.0, "record time must be positive");
  return r;
}

}  // namespace acsel::profile
