// The integrated profiling library of paper §III-D: associates power and
// performance measurements with specific kernels, accounting for launch
// and synchronization overheads (the simulator folds those into kernel
// time). A history of measurements stays accessible to the runtime — this
// is the foundation the online scheduler builds on — and can be written to
// disk after the application completes.
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "profile/record.h"
#include "soc/machine.h"
#include "workloads/workload.h"

namespace acsel::profile {

class Profiler {
 public:
  /// Profiles on `machine`, which must outlive the profiler.
  ///
  /// Thread-safety: none — a Profiler wraps one Machine and mutates its
  /// history on every run(). Parallel sweeps use one Profiler per cloned
  /// Machine and merge histories afterwards with extend().
  explicit Profiler(soc::Machine& machine);

  /// Runs one invocation of `instance` at `config` (optionally governed,
  /// e.g. by a frequency limiter), records the measurements, and returns
  /// the record. The record is also appended to the history.
  const KernelRecord& run(const workloads::WorkloadInstance& instance,
                          const hw::Configuration& config,
                          soc::Governor* governor = nullptr);

  /// Full measurement history, in execution order.
  const std::vector<KernelRecord>& history() const { return history_; }

  /// All records of one kernel instance (by WorkloadInstance::id()).
  std::vector<KernelRecord> records_for(const std::string& instance_id) const;

  /// Most recent record of the instance at exactly `config`, if any — the
  /// lookup a dynamic scheduler uses before predicting.
  std::optional<KernelRecord> latest(const std::string& instance_id,
                                     const hw::Configuration& config) const;

  /// Mean performance and power over all records of the instance at
  /// `config`; nullopt when there are none.
  struct Aggregate {
    std::size_t runs = 0;
    double mean_time_ms = 0.0;
    double mean_power_w = 0.0;
    double mean_performance = 0.0;
  };
  std::optional<Aggregate> aggregate(const std::string& instance_id,
                                     const hw::Configuration& config) const;

  std::size_t size() const { return history_.size(); }
  void clear() { history_.clear(); }

  /// Appends another profiler's history to this one — how per-task
  /// profilers from a parallel sweep are folded back into one history
  /// (append in task-index order to keep the merged history
  /// deterministic).
  void extend(const Profiler& other);

  /// Writes the history as CSV (paper §III-D: "written to disk after the
  /// application completes").
  void write_csv(std::ostream& out) const;

  /// Replaces the history with records parsed from CSV text.
  void load_csv(const std::string& text);

 private:
  soc::Machine* machine_;
  std::vector<KernelRecord> history_;
};

}  // namespace acsel::profile
