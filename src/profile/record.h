// One profiling record: the power and performance measurements associated
// with one kernel invocation at one configuration (paper §III-D). Records
// are the only data the model pipeline ever sees — it never looks inside
// the simulator.
#pragma once

#include <string>
#include <vector>

#include "hw/config.h"
#include "soc/counters.h"

namespace acsel::profile {

struct KernelRecord {
  std::string benchmark;
  std::string input;
  std::string kernel;
  hw::Configuration config;

  double time_ms = 0.0;
  double cpu_power_w = 0.0;
  double nbgpu_power_w = 0.0;
  double energy_j = 0.0;
  soc::CounterBlock counters;

  double total_power_w() const { return cpu_power_w + nbgpu_power_w; }
  /// Throughput (invocations per second) — the "performance" the paper's
  /// frontiers and models rank.
  double performance() const { return 1000.0 / time_ms; }

  /// Unique kernel-instance id, matching WorkloadInstance::id().
  std::string instance_id() const {
    return benchmark + "-" + input + "/" + kernel;
  }
};

/// Column headers of the on-disk CSV representation.
const std::vector<std::string>& record_csv_header();

/// One CSV row for a record (field order matches record_csv_header()).
std::vector<std::string> to_csv_row(const KernelRecord& record);

/// Parses a CSV row back into a record; throws acsel::Error on malformed
/// input.
KernelRecord from_csv_row(const std::vector<std::string>& row);

}  // namespace acsel::profile
