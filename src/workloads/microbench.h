// Synthetic microbenchmark training suite (paper §III-B: "the training set
// could be composed of microbenchmarks"). See microbench.cpp.
#pragma once

#include <cstddef>

#include "workloads/workload.h"

namespace acsel::workloads {

/// A grid of steps_per_axis^3 microbenchmarks sweeping memory intensity,
/// regularity (parallelism/divergence/GPU affinity) and vectorization.
/// The default 3 gives 27 kernels — comparable to the application suite.
BenchmarkSpec microbenchmark_suite(std::size_t steps_per_axis = 3);

}  // namespace acsel::workloads
