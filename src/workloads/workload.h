// Workload descriptions: the simulated equivalents of the paper's exascale
// proxy benchmarks (§IV-B) — LULESH (20 significant kernels), CoMD (7),
// SMC (8) and Rodinia LU (1), 36 kernels total, run with multiple inputs
// for 65 benchmark/input kernel instances.
//
// Each kernel is a KernelSpec: a name plus the KernelCharacteristics the
// simulator consumes and a time-share weight ("weighted by how much of the
// benchmark time is spent in each kernel", §V-D). Inputs scale the work and
// shift cache behaviour, which is what varies kernel behaviour across
// input sizes in the paper.
#pragma once

#include <string>
#include <vector>

#include "soc/kernel.h"

namespace acsel::workloads {

/// One kernel of a benchmark, before input scaling.
struct KernelSpec {
  std::string name;
  soc::KernelCharacteristics traits;
  /// Relative share of benchmark runtime spent in this kernel (normalized
  /// per benchmark/input by the Suite).
  double time_share = 1.0;
};

/// An input deck for a benchmark: scales problem size and cache fit.
struct InputSpec {
  std::string name;           ///< "Small", "Large", "LJ", "EAM", ...
  double work_scale = 1.0;    ///< multiplies work_gflop
  double locality_delta = 0;  ///< added to cache_locality (clamped to [0,1])
  double divergence_delta = 0;  ///< added to branch_divergence (clamped)
};

/// A benchmark: a named set of kernels and the inputs it runs with.
struct BenchmarkSpec {
  std::string name;  ///< "LULESH", "CoMD", "SMC", "LU"
  std::vector<KernelSpec> kernels;
  std::vector<InputSpec> inputs;
};

/// One concrete kernel instance: a kernel of a benchmark under an input.
/// This is the unit the model clusters, predicts and schedules.
struct WorkloadInstance {
  std::string benchmark;
  std::string input;
  std::string kernel;
  soc::KernelCharacteristics traits;  ///< after input scaling
  double weight = 1.0;  ///< normalized time share within benchmark/input

  /// "LULESH-Small/CalcFBHourglassForce" — unique across the suite.
  std::string id() const;
  /// "LULESH Small" — the grouping used by the paper's per-benchmark plots.
  std::string benchmark_input() const;
};

/// Applies an input deck to a kernel, producing the scaled characteristics.
soc::KernelCharacteristics apply_input(const soc::KernelCharacteristics& k,
                                       const InputSpec& input);

/// Benchmark definitions (one translation unit each; see DESIGN.md for the
/// characterization rationale).
BenchmarkSpec lulesh_benchmark();
BenchmarkSpec comd_benchmark();
BenchmarkSpec smc_benchmark();
BenchmarkSpec lu_benchmark();

}  // namespace acsel::workloads
