// SMC: a combustion (reacting compressible Navier-Stokes) proxy
// application, 8 significant kernels. Chemistry-rate evaluation dominates
// and is the most compute-dense kernel in the suite — it is the ~55 W
// best-configuration kernel of paper §III-B. Flux stencils are mixed,
// conversions are streaming, and the time-step reduction is branchy.
#include "workloads/kernel_builder.h"
#include "workloads/workload.h"

namespace acsel::workloads {

namespace {
constexpr auto kernel = detail::make_kernel;
}  // namespace

BenchmarkSpec smc_benchmark() {
  BenchmarkSpec bench;
  bench.name = "SMC";
  // name, GF, B/F, par, vec, div, gpu, launch, loc, tlb, irr, fpu, share
  bench.kernels = {
      kernel("ChemistryRates", 3.00, 0.12, 0.99, 0.60, 0.15, 0.70, 0.60,
             0.70, 0.08, 0.20, 0.85, 0.40),
      kernel("DiffusionFluxX", 0.90, 1.00, 0.97, 0.45, 0.04, 0.55, 0.45,
             0.45, 0.12, 0.08, 0.60, 0.09),
      kernel("DiffusionFluxY", 0.90, 1.00, 0.97, 0.45, 0.04, 0.55, 0.45,
             0.45, 0.12, 0.08, 0.60, 0.09),
      kernel("AdvectionFlux", 0.80, 1.10, 0.97, 0.40, 0.06, 0.50, 0.45,
             0.40, 0.12, 0.10, 0.55, 0.08),
      kernel("TransportCoefficients", 1.40, 0.30, 0.98, 0.50, 0.10, 0.60,
             0.50, 0.60, 0.08, 0.15, 0.70, 0.12),
      kernel("ConsToPrim", 0.30, 1.70, 0.98, 0.50, 0.03, 0.45, 0.30, 0.40,
             0.10, 0.05, 0.45, 0.04),
      kernel("PrimToCons", 0.30, 1.70, 0.98, 0.50, 0.03, 0.45, 0.30, 0.40,
             0.10, 0.05, 0.45, 0.04),
      kernel("ComputeDt", 0.20, 1.50, 0.85, 0.20, 0.20, 0.25, 0.40, 0.40,
             0.10, 0.30, 0.35, 0.02),
  };
  bench.inputs = {
      {"Default", 1.00, 0.00, 0.00},
  };
  return bench;
}

}  // namespace acsel::workloads
