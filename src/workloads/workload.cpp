#include "workloads/workload.h"

#include <algorithm>

#include "util/error.h"

namespace acsel::workloads {

std::string WorkloadInstance::id() const {
  return benchmark + "-" + input + "/" + kernel;
}

std::string WorkloadInstance::benchmark_input() const {
  return benchmark + " " + input;
}

soc::KernelCharacteristics apply_input(const soc::KernelCharacteristics& k,
                                       const InputSpec& input) {
  ACSEL_CHECK_MSG(input.work_scale > 0.0, "work_scale must be positive");
  soc::KernelCharacteristics scaled = k;
  scaled.work_gflop *= input.work_scale;
  scaled.cache_locality =
      std::clamp(scaled.cache_locality + input.locality_delta, 0.0, 1.0);
  scaled.branch_divergence = std::clamp(
      scaled.branch_divergence + input.divergence_delta, 0.0, 1.0);
  scaled.validate();
  return scaled;
}

}  // namespace acsel::workloads
