// LU: the Rodinia LU decomposition benchmark ("lud"), chosen by the paper
// for its relevance to LINPACK (§IV-B). A single dense-linear-algebra
// kernel that is extremely GPU-friendly: nearly fully parallel, regular,
// compute-bound. Its CPU implementation vectorizes only modestly, which is
// what produces the paper's dramatic device gap — on LU Small the frontier
// jumps from 10.4% to 89.0% of peak performance between 17.2 W (best
// feasible CPU configuration) and 17.6 W (first GPU configuration), and on
// LU Large GPU+FL exceeds oracle performance 92x when it blows the cap
// (§V-D). Three input sizes stress the launch-overhead/amortization
// trade-off.
#include "workloads/kernel_builder.h"
#include "workloads/workload.h"

namespace acsel::workloads {

namespace {
constexpr auto kernel = detail::make_kernel;
}  // namespace

BenchmarkSpec lu_benchmark() {
  BenchmarkSpec bench;
  bench.name = "LU";
  // name, GF, B/F, par, vec, div, gpu, launch, loc, tlb, irr, fpu, share
  bench.kernels = {
      kernel("lud", 2.00, 0.05, 0.995, 0.12, 0.03, 0.80, 0.50, 0.60, 0.10,
             0.06, 0.70, 1.00),
  };
  bench.inputs = {
      {"Small", 0.20, +0.15, 0.0},
      {"Medium", 0.80, +0.05, 0.0},
      {"Large", 3.00, -0.05, 0.0},
  };
  return bench;
}

}  // namespace acsel::workloads
