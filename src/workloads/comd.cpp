// CoMD: the ExMatEx classical molecular dynamics proxy application, 7
// significant kernels. The force kernel dominates runtime and is
// compute-dense but divergent (neighbor lists, cutoff tests); the
// integrators are pure streaming; atom redistribution, halo exchange and
// neighbor-list construction are irregular, poorly vectorized, and map
// badly onto the GPU. The two inputs select the force field: Lennard-Jones
// (LJ) or the heavier embedded-atom method (EAM).
#include "workloads/kernel_builder.h"
#include "workloads/workload.h"

namespace acsel::workloads {

namespace {
constexpr auto kernel = detail::make_kernel;
}  // namespace

BenchmarkSpec comd_benchmark() {
  BenchmarkSpec bench;
  bench.name = "CoMD";
  // name, GF, B/F, par, vec, div, gpu, launch, loc, tlb, irr, fpu, share
  bench.kernels = {
      kernel("ComputeForce", 2.20, 0.35, 0.98, 0.30, 0.30, 0.50, 0.70,
             0.55, 0.20, 0.45, 0.75, 0.55),
      kernel("AdvanceVelocity", 0.15, 2.60, 0.99, 0.50, 0.01, 0.45, 0.25,
             0.30, 0.05, 0.03, 0.30, 0.04),
      kernel("AdvancePosition", 0.15, 2.60, 0.99, 0.50, 0.01, 0.45, 0.25,
             0.30, 0.05, 0.03, 0.30, 0.04),
      kernel("RedistributeAtoms", 0.20, 1.80, 0.60, 0.05, 0.50, 0.12, 0.80,
             0.30, 0.35, 0.70, 0.20, 0.12),
      kernel("BuildNeighborList", 0.50, 1.40, 0.85, 0.10, 0.45, 0.20, 0.70,
             0.35, 0.30, 0.60, 0.30, 0.12),
      kernel("ComputeKineticEnergy", 0.10, 2.00, 0.95, 0.40, 0.05, 0.35,
             0.30, 0.35, 0.08, 0.10, 0.40, 0.03),
      kernel("HaloExchange", 0.12, 2.20, 0.50, 0.05, 0.40, 0.10, 0.60,
             0.30, 0.25, 0.65, 0.15, 0.10),
  };
  // The EAM potential nearly doubles the force work, adds table lookups
  // (slightly worse divergence) and improves arithmetic density a bit.
  bench.inputs = {
      {"LJ", 1.00, 0.00, 0.00},
      {"EAM", 1.80, -0.03, +0.05},
  };
  return bench;
}

}  // namespace acsel::workloads
