// LULESH: the Livermore Unstructured Lagrangian Explicit Shock
// Hydrodynamics proxy application (Karlin 2012), the paper's largest
// benchmark with 20 significant kernels. The characteristics below encode
// the well-known structure of its kernels: element-centered force and EOS
// kernels carry most of the flops with moderate vectorization; the
// node-centered integration kernels are streaming and firmly memory-bound;
// the monotonic-Q limiter and constraint reductions are branchy; the
// boundary-condition kernel is tiny and irregular.
#include "workloads/kernel_builder.h"
#include "workloads/workload.h"

namespace acsel::workloads {

using detail::make_kernel;
namespace {
constexpr auto kernel = make_kernel;
}  // namespace

BenchmarkSpec lulesh_benchmark() {
  BenchmarkSpec bench;
  bench.name = "LULESH";
  // name, GF, B/F, par, vec, div, gpu, launch, loc, tlb, irr, fpu, share
  bench.kernels = {
      kernel("CalcFBHourglassForce", 1.20, 1.30, 0.97, 0.35, 0.08, 0.55,
             0.60, 0.35, 0.15, 0.15, 0.60, 0.18),
      kernel("CalcHourglassControl", 0.90, 1.50, 0.96, 0.30, 0.10, 0.50,
             0.50, 0.30, 0.20, 0.20, 0.55, 0.10),
      kernel("IntegrateStressForElems", 0.80, 1.80, 0.97, 0.30, 0.05, 0.45,
             0.50, 0.30, 0.15, 0.10, 0.50, 0.09),
      kernel("CalcVolumeForceForElems", 0.70, 1.60, 0.96, 0.25, 0.07, 0.45,
             0.45, 0.35, 0.15, 0.12, 0.50, 0.06),
      kernel("CalcForceForNodes", 0.30, 2.20, 0.95, 0.15, 0.05, 0.08, 0.40,
             0.25, 0.20, 0.10, 0.30, 0.04),
      kernel("CalcAccelerationForNodes", 0.25, 2.40, 0.97, 0.40, 0.02, 0.40,
             0.30, 0.30, 0.10, 0.05, 0.35, 0.03),
      kernel("ApplyAccelerationBC", 0.06, 1.80, 0.90, 0.10, 0.30, 0.20,
             0.30, 0.40, 0.05, 0.40, 0.20, 0.01),
      kernel("CalcVelocityForNodes", 0.30, 2.30, 0.97, 0.45, 0.02, 0.42,
             0.30, 0.30, 0.10, 0.05, 0.30, 0.03),
      kernel("CalcPositionForNodes", 0.28, 2.30, 0.97, 0.45, 0.02, 0.42,
             0.30, 0.30, 0.10, 0.05, 0.30, 0.03),
      kernel("CalcKinematicsForElems", 1.50, 0.90, 0.97, 0.40, 0.06, 0.60,
             0.55, 0.45, 0.15, 0.10, 0.65, 0.11),
      kernel("CalcLagrangeElements", 0.50, 1.40, 0.96, 0.30, 0.05, 0.50,
             0.40, 0.40, 0.10, 0.10, 0.50, 0.04),
      kernel("CalcMonotonicQGradients", 0.90, 1.20, 0.96, 0.30, 0.08, 0.50,
             0.50, 0.40, 0.15, 0.15, 0.55, 0.06),
      kernel("CalcMonotonicQRegion", 0.70, 1.10, 0.95, 0.25, 0.25, 0.40,
             0.50, 0.40, 0.15, 0.35, 0.50, 0.05),
      kernel("CalcQForElems", 0.40, 1.30, 0.95, 0.25, 0.15, 0.45, 0.40,
             0.40, 0.10, 0.20, 0.45, 0.03),
      kernel("CalcPressureForElems", 0.60, 0.70, 0.97, 0.45, 0.05, 0.60,
             0.40, 0.55, 0.10, 0.08, 0.60, 0.04),
      kernel("CalcEnergyForElems", 1.10, 0.80, 0.96, 0.40, 0.12, 0.55, 0.50,
             0.50, 0.10, 0.18, 0.60, 0.07),
      kernel("CalcSoundSpeedForElems", 0.30, 0.90, 0.97, 0.40, 0.04, 0.55,
             0.35, 0.50, 0.10, 0.08, 0.55, 0.02),
      kernel("UpdateVolumesForElems", 0.15, 2.50, 0.98, 0.50, 0.01, 0.40,
             0.25, 0.30, 0.08, 0.03, 0.25, 0.01),
      kernel("CalcCourantConstraint", 0.25, 1.20, 0.90, 0.20, 0.30, 0.30,
             0.40, 0.45, 0.10, 0.40, 0.40, 0.01),
      kernel("CalcHydroConstraint", 0.20, 1.20, 0.90, 0.20, 0.28, 0.30,
             0.40, 0.45, 0.10, 0.38, 0.40, 0.01),
  };
  bench.inputs = {
      {"Small", 0.45, +0.08, 0.0},
      {"Large", 2.20, -0.07, 0.0},
  };
  return bench;
}

}  // namespace acsel::workloads
