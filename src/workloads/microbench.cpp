// Synthetic microbenchmark suite. Paper §III-B: "we use a cross-validation
// scheme to select training kernels; however, the training set could be
// composed of microbenchmarks or a standard benchmark suite."
//
// The generator sweeps a grid over the behaviour axes that drive
// power/performance scaling — memory intensity, parallelism/divergence
// (bundled as "regularity"), and vectorization — so a machine can be
// characterized without any application code.
// bench/microbench_training trains on this suite and validates on the
// application suite.
#include "workloads/microbench.h"

#include <string>

#include "util/error.h"
#include "workloads/kernel_builder.h"

namespace acsel::workloads {

BenchmarkSpec microbenchmark_suite(std::size_t steps_per_axis) {
  ACSEL_CHECK_MSG(steps_per_axis >= 2 && steps_per_axis <= 5,
                  "microbenchmark grid wants 2..5 steps per axis");
  BenchmarkSpec bench;
  bench.name = "Micro";

  const auto lerp = [&](double lo, double hi, std::size_t i) {
    return lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(steps_per_axis - 1);
  };

  for (std::size_t m = 0; m < steps_per_axis; ++m) {      // memory axis
    for (std::size_t r = 0; r < steps_per_axis; ++r) {    // regularity
      for (std::size_t v = 0; v < steps_per_axis; ++v) {  // vectorization
        const double bytes_per_flop = lerp(0.05, 2.4, m);
        const double regularity = lerp(0.1, 1.0, r);
        const double vector = lerp(0.05, 0.7, v);
        KernelSpec spec = detail::make_kernel(
            "mb_m" + std::to_string(m) + "_r" + std::to_string(r) + "_v" +
                std::to_string(v),
            /*work_gflop=*/0.35 + 1.4 * regularity,
            bytes_per_flop,
            /*parallel=*/0.55 + 0.44 * regularity,
            vector,
            /*divergence=*/0.6 * (1.0 - regularity),
            /*gpu_eff=*/0.10 + 0.65 * regularity,
            /*launch_ms=*/0.3 + 0.5 * (1.0 - regularity),
            /*locality=*/0.25 + 0.45 * (1.0 - bytes_per_flop / 2.4),
            /*tlb=*/0.05 + 0.25 * bytes_per_flop / 2.4,
            /*irregularity=*/0.7 * (1.0 - regularity),
            /*fpu=*/0.3 + 0.5 * vector,
            /*time_share=*/1.0);
        bench.kernels.push_back(std::move(spec));
      }
    }
  }
  bench.inputs = {{"Default", 1.0, 0.0, 0.0}};
  return bench;
}

}  // namespace acsel::workloads
