#include "workloads/suite.h"

#include <algorithm>

#include "util/error.h"

namespace acsel::workloads {

Suite Suite::standard() {
  return Suite{{lulesh_benchmark(), comd_benchmark(), smc_benchmark(),
                lu_benchmark()}};
}

Suite::Suite(std::vector<BenchmarkSpec> benchmarks) {
  ACSEL_CHECK_MSG(!benchmarks.empty(), "Suite needs at least one benchmark");
  for (const BenchmarkSpec& bench : benchmarks) {
    ACSEL_CHECK_MSG(!bench.kernels.empty(),
                    "benchmark has no kernels: " + bench.name);
    ACSEL_CHECK_MSG(!bench.inputs.empty(),
                    "benchmark has no inputs: " + bench.name);
    benchmarks_.push_back(bench.name);
    kernel_count_ += bench.kernels.size();

    for (const InputSpec& input : bench.inputs) {
      benchmark_inputs_.push_back(bench.name + " " + input.name);
      double share_sum = 0.0;
      for (const KernelSpec& spec : bench.kernels) {
        ACSEL_CHECK_MSG(spec.time_share > 0.0,
                        "time_share must be positive: " + spec.name);
        share_sum += spec.time_share;
      }
      for (const KernelSpec& spec : bench.kernels) {
        WorkloadInstance instance;
        instance.benchmark = bench.name;
        instance.input = input.name;
        instance.kernel = spec.name;
        instance.traits = apply_input(spec.traits, input);
        instance.weight = spec.time_share / share_sum;
        instances_.push_back(std::move(instance));
      }
    }
  }
  // Ids must be unique: the model keys its observations by them.
  std::vector<std::string> ids;
  ids.reserve(instances_.size());
  for (const auto& instance : instances_) {
    ids.push_back(instance.id());
  }
  std::sort(ids.begin(), ids.end());
  ACSEL_CHECK_MSG(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                  "duplicate workload instance id");
}

std::vector<std::size_t> Suite::instances_of_benchmark(
    const std::string& benchmark) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].benchmark == benchmark) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> Suite::instances_of_group(
    const std::string& benchmark_input) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (instances_[i].benchmark_input() == benchmark_input) {
      out.push_back(i);
    }
  }
  return out;
}

const WorkloadInstance& Suite::instance(const std::string& id) const {
  for (const auto& instance : instances_) {
    if (instance.id() == id) {
      return instance;
    }
  }
  throw Error{"unknown workload instance: " + id};
}

}  // namespace acsel::workloads
