// The full benchmark suite: 36 kernels across LULESH, CoMD, SMC and LU,
// instantiated with their input decks for 65 benchmark/input kernel
// instances (paper §IV-B).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace acsel::workloads {

class Suite {
 public:
  /// The paper's suite (see lulesh.cpp / comd.cpp / smc.cpp / lu.cpp).
  static Suite standard();

  /// Builds a suite from arbitrary benchmark specs (used by tests and the
  /// ablation benches). Weights are normalized per benchmark/input group.
  explicit Suite(std::vector<BenchmarkSpec> benchmarks);

  /// All kernel instances (one per kernel per input of its benchmark).
  const std::vector<WorkloadInstance>& instances() const {
    return instances_;
  }

  std::size_t size() const { return instances_.size(); }

  /// Distinct benchmark names, in definition order.
  const std::vector<std::string>& benchmarks() const { return benchmarks_; }

  /// Distinct "benchmark input" group labels, in definition order — the
  /// grouping of the paper's per-benchmark figures (Figs. 5, 6, 8, 9).
  const std::vector<std::string>& benchmark_inputs() const {
    return benchmark_inputs_;
  }

  /// Number of distinct kernels (not multiplied by inputs).
  std::size_t kernel_count() const { return kernel_count_; }

  /// Instances belonging to one benchmark (any input).
  std::vector<std::size_t> instances_of_benchmark(
      const std::string& benchmark) const;

  /// Instances belonging to one "benchmark input" group.
  std::vector<std::size_t> instances_of_group(
      const std::string& benchmark_input) const;

  /// Finds an instance by id ("LULESH-Small/CalcFBHourglassForce");
  /// throws acsel::Error if absent.
  const WorkloadInstance& instance(const std::string& id) const;

 private:
  std::vector<WorkloadInstance> instances_;
  std::vector<std::string> benchmarks_;
  std::vector<std::string> benchmark_inputs_;
  std::size_t kernel_count_ = 0;
};

}  // namespace acsel::workloads
