// Internal helper shared by the benchmark definition files: builds a
// validated KernelSpec from a positional characteristic list so the tables
// in lulesh.cpp / comd.cpp / smc.cpp / lu.cpp stay one line per kernel.
#pragma once

#include <string>
#include <utility>

#include "workloads/workload.h"

namespace acsel::workloads::detail {

inline KernelSpec make_kernel(std::string name, double work_gflop,
                              double bytes_per_flop, double parallel,
                              double vector, double divergence,
                              double gpu_eff, double launch_ms,
                              double locality, double tlb,
                              double irregularity, double fpu,
                              double time_share) {
  KernelSpec spec;
  spec.name = std::move(name);
  spec.traits.work_gflop = work_gflop;
  spec.traits.bytes_per_flop = bytes_per_flop;
  spec.traits.parallel_fraction = parallel;
  spec.traits.vector_fraction = vector;
  spec.traits.branch_divergence = divergence;
  spec.traits.gpu_efficiency = gpu_eff;
  spec.traits.launch_overhead_ms = launch_ms;
  spec.traits.cache_locality = locality;
  spec.traits.tlb_pressure = tlb;
  spec.traits.irregularity = irregularity;
  spec.traits.fpu_intensity = fpu;
  spec.time_share = time_share;
  spec.traits.validate();
  return spec;
}

}  // namespace acsel::workloads::detail
