// Tests for the ACPI-style OS frequency governors.
#include <gtest/gtest.h>

#include "hw/config_space.h"
#include "soc/governors.h"
#include "soc/machine.h"
#include "util/error.h"

namespace acsel::soc {
namespace {

using hw::ConfigSpace;
using hw::Configuration;
using hw::Device;

KernelCharacteristics compute_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 3.0;
  k.bytes_per_flop = 0.05;
  k.parallel_fraction = 0.99;
  k.vector_fraction = 0.6;
  k.cache_locality = 0.8;
  return k;
}

KernelCharacteristics streaming_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 0.5;
  k.bytes_per_flop = 2.5;
  k.parallel_fraction = 0.98;
  k.vector_fraction = 0.4;
  k.cache_locality = 0.25;
  return k;
}

PowerView view_with_utilization(double utilization) {
  PowerView view;
  view.compute_utilization = utilization;
  return view;
}

TEST(Governors, PerformanceClimbsToMax) {
  PerformanceGovernor governor;
  const ConfigSpace space;
  Configuration c = space.cpu_sample();
  c.cpu_pstate = 0;
  int steps = 0;
  while (auto next = governor.on_interval(PowerView{}, c)) {
    c = *next;
    ++steps;
  }
  EXPECT_EQ(c.cpu_pstate, hw::kCpuMaxPState);
  EXPECT_EQ(steps, 5);
}

TEST(Governors, PowersaveDropsToFloor) {
  PowersaveGovernor governor;
  const ConfigSpace space;
  Configuration c = space.cpu_sample();
  while (auto next = governor.on_interval(PowerView{}, c)) {
    c = *next;
  }
  EXPECT_EQ(c.cpu_pstate, 0u);
}

TEST(Governors, GovernorsControlTheActiveDevice) {
  PerformanceGovernor governor;
  const ConfigSpace space;
  Configuration g = space.gpu_sample();
  g.gpu_pstate = 0;
  const auto next = governor.on_interval(PowerView{}, g);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->gpu_pstate, 1u);
  EXPECT_EQ(next->cpu_pstate, g.cpu_pstate);  // host CPU untouched
}

TEST(Governors, OndemandRaisesOnHighUtilization) {
  OndemandGovernor governor;
  const ConfigSpace space;
  Configuration c = space.cpu_sample();
  c.cpu_pstate = 1;
  const auto next = governor.on_interval(view_with_utilization(0.95), c);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->cpu_pstate, 2u);
  EXPECT_EQ(governor.up_steps(), 1u);
}

TEST(Governors, OndemandLowersOnLowUtilization) {
  OndemandGovernor governor;
  const ConfigSpace space;
  Configuration c = space.cpu_sample();
  const auto next = governor.on_interval(view_with_utilization(0.1), c);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->cpu_pstate, hw::kCpuMaxPState - 1);
  EXPECT_EQ(governor.down_steps(), 1u);
}

TEST(Governors, OndemandHoldsInTheDeadband) {
  OndemandGovernor governor;
  const ConfigSpace space;
  const Configuration c = space.cpu_sample();
  EXPECT_FALSE(
      governor.on_interval(view_with_utilization(0.6), c).has_value());
}

TEST(Governors, OndemandValidatesThresholds) {
  EXPECT_THROW(OndemandGovernor(0.4, 0.8), Error);  // inverted
  EXPECT_THROW(OndemandGovernor(1.2, 0.4), Error);  // out of range
}

TEST(Governors, OndemandUpclocksComputeBoundRun) {
  Machine machine;
  const ConfigSpace space;
  Configuration start = space.cpu_sample();
  start.cpu_pstate = 0;
  OndemandGovernor governor;
  auto k = compute_kernel();
  k.work_gflop = 8.0;  // long enough to climb the whole ladder
  const auto result = machine.run(k, start, &governor);
  EXPECT_GT(result.final_config.cpu_pstate, 2u);
  EXPECT_GT(governor.up_steps(), 0u);
}

TEST(Governors, OndemandDownclocksMemoryBoundRun) {
  // Memory-bound kernels stall at high frequency; ondemand should shed
  // P-states — the organic version of the insight the model learns.
  Machine machine;
  const ConfigSpace space;
  OndemandGovernor governor;
  auto k = streaming_kernel();
  k.work_gflop = 2.0;
  const auto result = machine.run(k, space.cpu_sample(), &governor);
  EXPECT_LT(result.final_config.cpu_pstate, hw::kCpuMaxPState);
  EXPECT_GT(governor.down_steps(), 0u);
}

}  // namespace
}  // namespace acsel::soc
