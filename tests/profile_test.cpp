// Tests for the profiling library: record bookkeeping, history queries,
// and CSV persistence round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "hw/config_space.h"
#include "profile/profiler.h"
#include "soc/freq_limiter.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::profile {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  soc::Machine machine_{soc::MachineSpec{}, 2024};
  Profiler profiler_{machine_};
  workloads::Suite suite_ = workloads::Suite::standard();
  hw::ConfigSpace space_;

  const workloads::WorkloadInstance& hourglass() {
    return suite_.instance("LULESH-Small/CalcFBHourglassForce");
  }
};

TEST_F(ProfilerTest, RunAppendsRecordWithIdentity) {
  const auto& record = profiler_.run(hourglass(), space_.cpu_sample());
  EXPECT_EQ(record.benchmark, "LULESH");
  EXPECT_EQ(record.input, "Small");
  EXPECT_EQ(record.kernel, "CalcFBHourglassForce");
  EXPECT_EQ(record.instance_id(), hourglass().id());
  EXPECT_GT(record.time_ms, 0.0);
  EXPECT_GT(record.total_power_w(), 5.0);
  EXPECT_GT(record.counters.instructions, 0.0);
  EXPECT_EQ(profiler_.size(), 1u);
}

TEST_F(ProfilerTest, HistoryPreservesExecutionOrder) {
  profiler_.run(hourglass(), space_.cpu_sample());
  profiler_.run(hourglass(), space_.gpu_sample());
  ASSERT_EQ(profiler_.history().size(), 2u);
  EXPECT_EQ(profiler_.history()[0].config.device, hw::Device::Cpu);
  EXPECT_EQ(profiler_.history()[1].config.device, hw::Device::Gpu);
}

TEST_F(ProfilerTest, RecordsForFiltersByInstance) {
  const auto& other = suite_.instance("LU-Small/lud");
  profiler_.run(hourglass(), space_.cpu_sample());
  profiler_.run(other, space_.cpu_sample());
  profiler_.run(hourglass(), space_.gpu_sample());
  EXPECT_EQ(profiler_.records_for(hourglass().id()).size(), 2u);
  EXPECT_EQ(profiler_.records_for(other.id()).size(), 1u);
  EXPECT_TRUE(profiler_.records_for("missing/missing").empty());
}

TEST_F(ProfilerTest, LatestReturnsMostRecentMatchingRun) {
  profiler_.run(hourglass(), space_.cpu_sample());
  const auto& second = profiler_.run(hourglass(), space_.cpu_sample());
  const auto found =
      profiler_.latest(hourglass().id(), space_.cpu_sample());
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->time_ms, second.time_ms);
  EXPECT_FALSE(
      profiler_.latest(hourglass().id(), space_.gpu_sample()).has_value());
}

TEST_F(ProfilerTest, AggregateAveragesRepeatedRuns) {
  for (int i = 0; i < 4; ++i) {
    profiler_.run(hourglass(), space_.cpu_sample());
  }
  const auto agg =
      profiler_.aggregate(hourglass().id(), space_.cpu_sample());
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->runs, 4u);
  const auto truth = machine_.analytic(hourglass().traits,
                                       space_.cpu_sample());
  EXPECT_NEAR(agg->mean_time_ms / truth.time_ms, 1.0, 0.05);
  EXPECT_NEAR(agg->mean_power_w / truth.total_power_w(), 1.0, 0.05);
}

TEST_F(ProfilerTest, GovernedRunRecordsFinalConfig) {
  soc::LimiterOptions options;
  options.cap_w = 15.0;  // forces throttling at the CPU sample config
  options.controlled = hw::Device::Cpu;
  soc::FrequencyLimiter limiter{options};
  const auto& record =
      profiler_.run(hourglass(), space_.cpu_sample(), &limiter);
  EXPECT_LT(record.config.cpu_pstate, hw::kCpuMaxPState);
}

TEST_F(ProfilerTest, CsvRoundTripPreservesHistory) {
  profiler_.run(hourglass(), space_.cpu_sample());
  profiler_.run(suite_.instance("CoMD-LJ/ComputeForce"),
                space_.gpu_sample());
  std::ostringstream os;
  profiler_.write_csv(os);

  Profiler restored{machine_};
  restored.load_csv(os.str());
  ASSERT_EQ(restored.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& a = profiler_.history()[i];
    const auto& b = restored.history()[i];
    EXPECT_EQ(a.instance_id(), b.instance_id());
    EXPECT_EQ(a.config, b.config);
    EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms);
    EXPECT_DOUBLE_EQ(a.cpu_power_w, b.cpu_power_w);
    EXPECT_DOUBLE_EQ(a.counters.dram_accesses, b.counters.dram_accesses);
  }
}

TEST_F(ProfilerTest, LoadCsvRejectsWrongHeader) {
  EXPECT_THROW(profiler_.load_csv("a,b,c\n1,2,3\n"), Error);
}

TEST_F(ProfilerTest, ClearEmptiesHistory) {
  profiler_.run(hourglass(), space_.cpu_sample());
  profiler_.clear();
  EXPECT_EQ(profiler_.size(), 0u);
}

TEST(RecordCsv, RowRoundTrip) {
  KernelRecord r;
  r.benchmark = "LULESH";
  r.input = "Large";
  r.kernel = "CalcEnergyForElems";
  r.config.device = hw::Device::Gpu;
  r.config.cpu_pstate = 3;
  r.config.threads = 1;
  r.config.gpu_pstate = 2;
  r.time_ms = 12.25;
  r.cpu_power_w = 4.5;
  r.nbgpu_power_w = 21.75;
  r.energy_j = 0.32;
  r.counters.instructions = 1e9;
  r.counters.dram_accesses = 5e6;
  const auto row = to_csv_row(r);
  ASSERT_EQ(row.size(), record_csv_header().size());
  const KernelRecord back = from_csv_row(row);
  EXPECT_EQ(back.config, r.config);
  EXPECT_DOUBLE_EQ(back.time_ms, r.time_ms);
  EXPECT_DOUBLE_EQ(back.counters.instructions, r.counters.instructions);
}

TEST(RecordCsv, RejectsMalformedRows) {
  EXPECT_THROW(from_csv_row({"too", "short"}), Error);
  KernelRecord r;
  r.benchmark = "X";
  r.input = "Y";
  r.kernel = "Z";
  r.time_ms = 1.0;
  auto row = to_csv_row(r);
  row[3] = "apu";  // bad device
  EXPECT_THROW(from_csv_row(row), Error);
  row = to_csv_row(r);
  row[8] = "-5.0";  // negative time
  EXPECT_THROW(from_csv_row(row), Error);
}

}  // namespace
}  // namespace acsel::profile
