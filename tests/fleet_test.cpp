// End-to-end fleet tests: routing stability, fleet-wide publish with the
// version-skew guard catching up revived nodes, node loss -> reroute ->
// deterministic failure detection, p95-derived hedging, demand-driven
// budget rebalancing, the wire stats scrape, and the delivery accounting
// contract (routed == delivered + shed, always).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include <algorithm>
#include <string>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "exec/thread_pool.h"
#include "fleet/fleet.h"
#include "obs/collector.h"
#include "obs/trace.h"
#include "serve/codec.h"
#include "soc/machine.h"
#include "workloads/suite.h"

namespace acsel::fleet {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 4242};
    const auto suite = workloads::Suite::standard();
    characterizations_ = new std::vector<core::KernelCharacterization>{};
    for (const auto& instance : suite.instances()) {
      characterizations_->push_back(
          eval::characterize_instance(machine, instance));
      if (characterizations_->size() == 12) {
        break;
      }
    }
    core::TrainerOptions options_a;
    options_a.clusters = 3;
    model_a_ = core::make_predictor(
        core::train(*characterizations_, options_a).model);
    core::TrainerOptions options_b;
    options_b.clusters = 2;
    model_b_ = core::make_predictor(
        core::train(*characterizations_, options_b).model);
  }

  static void TearDownTestSuite() {
    model_b_.reset();
    model_a_.reset();
    delete characterizations_;
  }

  static serve::SelectRequest make_request(std::uint64_t id,
                                           std::uint64_t salt = 0) {
    static const double caps[] = {18.0, 22.0, 26.0, 30.0, 40.0};
    const std::uint64_t mix = id * 2654435761u + salt;
    serve::SelectRequest request;
    request.request_id = id;
    request.samples =
        (*characterizations_)[mix % characterizations_->size()].samples;
    request.goal = static_cast<core::SchedulingGoal>(mix % 3);
    if (mix % 7 != 0) {
      request.cap_w = caps[mix % 5];
    }
    return request;
  }

  static FleetOptions small_fleet() {
    FleetOptions options;
    options.shards = 4;
    options.replicas = 3;
    return options;
  }

  static void expect_nothing_lost(const serve::FleetStats& stats) {
    EXPECT_EQ(stats.routed, stats.delivered + stats.shed);
  }

  static std::vector<core::KernelCharacterization>* characterizations_;
  static core::PredictorPtr model_a_;
  static core::PredictorPtr model_b_;
};

std::vector<core::KernelCharacterization>* FleetTest::characterizations_ =
    nullptr;
core::PredictorPtr FleetTest::model_a_;
core::PredictorPtr FleetTest::model_b_;

// ---- routing -----------------------------------------------------------

TEST_F(FleetTest, RoutesDeterministicallyAndDeliversEverything) {
  Fleet fleet{small_fleet()};
  fleet.publish(model_a_);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const auto request = make_request(i);
    const std::uint32_t home = fleet.shard_of(request);
    EXPECT_EQ(home, fleet.shard_of(request));  // pure function of the key
    const auto response = fleet.select(request);
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(response.request_id, request.request_id);
  }
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.routed, 60u);
  EXPECT_EQ(stats.delivered, 60u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.rerouted, 0u);
  // Healthy TMR on identical models: every vote unanimous.
  EXPECT_EQ(stats.vote_disagreements, 0u);
  expect_nothing_lost(stats);
}

TEST_F(FleetTest, SameKernelAlwaysLandsOnItsHomeShard) {
  Fleet fleet{small_fleet()};
  fleet.publish(model_a_);
  const auto request = make_request(3);
  const std::uint32_t home = fleet.shard_of(request);
  for (int i = 0; i < 10; ++i) {
    (void)fleet.select(request);
  }
  EXPECT_EQ(fleet.shard_requests(home), 10u);
}

// ---- publish / version skew -------------------------------------------

TEST_F(FleetTest, PublishAssignsMonotonicFleetVersions) {
  Fleet fleet{small_fleet()};
  EXPECT_EQ(fleet.current_version(), 0u);
  EXPECT_EQ(fleet.publish(model_a_), 1u);
  EXPECT_EQ(fleet.publish(model_b_), 2u);
  EXPECT_EQ(fleet.current_version(), 2u);
  const auto response = fleet.select(make_request(1));
  EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
  EXPECT_EQ(response.model_version, 2u);
}

TEST_F(FleetTest, RevivedNodeCatchesUpToCurrentModel) {
  Fleet fleet{small_fleet()};
  fleet.publish(model_a_);
  // The node misses a publish while down...
  fleet.fail_node(NodeId{0, 1});
  fleet.publish(model_b_);
  // ...and is caught up by revive: every reply fleet-wide must carry the
  // current fleet version, or the revived replica would lose votes.
  fleet.revive_node(NodeId{0, 1});
  for (std::uint64_t i = 0; i < 40; ++i) {
    const auto response = fleet.select(make_request(i, 7));
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(response.model_version, 2u);
  }
  EXPECT_EQ(fleet.stats().vote_disagreements, 0u);
}

// ---- node loss / membership -------------------------------------------

TEST_F(FleetTest, DeadShardReroutesUntilDetectedThenSkipsFanout) {
  FleetOptions options = small_fleet();
  Fleet fleet{options};
  fleet.publish(model_a_);
  const auto request = make_request(5);
  const std::uint32_t home = fleet.shard_of(request);
  for (std::uint32_t r = 0; r < options.replicas; ++r) {
    fleet.fail_node(NodeId{home, r});
  }

  // Before detection: the shard is still routable, its fan-out produces
  // zero replies, and the router falls through to the next ring shard.
  const auto response = fleet.select(request);
  EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
  auto stats = fleet.stats();
  EXPECT_EQ(stats.rerouted, 1u);
  EXPECT_GT(stats.replica_timeouts, 0u);

  // Failure detection is deterministic in logical ticks: silent through
  // suspect_after -> Suspect, through dead_after -> Dead, sticky.
  for (std::uint64_t t = 0; t < options.membership.suspect_after; ++t) {
    fleet.tick();
  }
  EXPECT_EQ(fleet.membership().state(NodeId{home, 0}), NodeState::Suspect);
  for (std::uint64_t t = options.membership.suspect_after;
       t < options.membership.dead_after; ++t) {
    fleet.tick();
  }
  EXPECT_EQ(fleet.membership().state(NodeId{home, 0}), NodeState::Dead);
  EXPECT_TRUE(fleet.membership().routable_replicas(home).empty());
  EXPECT_GT(fleet.stats().membership_transitions, 0u);

  // After detection the reroute is free: no fan-out, no timeout slots.
  const std::uint64_t timeouts_before = fleet.stats().replica_timeouts;
  const auto rerouted = fleet.select(request);
  EXPECT_EQ(rerouted.status, serve::ResponseStatus::Ok);
  EXPECT_EQ(fleet.stats().replica_timeouts, timeouts_before);
  expect_nothing_lost(fleet.stats());
}

TEST_F(FleetTest, WholeFleetDownShedsExplicitly) {
  FleetOptions options = small_fleet();
  options.shards = 2;
  Fleet fleet{options};
  fleet.publish(model_a_);
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    for (std::uint32_t r = 0; r < options.replicas; ++r) {
      fleet.fail_node(NodeId{s, r});
    }
  }
  const auto response = fleet.select(make_request(9));
  // The answer is an explicit Shed, not a drop or a hang.
  EXPECT_EQ(response.status, serve::ResponseStatus::Shed);
  EXPECT_EQ(response.request_id, make_request(9).request_id);
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.delivered, 0u);
  expect_nothing_lost(stats);
}

TEST_F(FleetTest, QuorumSurvivesMinorityLoss) {
  Fleet fleet{small_fleet()};
  fleet.publish(model_a_);
  const auto request = make_request(2);
  const std::uint32_t home = fleet.shard_of(request);
  fleet.fail_node(NodeId{home, 2});  // one of three replicas
  const auto response = fleet.select(request);
  EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
  const auto stats = fleet.stats();
  EXPECT_EQ(stats.rerouted, 0u);  // the shard itself still answered
  EXPECT_EQ(stats.delivered, 1u);
}

// ---- hedging -----------------------------------------------------------

TEST_F(FleetTest, HedgeDelayDerivesFromP95AndCutsStragglers) {
  FleetOptions options = small_fleet();
  // Deterministic latency schedule: replica 2 of every shard is a
  // straggler, two orders of magnitude slower than its peers.
  options.latency_model = [](NodeId id, std::uint64_t) -> std::uint64_t {
    return id.replica == 2 ? 20'000'000 : 150'000;
  };
  options.hedge_min_delay_ns = 100'000;
  Fleet fleet{options};
  fleet.publish(model_a_);

  // Warm-up one shard past the hedge_min_samples threshold: hedging
  // starts from the cold-start fallback delay (effectively off) until
  // the shard's tracker has a real p95.
  const auto request = make_request(3);
  const std::uint32_t home = fleet.shard_of(request);
  EXPECT_EQ(fleet.hedge_delay_ns(home), FleetOptions{}.hedge_fallback_delay_ns);
  for (std::uint64_t i = 0; i < 40; ++i) {
    (void)fleet.select(request);
  }
  fleet.tick();  // refresh hedge delays from the observed p95
  // Quorum latency is the 2nd of {150us, 150us, 20ms} = 150us; the
  // p95-derived delay must be far below the straggler's 20 ms.
  EXPECT_LT(fleet.hedge_delay_ns(home), 2'000'000u);

  const std::uint64_t hedges_before = fleet.shard_hedges(home);
  for (std::uint64_t i = 0; i < 20; ++i) {
    (void)fleet.select(request);
  }
  // Every post-warm-up round hedges the straggler slot.
  EXPECT_GE(fleet.shard_hedges(home), hedges_before + 20);
  expect_nothing_lost(fleet.stats());
}

// ---- budget ------------------------------------------------------------

TEST_F(FleetTest, BudgetFollowsDemandAcrossShards) {
  FleetOptions options = small_fleet();
  options.rebalance_period = 1;
  options.budget.global_budget_w = 120.0;  // nominal 30 W x 4 shards
  Fleet fleet{options};
  fleet.publish(model_a_);

  // Drive all traffic at one kernel -> one hot shard.
  const auto request = make_request(3);
  const std::uint32_t hot = fleet.shard_of(request);
  for (int i = 0; i < 50; ++i) {
    (void)fleet.select(request);
  }
  fleet.tick();

  const double hot_cap = fleet.budget().shard(hot).cap_w;
  double cold_cap_sum = 0.0;
  for (std::uint32_t s = 0; s < options.shards; ++s) {
    if (s != hot) {
      cold_cap_sum += fleet.budget().shard(s).cap_w;
    }
  }
  // Demand-proportional allocation: the hot shard out-earns every idle
  // shard's average.
  EXPECT_GT(hot_cap, cold_cap_sum / 3.0);
  EXPECT_GT(fleet.stats().rebalances, 0u);
  // The global budget is conserved (within the allocator's quantum).
  double total = hot_cap + cold_cap_sum;
  EXPECT_LE(total, options.budget.global_budget_w + 1e-6);
}

// ---- wire scrape -------------------------------------------------------

TEST_F(FleetTest, StatsScrapeCarriesFleetBlockOverTheWire) {
  Fleet fleet{small_fleet()};
  fleet.publish(model_a_);
  for (std::uint64_t i = 0; i < 10; ++i) {
    (void)fleet.select(make_request(i));
  }
  serve::StatsRequest scrape;
  scrape.request_id = 77;
  std::vector<std::uint8_t> frame;
  serve::encode_stats_request(scrape, frame);
  const auto reply = fleet.serve_frame(frame);
  const auto decoded = serve::decode_frame(reply);
  ASSERT_EQ(decoded.status, serve::DecodeStatus::Ok);
  ASSERT_EQ(decoded.type, serve::MessageType::StatsResponse);
  const serve::FleetStats& wire = decoded.stats_response.fleet;
  EXPECT_TRUE(wire.attached);
  EXPECT_EQ(wire.shards, 4u);
  EXPECT_EQ(wire.replicas, 12u);
  EXPECT_EQ(wire.replicas_alive, 12u);
  EXPECT_EQ(wire.routed, 10u);
  EXPECT_EQ(wire.delivered, 10u);
  EXPECT_EQ(wire.global_budget_w, fleet.stats().global_budget_w);
  // The fleet's own registry rows travel alongside.
  EXPECT_FALSE(decoded.stats_response.metrics.empty());
}

TEST_F(FleetTest, ServeFrameRoutesSelectAndRejectsLikeAServer) {
  Fleet fleet{small_fleet()};
  fleet.publish(model_a_);
  std::vector<std::uint8_t> frame;
  serve::encode_request(make_request(4), frame);
  const auto reply = fleet.serve_frame(frame);
  const auto decoded = serve::decode_frame(reply);
  ASSERT_EQ(decoded.status, serve::DecodeStatus::Ok);
  ASSERT_EQ(decoded.type, serve::MessageType::SelectResponse);
  EXPECT_EQ(decoded.response.status, serve::ResponseStatus::Ok);

  // Feedback has no sink at the router; the reply is explicit.
  serve::FeedbackRequest feedback;
  feedback.request_id = 5;
  feedback.samples = make_request(4).samples;
  std::vector<std::uint8_t> feedback_frame;
  serve::encode_feedback_request(feedback, feedback_frame);
  const auto feedback_reply = fleet.serve_frame(feedback_frame);
  const auto feedback_decoded = serve::decode_frame(feedback_reply);
  ASSERT_EQ(feedback_decoded.status, serve::DecodeStatus::Ok);
  EXPECT_EQ(feedback_decoded.feedback_response.status,
            serve::ResponseStatus::Unsupported);

  // Garbage comes back MalformedRequest, like Server::serve_frame.
  const std::vector<std::uint8_t> garbage{1, 2, 3, 4};
  const auto garbage_reply = fleet.serve_frame(garbage);
  const auto garbage_decoded = serve::decode_frame(garbage_reply);
  ASSERT_EQ(garbage_decoded.status, serve::DecodeStatus::Ok);
  EXPECT_EQ(garbage_decoded.response.status,
            serve::ResponseStatus::MalformedRequest);
}

// ---- deadlines ---------------------------------------------------------

TEST_F(FleetTest, HedgeRespectsTheRequestDeadline) {
  FleetOptions options = small_fleet();
  options.latency_model = [](NodeId id, std::uint64_t) -> std::uint64_t {
    return id.replica == 2 ? 20'000'000 : 150'000;
  };
  options.hedge_min_delay_ns = 100'000;
  Fleet fleet{options};
  fleet.publish(model_a_);
  auto request = make_request(3);
  const std::uint32_t home = fleet.shard_of(request);
  for (std::uint64_t i = 0; i < 40; ++i) {
    (void)fleet.select(request);  // warm up the p95 tracker
  }
  fleet.tick();
  const std::uint64_t delay = fleet.hedge_delay_ns(home);
  ASSERT_LT(delay, 2'000'000u);

  // A deadline the hedge launch would already blow: hedging cannot help
  // the caller, so the straggler slot keeps its unhedged time and the
  // clip is counted instead of a hedge.
  request.deadline_ns = delay;  // hedge_delay >= deadline: clipped
  const std::uint64_t hedges_before = fleet.shard_hedges(home);
  for (std::uint64_t i = 0; i < 10; ++i) {
    (void)fleet.select(request);
  }
  EXPECT_EQ(fleet.shard_hedges(home), hedges_before);
  std::uint64_t clipped = 0;
  for (const auto& metric : fleet.stats_registry().snapshot()) {
    if (metric.name == "fleet.hedge_deadline_clipped") {
      clipped = metric.count;
    }
  }
  EXPECT_EQ(clipped, 10u);

  // A generous deadline leaves hedging intact.
  request.deadline_ns = 1'000'000'000;
  for (std::uint64_t i = 0; i < 10; ++i) {
    (void)fleet.select(request);
  }
  EXPECT_GE(fleet.shard_hedges(home), hedges_before + 10);
  expect_nothing_lost(fleet.stats());
}

// ---- distributed tracing ----------------------------------------------

TEST_F(FleetTest, EndToEndRequestTraceHasAReplicaCriticalPath) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  FleetOptions options = small_fleet();
  options.trace_sample_den = 1;  // root every request
  {
    Fleet fleet{options};
    fleet.publish(model_a_);
    const auto response = fleet.select(make_request(11));
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
  }
  tracer.disable();

  obs::Collector collector;
  collector.ingest(tracer, "fleet");
  tracer.clear();
  ASSERT_EQ(collector.trace_ids().size(), 1u);
  const obs::MergedTrace trace = collector.assemble(collector.trace_ids()[0]);

  // One merged trace holds the whole request: the router's root span,
  // the fan-out, a slot span per replica, each slot's transport client
  // span, and the vote.
  std::size_t replica_spans = 0;
  std::size_t client_spans = 0;
  bool has_vote = false;
  for (const auto& placed : trace.events) {
    replica_spans += placed.event.name.rfind("fleet.replica", 0) == 0;
    client_spans += placed.event.name == "client.select";
    has_vote = has_vote || placed.event.name == "fleet.vote";
  }
  EXPECT_EQ(replica_spans, 3u);
  EXPECT_EQ(client_spans, 3u);
  EXPECT_TRUE(has_vote);
  EXPECT_EQ(trace.events[trace.root].event.name, "fleet.route");

  // The critical path descends route -> fan-out -> the quorum slot (the
  // replica whose completion released the request).
  ASSERT_GE(trace.critical_path.size(), 3u);
  EXPECT_EQ(trace.events[trace.critical_path[0]].event.name, "fleet.route");
  EXPECT_EQ(trace.events[trace.critical_path[1]].event.name.rfind("fleet.fanout", 0),
            0u);
  EXPECT_EQ(
      trace.events[trace.critical_path[2]].event.name.rfind("fleet.replica", 0),
      0u);
}

// ---- SLO engine --------------------------------------------------------

/// Fast-burn SLO wiring for tests: tiny windows, generous p99/cap
/// objectives so only the delivered-fraction SLO is in play.
FleetOptions slo_fleet() {
  FleetOptions options;
  options.shards = 4;
  options.replicas = 3;
  options.slo.enabled = true;
  options.slo.burn.fast_window = 2;
  options.slo.burn.slow_window = 4;
  options.slo.burn.burn_threshold = 1.0;
  options.slo.error_budget = 0.5;
  options.slo.p99_objective_us = 1e6;
  options.slo.cap_exceedance_target = 1.0;
  return options;
}

TEST_F(FleetTest, DeliveredSloFiresUnderNodeLossAndClearsAfterRevive) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable();
  FleetOptions options = slo_fleet();
  options.trace_sample_den = 1;
  Fleet fleet{options};
  fleet.publish(model_a_);
  const auto request = make_request(3);
  const std::uint32_t home = fleet.shard_of(request);

  auto drive_tick = [&] {
    for (std::uint64_t i = 0; i < 8; ++i) {
      (void)fleet.select(request);
    }
    fleet.tick();
  };

  drive_tick();
  drive_tick();
  EXPECT_TRUE(fleet.alerts().empty());  // healthy history

  // Kill the whole home shard: every request reroutes, so the
  // owner-first-try delivered fraction collapses to zero.
  for (std::uint32_t r = 0; r < options.replicas; ++r) {
    fleet.fail_node(NodeId{home, r});
  }
  drive_tick();
  drive_tick();
  tracer.disable();
  ASSERT_EQ(fleet.alerts().size(), 1u);
  const obs::Alert fired = fleet.alerts()[0];
  EXPECT_EQ(fired.slo, "fleet.delivered");
  EXPECT_TRUE(fired.active());
  EXPECT_GE(fired.fast_burn, 1.0);
  EXPECT_LT(fired.worst_value, options.slo.delivered_objective);

  // The alert carries exemplar trace ids that resolve in the merged
  // trace: an operator can jump from the alert to a traced request that
  // shows the reroute.
  ASSERT_FALSE(fired.exemplar_trace_ids.empty());
  obs::Collector collector;
  collector.ingest(tracer, "fleet");
  tracer.clear();
  const obs::MergedTrace exemplar =
      collector.assemble(fired.exemplar_trace_ids[0]);
  EXPECT_FALSE(exemplar.empty());

  // Revive the shard and serve two healthy ticks: the fast window
  // drains and the alert clears.
  for (std::uint32_t r = 0; r < options.replicas; ++r) {
    fleet.revive_node(NodeId{home, r});
  }
  drive_tick();
  drive_tick();
  ASSERT_EQ(fleet.alerts().size(), 1u);
  EXPECT_FALSE(fleet.alerts()[0].active());
  EXPECT_GT(fleet.alerts()[0].cleared_tick, fleet.alerts()[0].fired_tick);
  ASSERT_EQ(fleet.slo_states().size(), 3u);
  for (const obs::SloState& state : fleet.slo_states()) {
    EXPECT_FALSE(state.firing) << state.name;
  }
  expect_nothing_lost(fleet.stats());
}

TEST_F(FleetTest, StatsScrapeCarriesSeriesAndSloBlocksOverTheWire) {
  Fleet fleet{slo_fleet()};
  fleet.publish(model_a_);
  for (std::uint64_t tick = 0; tick < 3; ++tick) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      (void)fleet.select(make_request(i));
    }
    fleet.tick();
  }
  serve::StatsRequest scrape;
  scrape.request_id = 99;
  std::vector<std::uint8_t> frame;
  serve::encode_stats_request(scrape, frame);
  const auto reply = fleet.serve_frame(frame);
  const auto decoded = serve::decode_frame(reply);
  ASSERT_EQ(decoded.status, serve::DecodeStatus::Ok);

  const serve::SeriesStats& series = decoded.stats_response.series;
  EXPECT_TRUE(series.attached);
  EXPECT_EQ(series.ticks, 3u);
  std::vector<std::string> names;
  for (const auto& rollup : series.series) {
    names.push_back(rollup.name);
  }
  // Every SLO-referenced series travels with its slow-window rollup.
  for (const char* expected :
       {"fleet.delivered_ok", "fleet.routed", "fleet.window_p99_us",
        "fleet.window_cap_exceedance"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  const auto routed = std::find_if(
      series.series.begin(), series.series.end(),
      [](const auto& rollup) { return rollup.name == "fleet.routed"; });
  ASSERT_NE(routed, series.series.end());
  EXPECT_EQ(routed->latest, 15.0);
  EXPECT_EQ(routed->points, 3u);

  const serve::SloStats& slo = decoded.stats_response.slo;
  EXPECT_TRUE(slo.attached);
  EXPECT_EQ(slo.slos, 3u);
  EXPECT_EQ(slo.active, 0u);  // healthy fleet: nothing firing
  EXPECT_TRUE(slo.alerts.empty());
}

// ---- executor fan-out --------------------------------------------------

TEST_F(FleetTest, ParallelFanoutMatchesInlineDecisions) {
  // The executor only changes *where* replica calls run, never the
  // verdict: same requests, same configurations, with and without a pool.
  FleetOptions inline_options = small_fleet();
  Fleet inline_fleet{inline_options};
  inline_fleet.publish(model_a_);
  std::vector<std::uint32_t> inline_configs;
  for (std::uint64_t i = 0; i < 30; ++i) {
    inline_configs.push_back(inline_fleet.select(make_request(i)).config_index);
  }

  exec::ThreadPool pool{2};
  FleetOptions pooled_options = small_fleet();
  pooled_options.executor = &pool;
  Fleet pooled{pooled_options};
  pooled.publish(model_a_);
  for (std::uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(pooled.select(make_request(i)).config_index, inline_configs[i]);
  }
  EXPECT_EQ(pooled.stats().vote_disagreements, 0u);
  expect_nothing_lost(pooled.stats());
}

// ---- brownout / power emergency ----------------------------------------

TEST_F(FleetTest, ColdShardKeepsTheFallbackHedgeDelay) {
  FleetOptions options = small_fleet();
  options.latency_model = [](NodeId, std::uint64_t) -> std::uint64_t {
    return 150'000;
  };
  options.hedge_min_samples = 1'000'000;  // never enough samples
  options.hedge_fallback_delay_ns = 4'000'000;
  Fleet fleet{options};
  fleet.publish(model_a_);
  const auto request = make_request(3);
  const std::uint32_t home = fleet.shard_of(request);
  for (std::uint64_t i = 0; i < 40; ++i) {
    (void)fleet.select(request);
  }
  fleet.tick();
  // Below the sample threshold the p95 is noise; the delay must stay
  // pinned at the configured fallback, not track a garbage tail.
  EXPECT_EQ(fleet.hedge_delay_ns(home), 4'000'000u);
}

TEST_F(FleetTest, PowerEmergencyShedsLowPriorityAndRecoversStaged) {
  FleetOptions options = small_fleet();
  options.rebalance_period = 1;
  Fleet fleet{options};
  fleet.publish(model_a_);
  EXPECT_EQ(fleet.brownout_stage(), BrownoutStage::None);

  // Emergency: 40% of base is below the floor-pressure threshold, so the
  // next rebalance escalates straight to ForceLowPower.
  fleet.set_emergency_budget(0.4 * FleetOptions{}.budget.global_budget_w);
  fleet.tick();
  EXPECT_EQ(fleet.brownout_stage(), BrownoutStage::ForceLowPower);

  // Low priority is shed at the router; High still flows.
  serve::SelectRequest low = make_request(1);
  low.priority = serve::Priority::Low;
  EXPECT_EQ(fleet.select(low).status, serve::ResponseStatus::Shed);
  serve::SelectRequest high = make_request(2);
  high.priority = serve::Priority::High;
  EXPECT_EQ(fleet.select(high).status, serve::ResponseStatus::Ok);
  serve::FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.shed_by_priority[2], 1u);
  EXPECT_EQ(stats.delivered_by_priority[0], 1u);
  EXPECT_EQ(stats.brownout_stage, 3u);
  EXPECT_EQ(stats.brownout_events, 1u);
  expect_nothing_lost(stats);

  // Recovery unwinds one stage per rebalance, not in one snap.
  fleet.clear_emergency_budget();
  fleet.tick();
  EXPECT_EQ(fleet.brownout_stage(), BrownoutStage::ShedLowPriority);
  fleet.tick();
  EXPECT_EQ(fleet.brownout_stage(), BrownoutStage::DropHedges);
  fleet.tick();
  EXPECT_EQ(fleet.brownout_stage(), BrownoutStage::None);

  // Fully recovered: Low flows again, per-class accounting still holds.
  low.request_id = 99;
  EXPECT_EQ(fleet.select(low).status, serve::ResponseStatus::Ok);
  stats = fleet.stats();
  EXPECT_EQ(stats.delivered_by_priority[2], 1u);
  EXPECT_EQ(stats.routed_by_priority[2],
            stats.delivered_by_priority[2] + stats.shed_by_priority[2]);
  expect_nothing_lost(stats);
}

}  // namespace
}  // namespace acsel::fleet
