// Tests for the online scheduler over predicted Pareto frontiers.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "util/error.h"

namespace acsel::core {
namespace {

/// Builds a synthetic prediction with a known frontier: configs 0..3 at
/// (10 W, 1), (15 W, 2), (25 W, 3), (26 W, 2.5) — config 3 is dominated
/// by config 2 (more power, less performance).
Prediction make_prediction(double sigma = 0.0) {
  Prediction prediction;
  prediction.cluster = 2;
  const double power[] = {10.0, 15.0, 25.0, 26.0};
  const double perf[] = {1.0, 2.0, 3.0, 2.5};
  for (std::size_t i = 0; i < 4; ++i) {
    ClusterModel::Estimate e;
    e.power_w = power[i];
    e.performance = perf[i];
    e.power_sigma = sigma;
    prediction.per_config.push_back(e);
  }
  prediction.frontier = pareto::ParetoFrontier::build(
      std::vector<double>{power, power + 4},
      std::vector<double>{perf, perf + 4});
  return prediction;
}

TEST(Scheduler, PicksHighestPerformanceUnderCap) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice = scheduler.select(20.0);
  EXPECT_EQ(choice.config_index, 1u);
  EXPECT_TRUE(choice.predicted_feasible);
  EXPECT_DOUBLE_EQ(choice.predicted_power_w, 15.0);
  EXPECT_DOUBLE_EQ(choice.predicted_performance, 2.0);
}

TEST(Scheduler, GenerousCapPicksTopOfFrontier) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice = scheduler.select(100.0);
  EXPECT_EQ(choice.config_index, 2u);
}

TEST(Scheduler, ExactCapBoundaryIsFeasible) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice = scheduler.select(15.0);
  EXPECT_EQ(choice.config_index, 1u);
  EXPECT_TRUE(choice.predicted_feasible);
}

TEST(Scheduler, InfeasibleCapFallsBackToLowestPower) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice = scheduler.select(5.0);
  EXPECT_EQ(choice.config_index, 0u);
  EXPECT_FALSE(choice.predicted_feasible);
}

TEST(Scheduler, DominatedConfigNeverSelected) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  // Config 3 (26 W, 2.5) is off the frontier; a 26.5 W cap must pick the
  // frontier's config 2, never config 3.
  const auto choice = scheduler.select(26.5);
  EXPECT_EQ(choice.config_index, 2u);
}

TEST(Scheduler, RiskAversionBacksOffNearTheCap) {
  const Prediction prediction = make_prediction(2.0);  // sigma = 2 W
  SchedulerOptions options;
  options.risk_aversion = 1.0;
  const Scheduler scheduler{prediction, options};
  // 16 W cap: config 1 predicts 15 W +/- 2 W; risk-adjusted 17 W > 16 W,
  // so back off to config 0.
  const auto choice = scheduler.select(16.0);
  EXPECT_EQ(choice.config_index, 0u);
  // Without risk aversion config 1 would be chosen.
  const Scheduler bold{prediction};
  EXPECT_EQ(bold.select(16.0).config_index, 1u);
}

TEST(Scheduler, SelectUnconstrained) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice = scheduler.select_unconstrained();
  EXPECT_EQ(choice.config_index, 2u);
  EXPECT_DOUBLE_EQ(choice.predicted_performance, 3.0);
}

TEST(Scheduler, RejectsEmptyPredictionAndBadInputs) {
  Prediction empty;
  EXPECT_THROW(Scheduler{empty}, Error);
  const Prediction prediction = make_prediction();
  SchedulerOptions bad;
  bad.risk_aversion = -1.0;
  EXPECT_THROW((Scheduler{prediction, bad}), Error);
  const Scheduler scheduler{prediction};
  EXPECT_THROW(scheduler.select(0.0), Error);
}

TEST(SchedulerGoals, MinEnergyPicksCheapestJoulesPerInvocation) {
  // Energies: 10/1=10, 15/2=7.5, 25/3=8.33 -> config 1 wins.
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice = scheduler.select_goal(SchedulingGoal::MinEnergy);
  EXPECT_EQ(choice.config_index, 1u);
  EXPECT_TRUE(choice.predicted_feasible);
}

TEST(SchedulerGoals, MinEdpFavorsFasterConfigs) {
  // EDP: 10/1=10, 15/4=3.75, 25/9=2.78 -> config 2 wins.
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice = scheduler.select_goal(SchedulingGoal::MinEnergyDelay);
  EXPECT_EQ(choice.config_index, 2u);
}

TEST(SchedulerGoals, GoalsRespectTheCap) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  // Cap 12 W leaves only config 0 regardless of goal.
  EXPECT_EQ(scheduler.select_goal(SchedulingGoal::MinEnergy, 12.0)
                .config_index,
            0u);
  EXPECT_EQ(scheduler.select_goal(SchedulingGoal::MinEnergyDelay, 12.0)
                .config_index,
            0u);
}

TEST(SchedulerGoals, InfeasibleCapFallsBack) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  const auto choice =
      scheduler.select_goal(SchedulingGoal::MinEnergy, 5.0);
  EXPECT_EQ(choice.config_index, 0u);
  EXPECT_FALSE(choice.predicted_feasible);
}

TEST(SchedulerGoals, MaxPerformanceDelegates) {
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  EXPECT_EQ(
      scheduler.select_goal(SchedulingGoal::MaxPerformance).config_index,
      scheduler.select_unconstrained().config_index);
  EXPECT_EQ(
      scheduler.select_goal(SchedulingGoal::MaxPerformance, 20.0)
          .config_index,
      scheduler.select(20.0).config_index);
}

TEST(SchedulerGoals, GoalNames) {
  EXPECT_STREQ(to_string(SchedulingGoal::MaxPerformance),
               "max-performance");
  EXPECT_STREQ(to_string(SchedulingGoal::MinEnergy), "min-energy");
  EXPECT_STREQ(to_string(SchedulingGoal::MinEnergyDelay), "min-edp");
}

TEST(Scheduler, DynamicCapAdaptationNeedsNoNewPrediction) {
  // The predicted frontier is retained; a cap change is just another
  // select() call (§III-C "adaptable to dynamic power constraints").
  const Prediction prediction = make_prediction();
  const Scheduler scheduler{prediction};
  EXPECT_EQ(scheduler.select(12.0).config_index, 0u);
  EXPECT_EQ(scheduler.select(30.0).config_index, 2u);
  EXPECT_EQ(scheduler.select(16.0).config_index, 1u);
}

}  // namespace
}  // namespace acsel::core
