// Tests for the related-work baselines: the MLP classifier (ANNs,
// §II-A), agglomerative clustering, the leading-loads DVFS predictor
// (§II-B), and the Pack & Cap-style thread-packing method (§II-A).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/leading_loads.h"
#include "eval/characterize.h"
#include "eval/methods.h"
#include "eval/oracle.h"
#include "hw/config_space.h"
#include "profile/profiler.h"
#include "soc/machine.h"
#include "stats/agglomerative.h"
#include "stats/mlp.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/suite.h"

namespace acsel {
namespace {

// ------------------------------------------------------------------ mlp --

TEST(Mlp, LearnsLinearlySeparableClasses) {
  Rng rng{1};
  const std::size_t n = 200;
  linalg::Matrix x{n, 2};
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    labels[i] = x(i, 0) + x(i, 1) > 0.0 ? 1u : 0u;
  }
  const auto mlp = stats::MlpClassifier::fit(x, labels);
  EXPECT_GT(mlp.training_accuracy(), 0.95);
  EXPECT_EQ(mlp.class_count(), 2u);
  EXPECT_EQ(mlp.predict(std::vector<double>{0.8, 0.8}), 1u);
  EXPECT_EQ(mlp.predict(std::vector<double>{-0.8, -0.8}), 0u);
}

TEST(Mlp, LearnsNonlinearXor) {
  // XOR is the classic case a linear model cannot fit but an MLP can.
  Rng rng{2};
  const std::size_t n = 400;
  linalg::Matrix x{n, 2};
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    x(i, 1) = rng.uniform(-1.0, 1.0);
    labels[i] = (x(i, 0) > 0.0) != (x(i, 1) > 0.0) ? 1u : 0u;
  }
  stats::MlpOptions options;
  options.hidden_units = 24;
  options.epochs = 800;
  options.learning_rate = 0.01;  // momentum 0.9 wants a gentle step here
  const auto mlp = stats::MlpClassifier::fit(x, labels, options);
  EXPECT_GT(mlp.training_accuracy(), 0.9);
}

TEST(Mlp, ProbabilitiesSumToOne) {
  Rng rng{3};
  linalg::Matrix x{60, 3};
  std::vector<std::size_t> labels(60);
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t f = 0; f < 3; ++f) {
      x(i, f) = rng.uniform(0.0, 1.0);
    }
    labels[i] = i % 3;
  }
  const auto mlp = stats::MlpClassifier::fit(x, labels);
  const auto proba =
      mlp.predict_proba(std::vector<double>{0.5, 0.5, 0.5});
  ASSERT_EQ(proba.size(), 3u);
  double sum = 0.0;
  for (const double p : proba) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Mlp, DeterministicForSameSeed) {
  Rng rng{4};
  linalg::Matrix x{50, 2};
  std::vector<std::size_t> labels(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
    labels[i] = x(i, 0) > 0.5 ? 1u : 0u;
  }
  const auto a = stats::MlpClassifier::fit(x, labels);
  const auto b = stats::MlpClassifier::fit(x, labels);
  const std::vector<double> probe{0.3, 0.7};
  EXPECT_EQ(a.predict(probe), b.predict(probe));
  EXPECT_DOUBLE_EQ(a.predict_proba(probe)[0], b.predict_proba(probe)[0]);
}

TEST(Mlp, ValidatesInputs) {
  linalg::Matrix x{3, 2};
  const std::vector<std::size_t> labels{0, 1};
  EXPECT_THROW(stats::MlpClassifier::fit(x, labels), Error);
  const stats::MlpClassifier untrained;
  EXPECT_THROW(untrained.predict(std::vector<double>{1.0}), Error);
}

// -------------------------------------------------------- agglomerative --

linalg::Matrix distance_matrix_1d(const std::vector<double>& points) {
  const std::size_t n = points.size();
  linalg::Matrix d{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d(i, j) = std::abs(points[i] - points[j]);
    }
  }
  return d;
}

TEST(Agglomerative, SeparatesObviousClusters) {
  const auto d = distance_matrix_1d({0.0, 0.1, 0.2, 5.0, 5.1, 10.0, 10.1});
  for (const auto linkage : {stats::Linkage::Single,
                             stats::Linkage::Complete,
                             stats::Linkage::Average}) {
    const auto result = stats::agglomerative(d, 3, linkage);
    EXPECT_EQ(result.assignment[0], result.assignment[1]);
    EXPECT_EQ(result.assignment[1], result.assignment[2]);
    EXPECT_EQ(result.assignment[3], result.assignment[4]);
    EXPECT_EQ(result.assignment[5], result.assignment[6]);
    std::set<std::size_t> labels(result.assignment.begin(),
                                 result.assignment.end());
    EXPECT_EQ(labels.size(), 3u);
  }
}

TEST(Agglomerative, KEqualsNLeavesSingletons) {
  const auto d = distance_matrix_1d({1.0, 2.0, 3.0});
  const auto result = stats::agglomerative(d, 3);
  EXPECT_TRUE(result.merge_heights.empty());
  std::set<std::size_t> labels(result.assignment.begin(),
                               result.assignment.end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(Agglomerative, KEqualsOneMergesEverything) {
  const auto d = distance_matrix_1d({1.0, 2.0, 8.0, 9.0});
  const auto result = stats::agglomerative(d, 1);
  EXPECT_EQ(result.merge_heights.size(), 3u);
  for (const std::size_t label : result.assignment) {
    EXPECT_EQ(label, 0u);
  }
}

TEST(Agglomerative, AverageLinkageHeightsNonDecreasing) {
  Rng rng{5};
  std::vector<double> points(20);
  for (auto& p : points) {
    p = rng.uniform(0.0, 10.0);
  }
  const auto d = distance_matrix_1d(points);
  const auto result = stats::agglomerative(d, 1, stats::Linkage::Complete);
  for (std::size_t i = 1; i < result.merge_heights.size(); ++i) {
    EXPECT_GE(result.merge_heights[i], result.merge_heights[i - 1] - 1e-12);
  }
}

TEST(Agglomerative, ValidatesInputs) {
  const auto d = distance_matrix_1d({1.0, 2.0});
  EXPECT_THROW(stats::agglomerative(d, 0), Error);
  EXPECT_THROW(stats::agglomerative(d, 3), Error);
}

// -------------------------------------------------------- leading loads --

class LeadingLoadsTest : public ::testing::Test {
 protected:
  soc::Machine machine_{soc::MachineSpec{}, 88};
  workloads::Suite suite_ = workloads::Suite::standard();
  hw::ConfigSpace space_;

  profile::KernelRecord record_at(const workloads::WorkloadInstance& inst,
                                  std::size_t pstate) {
    profile::Profiler profiler{machine_};
    hw::Configuration config = space_.cpu_sample();
    config.cpu_pstate = pstate;
    return profiler.run(inst, config);
  }
};

TEST_F(LeadingLoadsTest, PredictsFrequencyScalingOfCpuKernels) {
  // One measurement at 2.4 GHz predicts the other five P-states within a
  // few percent — the model's home turf.
  for (const auto& id : {"SMC-Default/ChemistryRates",
                         "LULESH-Large/UpdateVolumesForElems"}) {
    const auto& instance = suite_.instance(id);
    const auto base = record_at(instance, 2);
    for (std::size_t p = 0; p < hw::kCpuPStateCount; ++p) {
      hw::Configuration config = space_.cpu_sample();
      config.cpu_pstate = p;
      const double predicted = core::leading_loads_time_ms(
          base, hw::cpu_pstates()[p].freq_ghz);
      const double truth =
          machine_.analytic(instance.traits, config).time_ms;
      EXPECT_NEAR(predicted / truth, 1.0, 0.13) << id << " P" << p;
    }
  }
}

TEST_F(LeadingLoadsTest, SamePointIsExactUpToNoise) {
  const auto& instance = suite_.instance("CoMD-LJ/ComputeForce");
  const auto base = record_at(instance, 3);
  const double predicted = core::leading_loads_time_ms(
      base, base.config.cpu_freq_ghz());
  EXPECT_NEAR(predicted / base.time_ms, 1.0, 1e-9);
  EXPECT_NEAR(core::leading_loads_performance(
                  base, base.config.cpu_freq_ghz()),
              base.performance(), base.performance() * 1e-9);
}

TEST_F(LeadingLoadsTest, RejectsGpuRecords) {
  profile::Profiler profiler{machine_};
  const auto gpu_record = profiler.run(
      suite_.instance("LU-Small/lud"), space_.gpu_sample());
  EXPECT_THROW(core::leading_loads_time_ms(gpu_record, 2.4), Error);
}

// ------------------------------------------------------------- pack&cap --

class PackCapTest : public ::testing::Test {
 protected:
  soc::Machine machine_{soc::MachineSpec{}, 909};
  workloads::Suite suite_ = workloads::Suite::standard();
};

TEST_F(PackCapTest, PacksThreadsWhenFrequencyIsNotEnough) {
  // LU Small: every 3-4 thread configuration exceeds the low caps
  // (paper §V-D) — Pack&Cap must shed threads where CPU+FL cannot.
  const auto& instance = suite_.instance("LU-Small/lud");
  const eval::Oracle oracle = eval::build_oracle(machine_, instance);
  const double low_cap = oracle.constraints()[1];
  const auto packcap = run_method(machine_, instance, eval::Method::PackCap,
                                  low_cap, nullptr);
  EXPECT_EQ(packcap.final_config.device, hw::Device::Cpu);
  EXPECT_LT(packcap.final_config.threads, hw::kCpuCores);
  const auto cpufl = run_method(machine_, instance, eval::Method::CpuFL,
                                low_cap, nullptr);
  EXPECT_EQ(cpufl.final_config.threads, hw::kCpuCores);
  // Thread packing meets caps that frequency limiting alone cannot.
  EXPECT_TRUE(packcap.under_limit);
  EXPECT_FALSE(cpufl.under_limit);
}

TEST_F(PackCapTest, StaysAtFullConfigWithGenerousCap) {
  const auto& instance = suite_.instance("SMC-Default/DiffusionFluxX");
  const auto outcome = run_method(machine_, instance,
                                  eval::Method::PackCap, 200.0, nullptr);
  EXPECT_EQ(outcome.final_config.threads, hw::kCpuCores);
  EXPECT_EQ(outcome.final_config.cpu_pstate, hw::kCpuMaxPState);
  EXPECT_TRUE(outcome.under_limit);
}

TEST_F(PackCapTest, StillCannotPickTheDevice) {
  // The structural limit of every CPU-only method: on a GPU-dominant
  // kernel at a generous cap it leaves the GPU's performance on the table.
  const auto& instance = suite_.instance("LU-Large/lud");
  const eval::Oracle oracle = eval::build_oracle(machine_, instance);
  const double high_cap = oracle.constraints().back();
  const auto outcome = run_method(machine_, instance,
                                  eval::Method::PackCap, high_cap, nullptr);
  const auto oracle_point = oracle.best_under(high_cap);
  EXPECT_LT(outcome.measured_performance, 0.5 * oracle_point.performance);
}

TEST_F(PackCapTest, NotPartOfThePaperMethodSet) {
  for (const auto method : eval::all_methods()) {
    EXPECT_NE(method, eval::Method::PackCap);
  }
  EXPECT_STREQ(to_string(eval::Method::PackCap), "Pack&Cap");
}

}  // namespace
}  // namespace acsel
