// Tests for the evaluation harness: oracle construction, the four
// power-limiting methods, metric aggregation, and a full LOOCV run whose
// aggregate shape must match the paper's Table III qualitatively.
#include <gtest/gtest.h>

#include <iostream>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "eval/metrics.h"
#include "eval/methods.h"
#include "eval/oracle.h"
#include "eval/protocol.h"
#include "eval/tables.h"
#include "exec/thread_pool.h"
#include "hw/config_space.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::eval {
namespace {

// ---------------------------------------------------------------- oracle --

class OracleTest : public ::testing::Test {
 protected:
  soc::Machine machine_{soc::MachineSpec{}, 5150};
  workloads::Suite suite_ = workloads::Suite::standard();
  hw::ConfigSpace space_;
};

TEST_F(OracleTest, FrontierAndConstraintsConsistent) {
  const auto& instance = suite_.instance("LULESH-Large/CalcFBHourglassForce");
  const Oracle oracle = build_oracle(machine_, instance);
  EXPECT_EQ(oracle.power_w.size(), space_.size());
  const auto caps = oracle.constraints();
  EXPECT_EQ(caps.size(), oracle.frontier.size());
  // At each constraint the oracle achieves exactly that frontier point.
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const auto point = oracle.best_under(caps[i]);
    EXPECT_DOUBLE_EQ(point.power_w, caps[i]);
    EXPECT_DOUBLE_EQ(point.performance,
                     oracle.frontier.points()[i].performance);
  }
}

TEST_F(OracleTest, CapBelowFrontierThrows) {
  const auto& instance = suite_.instance("LU-Small/lud");
  const Oracle oracle = build_oracle(machine_, instance);
  EXPECT_THROW(oracle.best_under(1.0), Error);
}

// --------------------------------------------------------------- methods --

class MethodsTest : public ::testing::Test {
 protected:
  soc::Machine machine_{soc::MachineSpec{}, 616};
  workloads::Suite suite_ = workloads::Suite::standard();
  hw::ConfigSpace space_;
};

TEST_F(MethodsTest, CpuFlStaysOnCpuAndMeetsMidCap) {
  const auto& instance = suite_.instance("LULESH-Large/CalcEnergyForElems");
  const Oracle oracle = build_oracle(machine_, instance);
  const double cap = oracle.constraints()[oracle.constraints().size() / 2];
  const auto outcome =
      run_method(machine_, instance, Method::CpuFL, cap, nullptr);
  EXPECT_EQ(outcome.final_config.device, hw::Device::Cpu);
  EXPECT_EQ(outcome.final_config.threads, hw::kCpuCores);  // §V-A
}

TEST_F(MethodsTest, GpuFlStaysOnGpuAndViolatesLowCaps) {
  const auto& instance = suite_.instance("LULESH-Small/CalcForceForNodes");
  const Oracle oracle = build_oracle(machine_, instance);
  const double low_cap = oracle.constraints().front();  // CPU-only regime
  const auto outcome =
      run_method(machine_, instance, Method::GpuFL, low_cap, nullptr);
  EXPECT_EQ(outcome.final_config.device, hw::Device::Gpu);
  EXPECT_FALSE(outcome.under_limit);  // the GPU cannot reach CPU-low power
}

TEST_F(MethodsTest, ModelMethodsRequirePrediction) {
  const auto& instance = suite_.instance("LU-Medium/lud");
  EXPECT_THROW(
      run_method(machine_, instance, Method::Model, 20.0, nullptr), Error);
  EXPECT_THROW(
      run_method(machine_, instance, Method::ModelFL, 20.0, nullptr),
      Error);
}

TEST_F(MethodsTest, MethodNamesAndList) {
  EXPECT_STREQ(to_string(Method::ModelFL), "Model+FL");
  EXPECT_EQ(all_methods().size(), 4u);
}

// --------------------------------------------------------------- metrics --

CaseResult make_case(Method method, const std::string& group, double weight,
                     bool under, double perf, double power) {
  CaseResult c;
  // Move-assign: GCC 12's -Wrestrict misfires on operator=(const char*)
  // here at -O2 and above.
  c.instance_id = std::string{"k"};
  c.benchmark = std::string{"b"};
  c.group = group;
  c.weight = weight;
  c.method = method;
  c.cap_w = 20.0;
  c.under_limit = under;
  c.perf_vs_oracle = perf;
  c.power_vs_oracle = power;
  return c;
}

TEST(Metrics, AggregateSplitsUnderAndOver) {
  std::vector<CaseResult> cases{
      make_case(Method::Model, "g", 1.0, true, 0.9, 0.95),
      make_case(Method::Model, "g", 1.0, true, 0.7, 0.85),
      make_case(Method::Model, "g", 2.0, false, 1.5, 1.2),
      make_case(Method::CpuFL, "g", 1.0, true, 0.5, 0.9),  // other method
  };
  const auto agg = aggregate_method(cases, Method::Model);
  EXPECT_EQ(agg.case_count, 3u);
  EXPECT_NEAR(agg.pct_under_limit, 100.0 * 2.0 / 4.0, 1e-9);
  EXPECT_NEAR(agg.under_perf_pct, 100.0 * (0.9 + 0.7) / 2.0, 1e-9);
  EXPECT_NEAR(agg.over_perf_pct, 150.0, 1e-9);
  EXPECT_NEAR(agg.over_power_pct, 120.0, 1e-9);
}

TEST(Metrics, WeightsShiftTheAverage) {
  std::vector<CaseResult> cases{
      make_case(Method::Model, "g", 9.0, true, 1.0, 1.0),
      make_case(Method::Model, "g", 1.0, true, 0.0, 1.0),
  };
  const auto agg = aggregate_method(cases, Method::Model);
  EXPECT_NEAR(agg.under_perf_pct, 90.0, 1e-9);
}

TEST(Metrics, GroupFilterIsolatesBenchmarks) {
  std::vector<CaseResult> cases{
      make_case(Method::Model, "LU Small", 1.0, true, 0.5, 1.0),
      make_case(Method::Model, "SMC Default", 1.0, true, 1.0, 1.0),
  };
  const auto lu = aggregate_method_group(cases, Method::Model, "LU Small");
  EXPECT_EQ(lu.case_count, 1u);
  EXPECT_NEAR(lu.under_perf_pct, 50.0, 1e-9);
  const auto none = aggregate_method_group(cases, Method::Model, "absent");
  EXPECT_EQ(none.case_count, 0u);
  EXPECT_DOUBLE_EQ(none.pct_under_limit, 0.0);
}

// ------------------------------------------------ full LOOCV shape check --

class LoocvTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const soc::Machine machine{soc::MachineSpec{}, 90210};
    const auto suite = workloads::Suite::standard();
    // ACSEL_THREADS steers the pool size (the CI TSan job sets 2); the
    // result is identical at any size, so the assertions below don't care.
    exec::init_threads_from_env();
    static exec::ThreadPool pool{exec::default_threads()};
    result_ = new EvaluationResult{
        run_loocv({.machine = machine, .executor = pool}, suite)};
    std::cout << "\n--- LOOCV Table III (for inspection) ---\n";
    table3(*result_).print(std::cout);
  }
  static void TearDownTestSuite() { delete result_; }
  static EvaluationResult* result_;
};

EvaluationResult* LoocvTest::result_ = nullptr;

TEST_F(LoocvTest, EveryMethodHasCasesAndSaneRanges) {
  for (const Method method : all_methods()) {
    const auto agg = aggregate_method(result_->cases, method);
    EXPECT_GT(agg.case_count, 100u) << to_string(method);
    EXPECT_GE(agg.pct_under_limit, 0.0);
    EXPECT_LE(agg.pct_under_limit, 100.0);
    EXPECT_GT(agg.under_perf_pct, 0.0);
    EXPECT_LE(agg.under_perf_pct, 115.0)
        << to_string(method)
        << ": under-limit cases cannot beat the oracle by much";
  }
}

TEST_F(LoocvTest, TableIIIShapeHolds) {
  const auto model = aggregate_method(result_->cases, Method::Model);
  const auto model_fl = aggregate_method(result_->cases, Method::ModelFL);
  const auto cpu_fl = aggregate_method(result_->cases, Method::CpuFL);
  const auto gpu_fl = aggregate_method(result_->cases, Method::GpuFL);

  // Frequency limiting makes the model respect caps more often
  // (paper: 70% -> 88%).
  EXPECT_GT(model_fl.pct_under_limit, model.pct_under_limit);
  // Model+FL meets constraints more often than GPU+FL (88% vs 60%).
  EXPECT_GT(model_fl.pct_under_limit, gpu_fl.pct_under_limit + 5.0);
  // Model+FL keeps most of the oracle's performance (91%).
  EXPECT_GT(model_fl.under_perf_pct, 70.0);
  // CPU+FL sacrifices much more performance than Model+FL (69% vs 91%).
  EXPECT_GT(model_fl.under_perf_pct, cpu_fl.under_perf_pct + 5.0);
  // When GPU+FL blows the cap it blows it hard, with outsized performance
  // (paper: 137% power, 1723% performance).
  EXPECT_GT(gpu_fl.over_perf_pct, 200.0);
  EXPECT_GT(gpu_fl.over_power_pct, model_fl.over_power_pct);
}

TEST_F(LoocvTest, ModelMeetsMostConstraints) {
  const auto model_fl = aggregate_method(result_->cases, Method::ModelFL);
  EXPECT_GT(model_fl.pct_under_limit, 65.0);
}

TEST_F(LoocvTest, GpuFlOverLimitPerfExplodesOnLu) {
  // Fig. 9: the clipped bars — GPU+FL on LU reaches many times oracle
  // performance in over-limit cases.
  const auto lu_large =
      aggregate_method_group(result_->cases, Method::GpuFL, "LU Large");
  if (lu_large.case_count > 0 && lu_large.pct_under_limit < 100.0) {
    EXPECT_GT(lu_large.over_perf_pct, 300.0);
  }
}

TEST_F(LoocvTest, TablesRenderNonEmpty) {
  EXPECT_EQ(table3(*result_).row_count(), 4u);
  EXPECT_EQ(fig4_points(*result_).row_count(), 4u);
  const auto fig5 = per_group_table(*result_, GroupMetric::UnderLimitPerfPct);
  EXPECT_EQ(fig5.row_count(), result_->groups.size());
  const auto fig6 = per_group_table(*result_, GroupMetric::PctUnderLimit);
  EXPECT_EQ(fig6.row_count(), result_->groups.size());
}

}  // namespace
}  // namespace acsel::eval
