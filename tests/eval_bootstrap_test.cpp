// Tests for bootstrap confidence intervals, the DRAM power domain, and
// execution-trace recording.
#include <gtest/gtest.h>

#include "eval/bootstrap.h"
#include "hw/config_space.h"
#include "soc/freq_limiter.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::eval {
namespace {

// noinline + move-assigns: GCC 12's -Wrestrict misfires on the inlined
// string copies here at -O2 and above.
[[gnu::noinline]] CaseResult make_case(const std::string& instance,
                                       bool under, double perf,
                                       double power) {
  CaseResult c;
  c.instance_id = instance;
  c.benchmark = std::string{"b"};
  c.group = std::string{"g"};
  c.weight = 1.0;
  c.method = Method::Model;
  c.cap_w = 20.0;
  c.under_limit = under;
  c.perf_vs_oracle = perf;
  c.power_vs_oracle = power;
  return c;
}

std::vector<CaseResult> synthetic_cases(std::size_t kernels,
                                        std::size_t per_kernel) {
  std::vector<CaseResult> cases;
  for (std::size_t k = 0; k < kernels; ++k) {
    for (std::size_t i = 0; i < per_kernel; ++i) {
      const bool under = (k + i) % 3 != 0;  // ~2/3 under-limit
      cases.push_back(make_case("kernel" + std::to_string(k), under,
                                under ? 0.8 + 0.01 * static_cast<double>(k)
                                      : 1.3,
                                under ? 0.9 : 1.15));
    }
  }
  return cases;
}

TEST(Bootstrap, IntervalContainsPointEstimate) {
  const auto cases = synthetic_cases(12, 8);
  const auto result = bootstrap_method(cases, Method::Model);
  EXPECT_GE(result.pct_under_limit.point, result.pct_under_limit.lo);
  EXPECT_LE(result.pct_under_limit.point, result.pct_under_limit.hi);
  EXPECT_GE(result.under_perf_pct.point, result.under_perf_pct.lo);
  EXPECT_LE(result.under_perf_pct.point, result.under_perf_pct.hi);
  EXPECT_EQ(result.replicates, BootstrapOptions{}.replicates);
}

TEST(Bootstrap, DeterministicForSameSeed) {
  const auto cases = synthetic_cases(10, 6);
  const auto a = bootstrap_method(cases, Method::Model);
  const auto b = bootstrap_method(cases, Method::Model);
  EXPECT_DOUBLE_EQ(a.pct_under_limit.lo, b.pct_under_limit.lo);
  EXPECT_DOUBLE_EQ(a.under_perf_pct.hi, b.under_perf_pct.hi);
}

TEST(Bootstrap, HomogeneousDataGivesTightIntervals) {
  // Identical kernels -> every replicate aggregates the same values.
  std::vector<CaseResult> cases;
  for (int k = 0; k < 8; ++k) {
    cases.push_back(
        make_case(std::string{"k"} + std::to_string(k), true, 0.9, 0.95));
  }
  const auto result = bootstrap_method(cases, Method::Model);
  EXPECT_NEAR(result.pct_under_limit.hi - result.pct_under_limit.lo, 0.0,
              1e-9);
  EXPECT_NEAR(result.under_perf_pct.hi - result.under_perf_pct.lo, 0.0,
              1e-9);
}

TEST(Bootstrap, HeterogeneousKernelsWidenTheInterval) {
  // Two kernel populations with very different under-limit performance.
  std::vector<CaseResult> cases;
  for (int k = 0; k < 6; ++k) {
    cases.push_back(make_case("good" + std::to_string(k), true, 1.0, 0.9));
    cases.push_back(make_case("bad" + std::to_string(k), true, 0.2, 0.9));
  }
  const auto result = bootstrap_method(cases, Method::Model);
  EXPECT_GT(result.under_perf_pct.hi - result.under_perf_pct.lo, 5.0);
}

TEST(Bootstrap, ValidatesInputs) {
  const auto cases = synthetic_cases(1, 5);  // single kernel: rejected
  EXPECT_THROW(bootstrap_method(cases, Method::Model), Error);
  BootstrapOptions bad;
  bad.replicates = 3;
  EXPECT_THROW(
      bootstrap_method(synthetic_cases(5, 5), Method::Model, bad), Error);
}

}  // namespace
}  // namespace acsel::eval

namespace acsel::soc {
namespace {

KernelCharacteristics mem_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 0.8;
  k.bytes_per_flop = 1.8;
  k.parallel_fraction = 0.97;
  return k;
}

// ---------------------------------------------------- DRAM power domain --

TEST(DramPower, OffByDefault) {
  Machine machine;
  const hw::ConfigSpace space;
  const auto state = machine.analytic(mem_kernel(), space.cpu_sample());
  EXPECT_EQ(state.dram_power_w, 0.0);
  EXPECT_DOUBLE_EQ(state.system_power_w(), state.total_power_w());
}

TEST(DramPower, TracksTrafficWhenEnabled) {
  MachineSpec spec;
  spec.model_dram_power = true;
  Machine machine{spec, 1};
  const hw::ConfigSpace space;
  const auto mem = machine.analytic(mem_kernel(), space.cpu_sample());
  KernelCharacteristics compute = mem_kernel();
  compute.bytes_per_flop = 0.05;
  const auto cpu = machine.analytic(compute, space.cpu_sample());
  EXPECT_GT(mem.dram_power_w, spec.dram_background_w);
  EXPECT_GT(mem.dram_power_w, cpu.dram_power_w);
  EXPECT_NEAR(mem.dram_power_w,
              spec.dram_background_w + spec.dram_w_per_gbs * mem.dram_gbs,
              1e-9);
  EXPECT_GT(mem.system_power_w(), mem.total_power_w());
}

TEST(DramPower, RunAccumulatesDramEnergy) {
  MachineSpec spec;
  spec.model_dram_power = true;
  Machine machine{spec, 2};
  const hw::ConfigSpace space;
  const auto result = machine.run(mem_kernel(), space.cpu_sample());
  const auto truth = machine.analytic(mem_kernel(), space.cpu_sample());
  EXPECT_NEAR(result.avg_dram_power_w / truth.dram_power_w, 1.0, 0.03);
}

TEST(DramPower, MemoryPowerIsVolatileAcrossKernels) {
  // §VI's motivation: "memory power is more volatile than network power"
  // — DRAM power must vary strongly across kernels/configs.
  MachineSpec spec;
  spec.model_dram_power = true;
  Machine machine{spec, 3};
  const auto suite = workloads::Suite::standard();
  const hw::ConfigSpace space;
  double lo = 1e300;
  double hi = 0.0;
  for (std::size_t i = 0; i < suite.size(); i += 5) {
    const auto s = machine.analytic(suite.instances()[i].traits,
                                    space.cpu_sample());
    lo = std::min(lo, s.dram_power_w);
    hi = std::max(hi, s.dram_power_w);
  }
  EXPECT_GT(hi / lo, 1.6);
}

// ---------------------------------------------------------------- trace --

TEST(Trace, EmptyUnlessEnabled) {
  Machine machine;
  const hw::ConfigSpace space;
  const auto result = machine.run(mem_kernel(), space.cpu_sample());
  EXPECT_TRUE(result.trace.empty());
}

TEST(Trace, OnePointPerTickWithSaneContents) {
  MachineSpec spec;
  spec.record_trace = true;
  spec.model_dram_power = true;
  Machine machine{spec, 4};
  const hw::ConfigSpace space;
  const auto config = space.cpu_sample();
  const auto result = machine.run(mem_kernel(), config);
  ASSERT_FALSE(result.trace.empty());
  // One point per ~1 ms tick.
  EXPECT_NEAR(static_cast<double>(result.trace.size()), result.time_ms,
              2.0);
  double last_t = 0.0;
  for (const auto& point : result.trace) {
    EXPECT_GT(point.t_ms, last_t);
    last_t = point.t_ms;
    EXPECT_GT(point.cpu_w, 0.0);
    EXPECT_GT(point.nbgpu_w, 0.0);
    EXPECT_GT(point.dram_w, 0.0);
    EXPECT_GE(point.temperature_c, machine.spec().thermal.ambient_c - 1.0);
    EXPECT_EQ(point.cpu_pstate, config.cpu_pstate);
    EXPECT_FALSE(point.boosted);
  }
}

TEST(Trace, RecordsGovernorPStateChanges) {
  MachineSpec spec;
  spec.record_trace = true;
  Machine machine{spec, 5};
  const hw::ConfigSpace space;
  auto k = mem_kernel();
  k.work_gflop = 4.0;
  soc::LimiterOptions options;
  options.cap_w = 16.0;  // forces downclocking from the sample config
  options.controlled = hw::Device::Cpu;
  soc::FrequencyLimiter limiter{options};
  const auto result = machine.run(k, space.cpu_sample(), &limiter);
  ASSERT_GT(result.config_switches, 0u);
  EXPECT_GT(result.trace.front().cpu_pstate,
            result.trace.back().cpu_pstate);
}

}  // namespace
}  // namespace acsel::soc
