// Tests for the thermal model and opportunistic overclocking (§VI boost).
#include <gtest/gtest.h>

#include "hw/config_space.h"
#include "soc/machine.h"
#include "soc/thermal.h"
#include "util/error.h"

namespace acsel::soc {
namespace {

KernelCharacteristics hot_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 3.0;
  k.bytes_per_flop = 0.05;
  k.parallel_fraction = 0.99;
  k.vector_fraction = 0.7;
  k.gpu_efficiency = 0.6;
  k.fpu_intensity = 0.9;
  return k;
}

TEST(Thermal, StartsAtAmbient) {
  const ThermalSpec spec;
  const ThermalState state{spec};
  EXPECT_DOUBLE_EQ(state.temperature_c(), spec.ambient_c);
}

TEST(Thermal, ConvergesToSteadyStateTemperature) {
  ThermalSpec spec;
  ThermalState state{spec};
  const double power = 40.0;
  for (int i = 0; i < 20000; ++i) {  // 20 s >> tau
    state.advance(power, 1e-3);
  }
  EXPECT_NEAR(state.temperature_c(),
              spec.ambient_c + spec.r_th_c_per_w * power, 0.01);
}

TEST(Thermal, HeatsWithFirstOrderDynamics) {
  ThermalSpec spec;
  ThermalState state{spec};
  // After one time constant, ~63% of the step is covered.
  const double power = 40.0;
  const double target = spec.ambient_c + spec.r_th_c_per_w * power;
  const int ticks = static_cast<int>(spec.tau_s * 1000.0);
  for (int i = 0; i < ticks; ++i) {
    state.advance(power, 1e-3);
  }
  const double progress =
      (state.temperature_c() - spec.ambient_c) / (target - spec.ambient_c);
  EXPECT_NEAR(progress, 0.632, 0.01);
}

TEST(Thermal, CoolsWhenPowerDrops) {
  ThermalSpec spec;
  ThermalState state{spec};
  for (int i = 0; i < 10000; ++i) {
    state.advance(50.0, 1e-3);
  }
  const double hot = state.temperature_c();
  for (int i = 0; i < 10000; ++i) {
    state.advance(10.0, 1e-3);
  }
  EXPECT_LT(state.temperature_c(), hot);
}

TEST(Thermal, LeakageGrowsWithTemperature) {
  ThermalSpec spec;
  ThermalState state{spec};
  const double cold = state.leakage_factor();
  for (int i = 0; i < 20000; ++i) {
    state.advance(60.0, 1e-3);
  }
  EXPECT_GT(state.leakage_factor(), cold);
  EXPECT_GT(state.leakage_factor(), 1.0);
}

TEST(Thermal, ResetReturnsToAmbient) {
  ThermalSpec spec;
  ThermalState state{spec};
  for (int i = 0; i < 5000; ++i) {
    state.advance(60.0, 1e-3);
  }
  state.reset();
  EXPECT_DOUBLE_EQ(state.temperature_c(), spec.ambient_c);
}

TEST(Thermal, BoostDisabledByDefault) {
  ThermalSpec spec;
  ThermalState state{spec};
  EXPECT_FALSE(state.boost_allowed());
}

TEST(Thermal, BoostHysteresis) {
  ThermalSpec spec;
  spec.enable_boost = true;
  spec.boost_cutoff_c = 78.0;
  spec.boost_hysteresis_c = 3.0;
  ThermalState state{spec};
  EXPECT_TRUE(state.boost_allowed());  // cold: boost available
  // Heat past the cutoff.
  while (state.temperature_c() < 79.0) {
    state.advance(80.0, 1e-3);
  }
  EXPECT_FALSE(state.boost_allowed());
  // Cooling to just below the cutoff is not enough (hysteresis band).
  while (state.temperature_c() > 76.5) {
    state.advance(5.0, 1e-3);
  }
  EXPECT_FALSE(state.boost_allowed());
  // Cooling below cutoff - hysteresis re-arms boost.
  while (state.temperature_c() > 74.5) {
    state.advance(5.0, 1e-3);
  }
  EXPECT_TRUE(state.boost_allowed());
}

TEST(Thermal, AdvanceValidatesInputs) {
  ThermalSpec spec;
  ThermalState state{spec};
  EXPECT_THROW(state.advance(-1.0, 1e-3), Error);
  EXPECT_THROW(state.advance(10.0, 0.0), Error);
}

// ---------------------------------------------------- machine integration --

TEST(MachineThermal, TemperatureRisesDuringHeavyRun) {
  Machine machine;
  const hw::ConfigSpace space;
  auto k = hot_kernel();
  k.work_gflop = 20.0;  // a long, hot run
  const auto result = machine.run(k, space.cpu_sample());
  EXPECT_GT(result.avg_temperature_c, machine.spec().thermal.ambient_c);
  EXPECT_GT(machine.die_temperature_c(), machine.spec().thermal.ambient_c);
}

TEST(MachineThermal, HeatPersistsAcrossRunsUntilReset) {
  Machine machine;
  const hw::ConfigSpace space;
  machine.run(hot_kernel(), space.cpu_sample());
  const double warm = machine.die_temperature_c();
  EXPECT_GT(warm, machine.spec().thermal.ambient_c);
  machine.reset_thermal();
  EXPECT_DOUBLE_EQ(machine.die_temperature_c(),
                   machine.spec().thermal.ambient_c);
}

TEST(MachineThermal, BoostSpeedsUpComputeBoundKernelsWhenCool) {
  MachineSpec boosted_spec;
  boosted_spec.thermal.enable_boost = true;
  boosted_spec.perf_noise_frac = 0.0;
  boosted_spec.power_noise_frac = 0.0;
  MachineSpec plain_spec = boosted_spec;
  plain_spec.thermal.enable_boost = false;

  Machine boosted{boosted_spec, 5};
  Machine plain{plain_spec, 5};
  const hw::ConfigSpace space;
  const auto k = hot_kernel();
  const auto fast = boosted.run(k, space.cpu_sample());
  const auto base = plain.run(k, space.cpu_sample());
  EXPECT_GT(fast.boost_fraction, 0.5);
  EXPECT_EQ(base.boost_fraction, 0.0);
  EXPECT_LT(fast.time_ms, base.time_ms);
  // Boost costs power (higher f and V).
  EXPECT_GT(fast.avg_power_w(), base.avg_power_w());
}

TEST(MachineThermal, BoostOnlyAtTopPState) {
  MachineSpec spec;
  spec.thermal.enable_boost = true;
  Machine machine{spec, 6};
  const hw::ConfigSpace space;
  hw::Configuration mid = space.cpu_sample();
  mid.cpu_pstate = 2;
  const auto result = machine.run(hot_kernel(), mid);
  EXPECT_EQ(result.boost_fraction, 0.0);
}

TEST(MachineThermal, BoostBacksOffWhenDieHeatsUp) {
  MachineSpec spec;
  spec.thermal.enable_boost = true;
  // Aggressive thermals so the run crosses the cutoff quickly.
  spec.thermal.tau_s = 0.05;
  spec.thermal.r_th_c_per_w = 1.2;
  spec.thermal.boost_cutoff_c = 70.0;
  Machine machine{spec, 7};
  const hw::ConfigSpace space;
  auto k = hot_kernel();
  k.work_gflop = 30.0;  // long enough to saturate thermally
  const auto result = machine.run(k, space.cpu_sample());
  EXPECT_GT(result.boost_fraction, 0.0);  // boosted at the cold start
  EXPECT_LT(result.boost_fraction, 0.9);  // but not the whole run
}

TEST(MachineThermal, GpuRunsNeverBoost) {
  MachineSpec spec;
  spec.thermal.enable_boost = true;
  Machine machine{spec, 8};
  const hw::ConfigSpace space;
  const auto result = machine.run(hot_kernel(), space.gpu_sample());
  EXPECT_EQ(result.boost_fraction, 0.0);
}

}  // namespace
}  // namespace acsel::soc
