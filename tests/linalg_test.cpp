// Tests for the dense matrix, Householder QR, and regression wrapper.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/regression.h"
#include "util/error.h"
#include "util/rng.h"

namespace acsel::linalg {
namespace {

// --------------------------------------------------------------- matrix --

TEST(Matrix, ZeroInitialized) {
  Matrix m{2, 3};
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(m(r, c), 0.0);
    }
  }
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(Matrix, OutOfBoundsAccessThrows) {
  Matrix m{2, 2};
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(Matrix, IdentityProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, ProductAgainstHandComputed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  const Matrix a{2, 3};
  const Matrix b{2, 3};
  EXPECT_THROW(a * b, Error);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(a.transposed().transposed(), a);
  EXPECT_EQ(a.transposed()(2, 1), 6.0);
}

TEST(Matrix, AddSubtractScale) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  EXPECT_EQ((a + b)(0, 0), 5.0);
  EXPECT_EQ((a - b)(1, 1), 3.0);
  EXPECT_EQ((2.0 * a)(1, 0), 6.0);
}

TEST(Matrix, ApplyMatchesProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x{1.0, -1.0};
  const auto y = a.apply(x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0], -1.0);
  EXPECT_EQ(y[1], -1.0);
  EXPECT_EQ(y[2], -1.0);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(VectorOps, DotAndNorm) {
  const std::vector<double> a{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm(a), 3.0);
}

TEST(VectorOps, MaxAbsDiff) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.5, 1.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

// ------------------------------------------------------------------- qr --

TEST(Qr, ReconstructsUpperTriangularR) {
  const Matrix a{{12.0, -51.0, 4.0}, {6.0, 167.0, -68.0}, {-4.0, 24.0, -41.0}};
  const QrFactorization qr{a};
  const Matrix r = qr.r();
  for (std::size_t i = 1; i < 3; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(r(i, j), 0.0);
    }
  }
  // |r_ii| should equal the singular structure of the classic example:
  // R diag magnitudes 14, 175, 35.
  EXPECT_NEAR(std::abs(r(0, 0)), 14.0, 1e-9);
  EXPECT_NEAR(std::abs(r(1, 1)), 175.0, 1e-9);
  EXPECT_NEAR(std::abs(r(2, 2)), 35.0, 1e-9);
}

TEST(Qr, SolvesSquareSystemExactly) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> b{3.0, 5.0};
  const auto x = lstsq(a, b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  // Overdetermined: fit y = c0 + c1 t to 4 points.
  const Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  const std::vector<double> b{1.0, 2.9, 5.1, 7.0};
  const auto x = lstsq(a, b);
  // Normal equations by hand: slope = 2.02, intercept = 0.97.
  EXPECT_NEAR(x[0], 0.97, 1e-9);
  EXPECT_NEAR(x[1], 2.02, 1e-9);
}

TEST(Qr, ResidualIsOrthogonalToColumnSpace) {
  Rng rng{123};
  Matrix a{20, 5};
  std::vector<double> b(20);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
    }
    b[i] = rng.uniform(-1.0, 1.0);
  }
  const auto x = lstsq(a, b);
  const auto fitted = a.apply(x);
  std::vector<double> resid(20);
  for (std::size_t i = 0; i < 20; ++i) {
    resid[i] = b[i] - fitted[i];
  }
  // A^T r = 0 for the least-squares residual.
  const Matrix at = a.transposed();
  const auto atr = at.apply(resid);
  for (const double v : atr) {
    EXPECT_NEAR(v, 0.0, 1e-10);
  }
}

TEST(Qr, DetectsRankDeficiency) {
  // Second column is 2x the first.
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const QrFactorization qr{a};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_FALSE(qr.solve(b).has_value());
  EXPECT_THROW(lstsq(a, b), Error);
}

TEST(Qr, RidgeHandlesRankDeficiency) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const std::vector<double> b{1.0, 2.0, 3.0};
  const auto x = lstsq_ridge(a, b, 0.0);  // falls back to small ridge
  // Fitted values should still reproduce b (consistent system).
  const auto fitted = a.apply(x);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(fitted[i], b[i], 1e-5);
  }
}

TEST(Qr, RidgeShrinksCoefficients) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const std::vector<double> b{1.0, 1.0};
  const auto x0 = lstsq_ridge(a, b, 0.0);
  const auto x1 = lstsq_ridge(a, b, 1.0);
  EXPECT_GT(x0[0], x1[0]);
  EXPECT_NEAR(x1[0], 0.5, 1e-12);  // (A^T A + I)^-1 A^T b = 1/2
}

TEST(Qr, RequiresTallMatrix) {
  const Matrix a{1, 2};
  EXPECT_THROW(QrFactorization{a}, Error);
}

TEST(Qr, DiagonalRatioWellConditioned) {
  const QrFactorization qr{Matrix::identity(3)};
  EXPECT_NEAR(qr.diagonal_ratio(), 1.0, 1e-12);
}

// ---------------------------------------------------- property: QR solve --

class QrRandomSystem : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QrRandomSystem, SolveReproducesPlantedSolution) {
  Rng rng{GetParam()};
  const std::size_t n = 2 + rng.uniform_index(8);
  const std::size_t m = n + rng.uniform_index(10);
  Matrix a{m, n};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-2.0, 2.0);
    }
    a(i, i % n) += 3.0;  // keep it comfortably full-rank
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) {
    v = rng.uniform(-5.0, 5.0);
  }
  const auto b = a.apply(x_true);  // consistent RHS
  const auto x = lstsq(a, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrRandomSystem,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

// ------------------------------------------------------------ regression --

TEST(Regression, RecoversLinearRelationship) {
  // y = 3 + 2 a - b, exact.
  Matrix x{6, 2};
  std::vector<double> y(6);
  const double data[6][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {2, 3}};
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = data[i][0];
    x(i, 1) = data[i][1];
    y[i] = 3.0 + 2.0 * data[i][0] - data[i][1];
  }
  const auto model = LinearModel::fit(x, y);
  EXPECT_NEAR(model.intercept(), 3.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.coefficients()[1], -1.0, 1e-6);
  EXPECT_NEAR(model.r_squared(), 1.0, 1e-9);
  EXPECT_NEAR(model.predict(std::vector<double>{4.0, 2.0}), 9.0, 1e-6);
}

TEST(Regression, NoInterceptPassesThroughOrigin) {
  Matrix x{3, 1};
  x(0, 0) = 1.0;
  x(1, 0) = 2.0;
  x(2, 0) = 3.0;
  const std::vector<double> y{2.0, 4.0, 6.0};
  RegressionOptions opts;
  opts.intercept = false;
  const auto model = LinearModel::fit(x, y, opts);
  EXPECT_EQ(model.intercept(), 0.0);
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-6);
  EXPECT_NEAR(model.predict(std::vector<double>{0.0}), 0.0, 1e-12);
}

TEST(Regression, Log1pTransformRoundTrips) {
  // y = exp(a) - 1 exactly linear in transformed space.
  Matrix x{5, 1};
  std::vector<double> y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    const double a = static_cast<double>(i);
    x(i, 0) = a;
    y[i] = std::expm1(0.7 * a + 0.1);
  }
  RegressionOptions opts;
  opts.transform = ResponseTransform::Log1p;
  const auto model = LinearModel::fit(x, y, opts);
  EXPECT_NEAR(model.r_squared(), 1.0, 1e-9);
  EXPECT_NEAR(model.predict(std::vector<double>{2.5}),
              std::expm1(0.7 * 2.5 + 0.1), 1e-6);
}

TEST(Regression, ResidualStddevReflectsNoise) {
  Rng rng{77};
  const std::size_t n = 400;
  Matrix x{n, 1};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 10.0);
    y[i] = 1.0 + 2.0 * x(i, 0) + rng.normal(0.0, 0.5);
  }
  const auto model = LinearModel::fit(x, y);
  EXPECT_NEAR(model.residual_stddev(), 0.5, 0.08);
  EXPECT_EQ(model.training_rows(), n);
}

TEST(Regression, RejectsUnderdeterminedFit) {
  Matrix x{2, 3};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(LinearModel::fit(x, y), Error);
}

TEST(Regression, PredictValidatesFeatureCount) {
  Matrix x{3, 1};
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  const std::vector<double> y{1.0, 2.0, 3.0};
  const auto model = LinearModel::fit(x, y);
  EXPECT_THROW(model.predict(std::vector<double>{1.0, 2.0}), Error);
}

TEST(Regression, SerializeParseRoundTrip) {
  Matrix x{4, 2};
  std::vector<double> y(4);
  const double data[4][2] = {{0, 1}, {1, 2}, {2, 0}, {3, 3}};
  for (std::size_t i = 0; i < 4; ++i) {
    x(i, 0) = data[i][0];
    x(i, 1) = data[i][1];
    y[i] = 0.5 + 1.5 * data[i][0] - 0.25 * data[i][1];
  }
  RegressionOptions opts;
  opts.transform = ResponseTransform::Log1p;
  // Keep responses > -1 for log1p.
  for (auto& v : y) {
    v = std::abs(v);
  }
  const auto model = LinearModel::fit(x, y, opts);
  const auto restored = LinearModel::parse(model.serialize());
  EXPECT_EQ(restored.has_intercept(), model.has_intercept());
  EXPECT_EQ(restored.feature_count(), model.feature_count());
  EXPECT_DOUBLE_EQ(restored.intercept(), model.intercept());
  EXPECT_DOUBLE_EQ(restored.r_squared(), model.r_squared());
  const std::vector<double> probe{1.5, 0.5};
  EXPECT_DOUBLE_EQ(restored.predict(probe), model.predict(probe));
}

// ------------------------------------------------------------- cholesky --

TEST(Cholesky, FactorsAKnownSpdMatrix) {
  // A = L Lᵀ with L = [[2,0,0],[6,1,0],[-8,5,3]].
  const Matrix a{{4.0, 12.0, -16.0},
                 {12.0, 37.0, -43.0},
                 {-16.0, -43.0, 98.0}};
  const CholeskyFactorization chol{a};
  const Matrix& l = chol.l();
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(l(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(l(2, 0), -8.0);
  EXPECT_DOUBLE_EQ(l(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(l(2, 2), 3.0);
  // Strict upper triangle stays zero.
  EXPECT_EQ(l(0, 1), 0.0);
  EXPECT_EQ(l(0, 2), 0.0);
  EXPECT_EQ(l(1, 2), 0.0);
}

TEST(Cholesky, SolveRecoversTheExactSolution) {
  const Matrix a{{4.0, 12.0, -16.0},
                 {12.0, 37.0, -43.0},
                 {-16.0, -43.0, 98.0}};
  const CholeskyFactorization chol{a};
  // b = A x for x = (1, -2, 3).
  const std::vector<double> b{-68.0, -191.0, 364.0};
  const std::vector<double> x = chol.solve(b);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], -2.0, 1e-10);
  EXPECT_NEAR(x[2], 3.0, 1e-10);
}

TEST(Cholesky, SolveLowerIsForwardSubstitutionOnly) {
  const Matrix a{{4.0, 12.0, -16.0},
                 {12.0, 37.0, -43.0},
                 {-16.0, -43.0, 98.0}};
  const CholeskyFactorization chol{a};
  // L y = b with L as above: y0 = 1, y1 = 2 - 6*1 = ... solved by hand.
  const std::vector<double> b{2.0, 7.0, -9.0};
  const std::vector<double> y = chol.solve_lower(b);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[0], 1.0, 1e-12);   // 2 / 2
  EXPECT_NEAR(y[1], 1.0, 1e-12);   // (7 - 6*1) / 1
  EXPECT_NEAR(y[2], -2.0, 1e-12);  // (-9 - (-8*1 + 5*1)) / 3
}

TEST(Cholesky, LogDeterminantMatchesTheFactor) {
  const Matrix a{{4.0, 12.0, -16.0},
                 {12.0, 37.0, -43.0},
                 {-16.0, -43.0, 98.0}};
  const CholeskyFactorization chol{a};
  // det A = (det L)² = (2 * 1 * 3)² = 36.
  EXPECT_NEAR(chol.log_determinant(), std::log(36.0), 1e-12);
}

TEST(Cholesky, RejectsMatricesThatAreNotPositiveDefinite) {
  EXPECT_THROW(CholeskyFactorization{Matrix{{0.0}}}, Error);
  EXPECT_THROW((CholeskyFactorization{Matrix{{1.0, 2.0}, {2.0, 1.0}}}),
               Error);
  EXPECT_THROW((CholeskyFactorization{Matrix{2, 3}}), Error);
}

TEST(Cholesky, RejectsSolveWithWrongSizedRhs) {
  const CholeskyFactorization chol{Matrix{{4.0}}};
  EXPECT_THROW(chol.solve(std::vector<double>{1.0, 2.0}), Error);
}

TEST(Regression, TransformHelpersInverse) {
  for (const double y : {0.0, 0.5, 10.0, 1e6}) {
    EXPECT_NEAR(invert_transform(ResponseTransform::Log1p,
                                 apply_transform(ResponseTransform::Log1p, y)),
                y, 1e-9 * (1.0 + y));
  }
  EXPECT_THROW(apply_transform(ResponseTransform::Log1p, -2.0), Error);
}

}  // namespace
}  // namespace acsel::linalg
