// Tests for the cross-process trace collector: merging rings by
// trace_id, tolerance of out-of-order and partially-missing event sets,
// critical-path selection (quorum semantics: children outliving their
// parent are skipped), and the merged Chrome/Perfetto export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/collector.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace acsel::obs {
namespace {

TraceEvent span_event(const char* name, std::uint64_t trace_id,
                      std::uint64_t span_id, std::uint64_t parent_id,
                      std::uint64_t ts_ns, std::uint64_t dur_ns) {
  TraceEvent event;
  event.name = name;
  event.category = "test";
  event.type = TraceEventType::Complete;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_id = parent_id;
  return event;
}

/// The canonical fleet shape: client -> router fan-out -> three replica
/// slots, one of them rescued by a hedge, one slower than the quorum.
std::vector<TraceEvent> client_events() {
  return {span_event("client.select", 42, 1, 0, 0, 1000)};
}

std::vector<TraceEvent> router_events() {
  return {
      span_event("fleet.fanout", 42, 2, 1, 10, 890),
      span_event("fleet.replica 0/0", 42, 3, 2, 20, 500),
      span_event("fleet.replica 0/1", 42, 4, 2, 20, 880),  // ends with parent
      span_event("fleet.replica 0/2", 42, 5, 2, 20, 2000),  // past the quorum
      span_event("fleet.hedge", 42, 6, 4, 400, 500),  // rescued slot 0/1
  };
}

TEST(Collector, MergesProcessesAndSortsByTime) {
  Collector collector;
  // Ingest the later process first, with its events shuffled: ring order
  // carries no meaning.
  std::vector<TraceEvent> router = router_events();
  std::reverse(router.begin(), router.end());
  collector.ingest(router, "router");
  collector.ingest(client_events(), "client");

  EXPECT_EQ(collector.size(), 6u);
  EXPECT_EQ(collector.trace_ids(), std::vector<std::uint64_t>{42});
  ASSERT_EQ(collector.processes().size(), 2u);
  EXPECT_EQ(collector.processes()[0], "router");

  const MergedTrace trace = collector.assemble(42);
  ASSERT_EQ(trace.events.size(), 6u);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].event.ts_ns, trace.events[i].event.ts_ns);
  }
  EXPECT_EQ(trace.events[trace.root].event.name, "client.select");
  EXPECT_EQ(trace.begin_ns, 0u);
  EXPECT_EQ(trace.end_ns, 2020u);  // the slow slot extends the timeline
  EXPECT_EQ(trace.orphan_spans, 0u);
}

TEST(Collector, CriticalPathSkipsChildrenThatOutliveTheirParent) {
  Collector collector;
  collector.ingest(client_events(), "client");
  collector.ingest(router_events(), "router");
  const MergedTrace trace = collector.assemble(42);
  ASSERT_EQ(trace.critical_path.size(), 4u);
  // client -> fanout -> the quorum-determining slot (0/1, not the slow
  // 0/2 which outlived the fan-out) -> the hedge that finished it.
  EXPECT_EQ(trace.events[trace.critical_path[0]].event.name, "client.select");
  EXPECT_EQ(trace.events[trace.critical_path[1]].event.name, "fleet.fanout");
  EXPECT_EQ(trace.events[trace.critical_path[2]].event.name,
            "fleet.replica 0/1");
  EXPECT_EQ(trace.events[trace.critical_path[3]].event.name, "fleet.hedge");
}

TEST(Collector, PartiallyMissingProcessStillAssembles) {
  // The client's ring was never ingested (lost process): the fan-out
  // references span 1, which no event defines — it becomes an orphan
  // root and the trace assembles from what survived.
  Collector collector;
  collector.ingest(router_events(), "router");
  const MergedTrace trace = collector.assemble(42);
  ASSERT_EQ(trace.events.size(), 5u);
  EXPECT_EQ(trace.orphan_spans, 1u);
  EXPECT_EQ(trace.events[trace.root].event.name, "fleet.fanout");
  ASSERT_EQ(trace.critical_path.size(), 3u);
  EXPECT_EQ(trace.events[trace.critical_path[2]].event.name, "fleet.hedge");
}

TEST(Collector, RootIsTheFurthestExtendingParentlessSpan) {
  Collector collector;
  std::vector<TraceEvent> events{
      span_event("short root", 7, 1, 0, 0, 10),
      span_event("long root", 7, 2, 0, 5, 100),
  };
  collector.ingest(events, "p");
  const MergedTrace trace = collector.assemble(7);
  EXPECT_EQ(trace.events[trace.root].event.name, "long root");
}

TEST(Collector, UnknownTraceIdAssemblesEmpty) {
  Collector collector;
  collector.ingest(client_events(), "client");
  EXPECT_TRUE(collector.assemble(999).empty());
  EXPECT_TRUE(collector.assemble(0).empty());
}

TEST(Collector, IngestsLiveTracersAndNestsByContext) {
  // Two Tracer instances standing in for two processes: the "client"
  // roots a context, the "server" adopts the context the wire would
  // carry and nests a span under it.
  Tracer client_tracer;
  Tracer server_tracer;
  client_tracer.enable();
  server_tracer.enable();

  TraceContext root;
  root.trace_id = 0xdeadbeef;
  root.sampled = true;
  TraceContext handoff;
  {
    const ScopedTraceContext scope{root};
    Span span{client_tracer, "client.select", "client"};
    handoff = span.context();
    {
      const ScopedTraceContext server_scope{handoff};
      Span served{server_tracer, "serve.request", "serve"};
    }
  }

  Collector collector;
  collector.ingest(client_tracer, "client");
  collector.ingest(server_tracer, "server");
  const MergedTrace trace = collector.assemble(0xdeadbeef);
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[trace.root].event.name, "client.select");
  ASSERT_EQ(trace.critical_path.size(), 2u);
  EXPECT_EQ(trace.events[trace.critical_path[1]].event.name, "serve.request");
  EXPECT_EQ(trace.events[trace.critical_path[1]].event.parent_id,
            handoff.span_id);
}

TEST(Collector, ExportIsValidChromeJsonWithProcessTracks) {
  Collector collector;
  collector.ingest(client_events(), "client");
  collector.ingest(router_events(), "router");
  std::ostringstream out;
  collector.write_chrome_trace(out);

  const JsonValue parsed = JsonValue::parse(out.str());
  const JsonValue& events = parsed.at("traceEvents");
  // 2 process_name metadata records + 6 events.
  ASSERT_EQ(events.items().size(), 8u);
  std::size_t metadata = 0;
  std::size_t client_pid_events = 0;
  for (const JsonValue& event : events.items()) {
    if (event.at("ph").as_string() == "M") {
      ++metadata;
      EXPECT_EQ(event.at("name").as_string(), "process_name");
      continue;
    }
    // Distributed-trace ids ride as decimal strings (u64-safe).
    EXPECT_EQ(event.at("args").at("trace_id").as_string(), "42");
    if (event.at("pid").as_number() == 1.0) {
      ++client_pid_events;
    }
  }
  EXPECT_EQ(metadata, 2u);
  EXPECT_EQ(client_pid_events, 1u);  // only client.select came from pid 1
}

}  // namespace
}  // namespace acsel::obs
