// Tests for the online runtime: sample-iteration lifecycle, steady-state
// scheduling, dynamic cap/goal changes, and per-context kernel identity.
#include <gtest/gtest.h>

#include <memory>

#include "core/runtime.h"
#include "core/trainer.h"
#include "eval/characterize.h"
#include "hw/config_space.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::core {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new soc::Machine{soc::MachineSpec{}, 4242};
    suite_ = new workloads::Suite{workloads::Suite::standard()};
    // Train once, without LU, so LU is genuinely unseen for the runtime.
    std::vector<KernelCharacterization> training;
    for (const auto& instance : suite_->instances()) {
      if (instance.benchmark != "LU") {
        training.push_back(
            eval::characterize_instance(*machine_, instance));
      }
    }
    model_ = make_predictor(train(training).model);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete suite_;
    delete machine_;
  }

  static soc::Machine* machine_;
  static workloads::Suite* suite_;
  static PredictorPtr model_;

  OnlineRuntime make_runtime(double cap_w = 30.0) {
    OnlineRuntime::Options options;
    options.power_cap_w = cap_w;
    return OnlineRuntime{*machine_, model_, options};
  }
};

soc::Machine* RuntimeTest::machine_ = nullptr;
workloads::Suite* RuntimeTest::suite_ = nullptr;
PredictorPtr RuntimeTest::model_;

TEST_F(RuntimeTest, FirstTwoInvocationsAreSampleRuns) {
  auto runtime = make_runtime();
  const auto& lu = suite_->instance("LU-Large/lud");
  const KernelKey key{"lud", "main", 20};
  const hw::ConfigSpace space;

  EXPECT_EQ(runtime.phase(key), OnlineRuntime::Phase::Unseen);
  const auto& first = runtime.invoke(key, lu);
  EXPECT_EQ(first.config, space.cpu_sample());
  EXPECT_EQ(runtime.phase(key), OnlineRuntime::Phase::SampledCpu);
  const auto& second = runtime.invoke(key, lu);
  EXPECT_EQ(second.config, space.gpu_sample());
  EXPECT_EQ(runtime.phase(key), OnlineRuntime::Phase::Scheduled);
}

TEST_F(RuntimeTest, SteadyStateUsesTheScheduledConfig) {
  auto runtime = make_runtime();
  const auto& lu = suite_->instance("LU-Large/lud");
  const KernelKey key{"lud", "main", 20};
  runtime.invoke(key, lu);
  runtime.invoke(key, lu);
  const auto scheduled = runtime.scheduled_config(key);
  ASSERT_TRUE(scheduled.has_value());
  for (int i = 0; i < 3; ++i) {
    const auto& record = runtime.invoke(key, lu);
    EXPECT_EQ(record.config, *scheduled);
  }
  ASSERT_NE(runtime.prediction(key), nullptr);
  EXPECT_LT(runtime.prediction(key)->cluster, model_->cluster_count());
}

TEST_F(RuntimeTest, CapChangeReselectsWithoutResampling) {
  auto runtime = make_runtime(45.0);
  const auto& lu = suite_->instance("LU-Large/lud");
  const KernelKey key{"lud", "main", 20};
  runtime.invoke(key, lu);
  runtime.invoke(key, lu);
  const auto generous = runtime.scheduled_config(key);
  ASSERT_TRUE(generous.has_value());

  const std::size_t runs_before = runtime.profiler().size();
  runtime.set_power_cap(14.0);  // only low-power CPU configs fit
  EXPECT_EQ(runtime.profiler().size(), runs_before)
      << "re-selection must not run anything";
  const auto tight = runtime.scheduled_config(key);
  ASSERT_TRUE(tight.has_value());
  EXPECT_NE(*generous, *tight);
  EXPECT_EQ(tight->device, hw::Device::Cpu);
}

TEST_F(RuntimeTest, GoalChangeReselects) {
  auto runtime = make_runtime(1e9);  // uncapped
  const auto& k = suite_->instance("SMC-Default/ChemistryRates");
  const KernelKey key{"ChemistryRates", "", 24};
  runtime.invoke(key, k);
  runtime.invoke(key, k);
  const auto perf_cfg = runtime.scheduled_config(key);
  runtime.set_goal(SchedulingGoal::MinEnergy);
  const auto energy_cfg = runtime.scheduled_config(key);
  ASSERT_TRUE(perf_cfg.has_value() && energy_cfg.has_value());
  // Energy-optimal is cheaper (or equal) in predicted power.
  const auto* prediction = runtime.prediction(key);
  ASSERT_NE(prediction, nullptr);
  const hw::ConfigSpace space;
  const auto index_of = [&](const hw::Configuration& c) {
    return *space.index_of(c);
  };
  EXPECT_LE(prediction->per_config[index_of(*energy_cfg)].power_w,
            prediction->per_config[index_of(*perf_cfg)].power_w + 1e-9);
}

TEST_F(RuntimeTest, DistinctContextsTrackedSeparately) {
  auto runtime = make_runtime();
  const auto& k = suite_->instance("CoMD-LJ/ComputeForce");
  const KernelKey inner{"force", "inner_loop", 22};
  const KernelKey outer{"force", "startup", 22};
  runtime.invoke(inner, k);
  EXPECT_EQ(runtime.phase(inner), OnlineRuntime::Phase::SampledCpu);
  EXPECT_EQ(runtime.phase(outer), OnlineRuntime::Phase::Unseen);
  runtime.invoke(outer, k);
  runtime.invoke(outer, k);
  EXPECT_EQ(runtime.phase(outer), OnlineRuntime::Phase::Scheduled);
  EXPECT_EQ(runtime.phase(inner), OnlineRuntime::Phase::SampledCpu);
  EXPECT_EQ(runtime.tracked_kernels(), 2u);
}

TEST_F(RuntimeTest, DistinctSizeBucketsTrackedSeparately) {
  auto runtime = make_runtime();
  const auto& small = suite_->instance("LU-Small/lud");
  const auto& large = suite_->instance("LU-Large/lud");
  const KernelKey small_key{"lud", "", bucket_for(1u << 20)};
  const KernelKey large_key{"lud", "", bucket_for(1u << 26)};
  EXPECT_NE(small_key, large_key);
  runtime.invoke(small_key, small);
  runtime.invoke(small_key, small);
  runtime.invoke(large_key, large);
  EXPECT_EQ(runtime.phase(small_key), OnlineRuntime::Phase::Scheduled);
  EXPECT_EQ(runtime.phase(large_key), OnlineRuntime::Phase::SampledCpu);
}

TEST_F(RuntimeTest, BucketForIsLog2) {
  EXPECT_EQ(bucket_for(1), 0u);
  EXPECT_EQ(bucket_for(2), 1u);
  EXPECT_EQ(bucket_for(3), 1u);
  EXPECT_EQ(bucket_for(1024), 10u);
  EXPECT_EQ(bucket_for((1u << 20) + 5), 20u);
}

TEST_F(RuntimeTest, KeyStringIsReadable) {
  const KernelKey key{"force", "inner", 22};
  EXPECT_EQ(key.str(), "force@inner#22");
  const KernelKey bare{"force", "", 0};
  EXPECT_EQ(bare.str(), "force#0");
}

TEST_F(RuntimeTest, RejectsNonPositiveCap) {
  auto runtime = make_runtime();
  EXPECT_THROW(runtime.set_power_cap(0.0), Error);
}

TEST_F(RuntimeTest, BehaviourChangeTriggersResampling) {
  // §VI: the runtime should notice when "the same kernel" starts running
  // with a very different input and re-sample it.
  OnlineRuntime::Options options;
  options.power_cap_w = 30.0;
  options.detect_behaviour_change = true;
  OnlineRuntime runtime{*machine_, model_, options};

  const auto& small = suite_->instance("LU-Small/lud");
  const auto& large = suite_->instance("LU-Large/lud");
  const KernelKey key{"lud", "main", 0};  // size not visible to the runtime

  runtime.invoke(key, small);
  runtime.invoke(key, small);
  runtime.invoke(key, small);  // scheduled, matches its prediction
  EXPECT_EQ(runtime.phase(key), OnlineRuntime::Phase::Scheduled);
  EXPECT_EQ(runtime.behaviour_changes_detected(), 0u);

  // The input silently grows 15x: measured times blow past the profile.
  for (int i = 0; i < 4 && runtime.behaviour_changes_detected() == 0;
       ++i) {
    runtime.invoke(key, large);
  }
  EXPECT_EQ(runtime.behaviour_changes_detected(), 1u);
  EXPECT_EQ(runtime.phase(key), OnlineRuntime::Phase::Unseen);
  // The next two invocations re-sample and re-schedule for the new input.
  runtime.invoke(key, large);
  runtime.invoke(key, large);
  EXPECT_EQ(runtime.phase(key), OnlineRuntime::Phase::Scheduled);
}

TEST_F(RuntimeTest, NoFalseBehaviourChangeUnderNoise) {
  OnlineRuntime::Options options;
  options.power_cap_w = 30.0;
  options.detect_behaviour_change = true;
  OnlineRuntime runtime{*machine_, model_, options};
  const auto& kernel = suite_->instance("SMC-Default/DiffusionFluxY");
  const KernelKey key{"DiffusionFluxY", "", 0};
  for (int i = 0; i < 20; ++i) {
    runtime.invoke(key, kernel);
  }
  EXPECT_EQ(runtime.behaviour_changes_detected(), 0u);
  EXPECT_EQ(runtime.phase(key), OnlineRuntime::Phase::Scheduled);
}

}  // namespace
}  // namespace acsel::core
