// The core::Predictor contract, checked against both implementations
// (cluster-cart and gp-sqexp): classification is deterministic and
// consistent with predict(), every estimate carries a finite non-negative
// sigma, serialization round-trips bit-exactly through the type-tagged
// factory, foreign/newer envelopes fail with typed errors, and const
// predict() is safe to call from many threads at once (the serving
// layer's no-lock assumption; this test also runs under TSan in CI).
// Plus closed-form 1-D checks of the GP math itself.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/gp_model.h"
#include "core/model.h"
#include "core/predictor.h"
#include "core/trainer.h"
#include "eval/characterize.h"
#include "linalg/matrix.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::core {
namespace {

struct NamedPredictor {
  const char* name;
  PredictorPtr predictor;
};

class PredictorContractTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 1313};
    const auto suite = workloads::Suite::standard();
    characterizations_ = new std::vector<KernelCharacterization>{};
    for (const auto& instance : suite.instances()) {
      characterizations_->push_back(
          eval::characterize_instance(machine, instance));
      if (characterizations_->size() == 8) {
        break;
      }
    }
    TrainerOptions options;
    options.clusters = 3;
    predictors_ = new std::vector<NamedPredictor>{};
    predictors_->push_back(
        {"cluster-cart",
         train_predictor(*characterizations_, options).predictor});
    options.predictor = PredictorKind::GaussianProcess;
    predictors_->push_back(
        {"gp-sqexp",
         train_predictor(*characterizations_, options).predictor});
  }

  static void TearDownTestSuite() {
    delete predictors_;
    delete characterizations_;
  }

  static std::vector<KernelCharacterization>* characterizations_;
  static std::vector<NamedPredictor>* predictors_;
};

std::vector<KernelCharacterization>*
    PredictorContractTest::characterizations_ = nullptr;
std::vector<NamedPredictor>* PredictorContractTest::predictors_ = nullptr;

TEST_F(PredictorContractTest, KindMatchesFamilyTag) {
  EXPECT_EQ((*predictors_)[0].predictor->kind(), TrainedModel::kKind);
  EXPECT_EQ((*predictors_)[1].predictor->kind(), GpPredictor::kKind);
}

TEST_F(PredictorContractTest, ClassifyIsDeterministicAndMatchesPredict) {
  for (const auto& [name, predictor] : *predictors_) {
    SCOPED_TRACE(name);
    for (const auto& characterization : *characterizations_) {
      const std::size_t cluster = predictor->classify(characterization.samples);
      EXPECT_LT(cluster, predictor->cluster_count());
      EXPECT_EQ(predictor->classify(characterization.samples), cluster);
      EXPECT_EQ(predictor->predict(characterization.samples).cluster, cluster);
    }
  }
}

TEST_F(PredictorContractTest, EstimatesAreFiniteWithNonNegativeSigma) {
  for (const auto& [name, predictor] : *predictors_) {
    SCOPED_TRACE(name);
    for (const auto& characterization : *characterizations_) {
      const Prediction prediction = predictor->predict(characterization.samples);
      ASSERT_EQ(prediction.per_config.size(),
                predictor->config_space().size());
      EXPECT_FALSE(prediction.frontier.empty());
      for (const Estimate& estimate : prediction.per_config) {
        EXPECT_TRUE(std::isfinite(estimate.power_w));
        EXPECT_TRUE(std::isfinite(estimate.performance));
        EXPECT_GT(estimate.power_w, 0.0);
        EXPECT_GT(estimate.performance, 0.0);
        EXPECT_TRUE(std::isfinite(estimate.power_sigma));
        EXPECT_TRUE(std::isfinite(estimate.performance_sigma));
        EXPECT_GE(estimate.power_sigma, 0.0);
        EXPECT_GE(estimate.performance_sigma, 0.0);
      }
    }
  }
}

TEST_F(PredictorContractTest, GpReportsStrictlyPositivePowerSigma) {
  // The GP's raison d'être: a genuine posterior interval everywhere, not
  // a single global residual constant.
  const auto& gp = (*predictors_)[1].predictor;
  const Prediction prediction =
      gp->predict(characterizations_->front().samples);
  for (const Estimate& estimate : prediction.per_config) {
    EXPECT_GT(estimate.power_sigma, 0.0);
  }
}

TEST_F(PredictorContractTest, EnvelopeNamesTheKindAndVersion) {
  for (const auto& [name, predictor] : *predictors_) {
    SCOPED_TRACE(name);
    const std::string text = predictor->serialize();
    const std::string expected =
        "acsel-predictor " + std::string{predictor->kind()} + " v1\n";
    EXPECT_EQ(text.substr(0, expected.size()), expected);
  }
}

TEST_F(PredictorContractTest, RoundTripsBitExactlyThroughTheFactory) {
  for (const auto& [name, predictor] : *predictors_) {
    SCOPED_TRACE(name);
    const std::string text = predictor->serialize();
    const PredictorPtr restored = parse_predictor(text);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->kind(), predictor->kind());
    EXPECT_EQ(restored->cluster_count(), predictor->cluster_count());
    // Same bytes out...
    EXPECT_EQ(restored->serialize(), text);
    // ...and bit-identical predictions on every configuration.
    for (const auto& characterization : *characterizations_) {
      const Prediction original = predictor->predict(characterization.samples);
      const Prediction parsed = restored->predict(characterization.samples);
      ASSERT_EQ(parsed.per_config.size(), original.per_config.size());
      EXPECT_EQ(parsed.cluster, original.cluster);
      for (std::size_t i = 0; i < original.per_config.size(); ++i) {
        EXPECT_EQ(parsed.per_config[i].power_w,
                  original.per_config[i].power_w);
        EXPECT_EQ(parsed.per_config[i].performance,
                  original.per_config[i].performance);
        EXPECT_EQ(parsed.per_config[i].power_sigma,
                  original.per_config[i].power_sigma);
        EXPECT_EQ(parsed.per_config[i].performance_sigma,
                  original.per_config[i].performance_sigma);
      }
    }
  }
}

TEST_F(PredictorContractTest, LegacyModelHeaderStillParses) {
  // Pre-envelope files ("acsel-model v1") must keep loading as
  // cluster-cart v1 — the on-disk fleet does not retrain on upgrade.
  const auto& cart = (*predictors_)[0].predictor;
  const std::string text = cart->serialize();
  const std::string body = text.substr(text.find('\n') + 1);
  const PredictorPtr restored = parse_predictor("acsel-model v1\n" + body);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->kind(), TrainedModel::kKind);
  EXPECT_EQ(restored->serialize(), text);
}

TEST_F(PredictorContractTest, UnknownKindIsATypedRejection) {
  const auto& cart = (*predictors_)[0].predictor;
  const std::string text = cart->serialize();
  const std::string body = text.substr(text.find('\n') + 1);
  try {
    parse_predictor("acsel-predictor neural-tangent v1\n" + body);
    FAIL() << "unknown kind must not parse";
  } catch (const UnknownPredictorKindError& error) {
    EXPECT_EQ(error.predictor_kind(), "neural-tangent");
  }
}

TEST_F(PredictorContractTest, NewerVersionIsATypedRejection) {
  const auto& cart = (*predictors_)[0].predictor;
  const std::string text = cart->serialize();
  const std::string body = text.substr(text.find('\n') + 1);
  EXPECT_THROW(parse_predictor("acsel-predictor cluster-cart v2\n" + body),
               UnsupportedPredictorVersionError);
  EXPECT_THROW(parse_predictor("acsel-predictor gp-sqexp v7\n" + body),
               UnsupportedPredictorVersionError);
}

TEST_F(PredictorContractTest, MalformedEnvelopesAreTypedRejections) {
  EXPECT_THROW(parse_predictor(""), PredictorFormatError);
  EXPECT_THROW(parse_predictor("acsel-predictor\n"), PredictorFormatError);
  EXPECT_THROW(parse_predictor("acsel-predictor cluster-cart\n"),
               PredictorFormatError);
  EXPECT_THROW(parse_predictor("acsel-predictor cluster-cart one\n"),
               PredictorFormatError);
  EXPECT_THROW(parse_predictor("acsel-predictor cluster-cart v0\n"),
               PredictorFormatError);
  EXPECT_THROW(parse_predictor("not-a-predictor at all\n"),
               PredictorFormatError);
  // All typed rejections stay catchable as plain acsel::Error, so
  // pre-existing transport catch sites keep working.
  EXPECT_THROW(parse_predictor("acsel-predictor x v1\n"), Error);
}

TEST_F(PredictorContractTest, ConcurrentPredictMatchesSerial) {
  // The serving contract: one shared immutable model, many threads, no
  // locks. Every thread must see exactly the serial answers.
  for (const auto& [name, predictor] : *predictors_) {
    SCOPED_TRACE(name);
    std::vector<Prediction> serial;
    for (const auto& characterization : *characterizations_) {
      serial.push_back(predictor->predict(characterization.samples));
    }
    constexpr int kThreads = 4;
    std::vector<int> mismatches(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t k = 0; k < characterizations_->size(); ++k) {
          const Prediction p =
              predictor->predict((*characterizations_)[k].samples);
          if (p.cluster != serial[k].cluster ||
              p.per_config.size() != serial[k].per_config.size()) {
            ++mismatches[t];
            continue;
          }
          for (std::size_t i = 0; i < p.per_config.size(); ++i) {
            if (p.per_config[i].power_w != serial[k].per_config[i].power_w ||
                p.per_config[i].power_sigma !=
                    serial[k].per_config[i].power_sigma) {
              ++mismatches[t];
            }
          }
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(mismatches[t], 0) << "thread " << t;
    }
  }
}

// ------------------------------------------------ GP math, closed form --

TEST(GpRegressor, SinglePointPosteriorMatchesClosedForm) {
  // One training point x=0, y=2 under a constant-mean prior (the target
  // mean, here exactly 2): the posterior mean is flat at 2, and the
  // predictive variance is s² + nv - k(t,0)² / (s² + nv).
  linalg::Matrix x{1, 1};
  x(0, 0) = 0.0;
  const std::vector<double> y{2.0};
  GpHyperparams hp;
  hp.length_scale = 1.0;
  hp.signal_variance = 1.0;
  hp.noise_fraction = 0.25;  // nv = 0.25
  const GpRegressor gp = GpRegressor::fit(x, y, hp);
  ASSERT_EQ(gp.training_rows(), 1u);
  EXPECT_DOUBLE_EQ(gp.noise_variance(), 0.25);
  for (const double t : {0.0, 0.5, 1.0, 3.0}) {
    const auto posterior = gp.predict(std::vector<double>{t});
    EXPECT_NEAR(posterior.mean, 2.0, 1e-12) << "t=" << t;
    const double k = std::exp(-t * t / 2.0);
    const double expected_var = 1.0 + 0.25 - k * k / 1.25;
    EXPECT_NEAR(posterior.variance, expected_var, 1e-12) << "t=" << t;
  }
}

TEST(GpRegressor, TwoPointPosteriorMatchesHandInvertedKernel) {
  // Two 1-D points; the 2x2 system (K + nv I) alpha = y - mean is
  // invertible by hand, so mean and variance have closed forms.
  linalg::Matrix x{2, 1};
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  const std::vector<double> y{1.0, 3.0};
  GpHyperparams hp;
  hp.length_scale = 1.0;
  hp.signal_variance = 2.0;
  hp.noise_fraction = 0.05;  // nv = 0.1
  const GpRegressor gp = GpRegressor::fit(x, y, hp);

  const double s2 = 2.0, nv = 0.1;
  const double k01 = s2 * std::exp(-0.5);  // k(0,1)
  const double d = s2 + nv;                // diagonal entries
  const double det = d * d - k01 * k01;
  // alpha = (K + nv I)^-1 (y - ybar), ybar = 2.
  const double r0 = -1.0, r1 = 1.0;
  const double a0 = (d * r0 - k01 * r1) / det;
  const double a1 = (-k01 * r0 + d * r1) / det;

  for (const double t : {0.25, 0.75, 2.0}) {
    const double k0 = s2 * std::exp(-t * t / 2.0);
    const double k1 = s2 * std::exp(-(t - 1.0) * (t - 1.0) / 2.0);
    const double expected_mean = 2.0 + k0 * a0 + k1 * a1;
    // kᵀ (K + nv I)^-1 k via the same hand inverse.
    const double q0 = (d * k0 - k01 * k1) / det;
    const double q1 = (-k01 * k0 + d * k1) / det;
    const double expected_var = s2 + nv - (k0 * q0 + k1 * q1);
    const auto posterior = gp.predict(std::vector<double>{t});
    EXPECT_NEAR(posterior.mean, expected_mean, 1e-12) << "t=" << t;
    EXPECT_NEAR(posterior.variance, expected_var, 1e-12) << "t=" << t;
  }
}

TEST(GpRegressor, NearNoiselessGpInterpolatesItsTrainingPoints) {
  linalg::Matrix x{3, 1};
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 2.5;
  const std::vector<double> y{1.0, -0.5, 4.0};
  GpHyperparams hp;
  hp.length_scale = 1.0;
  hp.signal_variance = 4.0;
  hp.noise_fraction = 1e-9;
  const GpRegressor gp = GpRegressor::fit(x, y, hp);
  for (std::size_t i = 0; i < y.size(); ++i) {
    const auto posterior = gp.predict(std::vector<double>{x(i, 0)});
    EXPECT_NEAR(posterior.mean, y[i], 1e-6);
    // At a training point nearly all variance is explained away.
    EXPECT_LT(posterior.variance, 1e-4);
  }
}

TEST(GpRegressor, VarianceGrowsAwayFromTheTrainingData) {
  linalg::Matrix x{2, 1};
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  const std::vector<double> y{0.0, 1.0};
  GpHyperparams hp;
  hp.length_scale = 0.5;
  hp.signal_variance = 1.0;
  const GpRegressor gp = GpRegressor::fit(x, y, hp);
  const double near = gp.predict(std::vector<double>{0.5}).variance;
  const double far = gp.predict(std::vector<double>{5.0}).variance;
  EXPECT_LT(near, far);
  // Far from all data the posterior reverts to prior + noise.
  EXPECT_NEAR(far, gp.signal_variance() + gp.noise_variance(), 1e-9);
}

TEST(GpRegressor, ResolvesHyperparametersFromDataWhenUnset) {
  linalg::Matrix x{4, 1};
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 2.0;
  x(3, 0) = 3.0;
  const std::vector<double> y{0.0, 2.0, 1.0, 3.0};
  const GpRegressor gp = GpRegressor::fit(x, y);  // all defaults: resolve
  EXPECT_GT(gp.length_scale(), 0.0);
  EXPECT_GT(gp.signal_variance(), 0.0);
  EXPECT_GT(gp.noise_variance(), 0.0);
}

TEST(GpRegressor, SerializeParseRoundTripsBitExactly) {
  linalg::Matrix x{3, 2};
  x(0, 0) = 0.1;
  x(0, 1) = -1.7;
  x(1, 0) = 2.3;
  x(1, 1) = 0.9;
  x(2, 0) = -0.4;
  x(2, 1) = 1.0 / 3.0;
  const std::vector<double> y{1.0 / 7.0, -2.5, 3.25};
  const GpRegressor gp = GpRegressor::fit(x, y);
  const GpRegressor restored = GpRegressor::parse(gp.serialize());
  EXPECT_EQ(restored.serialize(), gp.serialize());
  for (const auto& point : {std::vector<double>{0.0, 0.0},
                            std::vector<double>{1.5, -0.5}}) {
    const auto a = gp.predict(point);
    const auto b = restored.predict(point);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.variance, b.variance);
  }
}

TEST(GpRegressor, SubsamplesDeterministicallyBeyondMaxRows) {
  constexpr std::size_t n = 40;
  linalg::Matrix x{n, 1};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i % 5);
  }
  const GpRegressor a = GpRegressor::fit(x, y, {}, 16);
  const GpRegressor b = GpRegressor::fit(x, y, {}, 16);
  EXPECT_LE(a.training_rows(), 16u);
  EXPECT_EQ(a.serialize(), b.serialize());
}

}  // namespace
}  // namespace acsel::core
