// Tests for the hybrid co-execution model and the §III-A efficiency
// argument it supports.
#include <gtest/gtest.h>

#include "eval/oracle.h"
#include "hw/config_space.h"
#include "soc/hybrid.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::soc {
namespace {

const MachineSpec kSpec{};

KernelCharacteristics balanced_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 1.5;
  k.bytes_per_flop = 0.3;
  k.parallel_fraction = 0.97;
  k.vector_fraction = 0.4;
  k.gpu_efficiency = 0.45;
  k.launch_overhead_ms = 0.5;
  k.cache_locality = 0.5;
  return k;
}

TEST(Hybrid, ZeroFractionMatchesCpuOnly) {
  const auto k = balanced_kernel();
  const auto hybrid = evaluate_hybrid(kSpec, k, 0.0);
  hw::Configuration cpu;
  cpu.device = hw::Device::Cpu;
  cpu.cpu_pstate = hw::kCpuMaxPState;
  cpu.threads = hw::kCpuCores;
  const auto single = evaluate_steady_state(kSpec, k, cpu);
  EXPECT_NEAR(hybrid.time_ms, single.time_ms, 1e-9);
  EXPECT_NEAR(hybrid.total_power_w(), single.total_power_w(), 1e-9);
}

TEST(Hybrid, FullFractionMatchesGpuForParallelPart) {
  auto k = balanced_kernel();
  k.parallel_fraction = 1.0;  // no serial residue on the CPU
  const auto hybrid = evaluate_hybrid(kSpec, k, 1.0);
  hw::Configuration gpu;
  gpu.device = hw::Device::Gpu;
  gpu.cpu_pstate = hw::kCpuMaxPState;
  gpu.gpu_pstate = hw::kGpuMaxPState;
  const auto single = evaluate_steady_state(kSpec, k, gpu);
  EXPECT_NEAR(hybrid.time_ms, single.time_ms, 1e-9);
  EXPECT_NEAR(hybrid.total_power_w(), single.total_power_w(), 1e-9);
}

TEST(Hybrid, TrueHybridPaysMergeOverhead) {
  const auto k = balanced_kernel();
  HybridOptions options;
  options.merge_overhead_ms = 5.0;
  const auto cheap = evaluate_hybrid(kSpec, k, 0.5);
  const auto costly = evaluate_hybrid(kSpec, k, 0.5, options);
  EXPECT_NEAR(costly.time_ms - cheap.time_ms, 5.0 - 0.4, 1e-9);
}

TEST(Hybrid, BothDevicesPoweredCostsMoreThanEitherAlone) {
  const auto k = balanced_kernel();
  const auto cpu_only = evaluate_hybrid(kSpec, k, 0.0);
  const auto gpu_only = evaluate_hybrid(kSpec, k, 1.0);
  const auto split = evaluate_hybrid(kSpec, k, 0.5);
  EXPECT_GT(split.total_power_w(),
            std::min(cpu_only.total_power_w(), gpu_only.total_power_w()));
}

TEST(Hybrid, ImbalanceReportsSkewedSplits) {
  const auto k = balanced_kernel();
  // Almost everything on the CPU: the GPU finishes long before the CPU.
  const auto skewed = evaluate_hybrid(kSpec, k, 0.05);
  EXPECT_GT(skewed.imbalance, 0.5);
}

TEST(Hybrid, SomeBalancedSplitBeatsSkewedOnes) {
  const auto k = balanced_kernel();
  double best_mid = 0.0;
  for (int pct = 20; pct <= 80; pct += 10) {
    best_mid = std::max(
        best_mid, evaluate_hybrid(kSpec, k, pct / 100.0).performance());
  }
  EXPECT_GT(best_mid, evaluate_hybrid(kSpec, k, 0.05).performance());
}

TEST(Hybrid, RejectsBadInputs) {
  const auto k = balanced_kernel();
  EXPECT_THROW(evaluate_hybrid(kSpec, k, -0.1), Error);
  EXPECT_THROW(evaluate_hybrid(kSpec, k, 1.1), Error);
  HybridOptions bad;
  bad.threads = 5;
  EXPECT_THROW(evaluate_hybrid(kSpec, k, 0.5, bad), Error);
}

TEST(Hybrid, PaperClaimHybridNeverBeatsBestSingleOnEfficiency) {
  // §III-A: "it will strictly lower power-efficiency compared to the best
  // single device". Check across the application suite.
  Machine machine{MachineSpec{}, 3131};
  const auto suite = workloads::Suite::standard();
  const hw::ConfigSpace space;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < suite.size(); i += 7) {  // sample the suite
    const auto& instance = suite.instances()[i];
    // Best single-device efficiency over the whole configuration space.
    double best_single_eff = 0.0;
    for (const auto& config : space.all()) {
      const auto s = machine.analytic(instance.traits, config);
      best_single_eff =
          std::max(best_single_eff, s.performance() / s.total_power_w());
    }
    for (int pct = 10; pct <= 90; pct += 20) {
      const auto hybrid =
          evaluate_hybrid(machine.spec(), instance.traits, pct / 100.0);
      EXPECT_LT(hybrid.performance_per_watt(), best_single_eff)
          << instance.id() << " at " << pct << "%";
    }
    ++checked;
  }
  EXPECT_GE(checked, 9u);
}

TEST(Hybrid, PaperClaimSpeedupBoundedByTwo) {
  // §III-A: "In the best possible case, hybrid execution will increase
  // performance by a factor of two over the best single device."
  Machine machine{MachineSpec{}, 3232};
  const auto suite = workloads::Suite::standard();
  const hw::ConfigSpace space;
  for (std::size_t i = 0; i < suite.size(); i += 9) {
    const auto& instance = suite.instances()[i];
    double best_single = 0.0;
    for (const auto& config : space.all()) {
      best_single = std::max(
          best_single,
          machine.analytic(instance.traits, config).performance());
    }
    for (int pct = 0; pct <= 100; pct += 10) {
      const auto hybrid =
          evaluate_hybrid(machine.spec(), instance.traits, pct / 100.0);
      EXPECT_LT(hybrid.performance(), 2.0 * best_single)
          << instance.id() << " at " << pct << "%";
    }
  }
}

}  // namespace
}  // namespace acsel::soc
