// Machine-zoo tests: the catalog must be a pure function of its seed
// (bit-identical specs and fingerprints across catalogs and threads),
// fingerprints must separate the architecture classes while ignoring
// observation-only spec fields, and the big.LITTLE extension must change
// nothing while disabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "hw/config_space.h"
#include "soc/perf_model.h"
#include "soc/power_model.h"
#include "util/error.h"
#include "zoo/archetype.h"
#include "zoo/fingerprint.h"

namespace acsel::zoo {
namespace {

using hw::CoreMapping;
using hw::Device;

hw::Configuration cpu_config(std::size_t pstate, int threads,
                             CoreMapping mapping = CoreMapping::Compact) {
  hw::Configuration c;
  c.device = Device::Cpu;
  c.cpu_pstate = pstate;
  c.threads = threads;
  c.mapping = mapping;
  return c;
}

soc::KernelCharacteristics parallel_kernel() {
  soc::KernelCharacteristics k;
  k.work_gflop = 2.0;
  k.bytes_per_flop = 0.05;
  k.parallel_fraction = 0.99;
  k.vector_fraction = 0.7;
  k.branch_divergence = 0.05;
  k.gpu_efficiency = 0.7;
  k.launch_overhead_ms = 0.4;
  k.cache_locality = 0.8;
  return k;
}

// ------------------------------------------------------------ catalog ---

TEST(Zoo, NamesRoundTripThroughArchetypeFromString) {
  for (const Archetype archetype : all_archetypes()) {
    EXPECT_EQ(archetype_from_string(to_string(archetype)), archetype);
  }
  EXPECT_THROW(archetype_from_string("cray-1"), Error);
  EXPECT_THROW(archetype_from_string(""), Error);
}

TEST(Zoo, OneSeedGeneratesBitIdenticalSpecs) {
  const ArchetypeCatalog a{90210};
  const ArchetypeCatalog b{90210};
  for (const Archetype archetype : all_archetypes()) {
    EXPECT_EQ(canonical_spec_bytes(a.spec(archetype)),
              canonical_spec_bytes(b.spec(archetype)))
        << to_string(archetype);
    EXPECT_EQ(fingerprint_of(a.spec(archetype)).hash,
              fingerprint_of(b.spec(archetype)).hash)
        << to_string(archetype);
  }
}

TEST(Zoo, SpecsAreBitIdenticalAcrossThreads) {
  // The jitter must not depend on evaluation order or shared state: N
  // threads hammering one catalog see the same bytes a cold catalog
  // computes serially.
  const ArchetypeCatalog catalog{7};
  std::vector<std::vector<std::uint8_t>> expected;
  for (const Archetype archetype : all_archetypes()) {
    expected.push_back(canonical_spec_bytes(catalog.spec(archetype)));
  }
  std::vector<std::thread> threads;
  std::vector<bool> identical(8, false);
  for (std::size_t t = 0; t < identical.size(); ++t) {
    threads.emplace_back([&, t] {
      const ArchetypeCatalog local{7};
      bool ok = true;
      for (int repeat = 0; repeat < 16; ++repeat) {
        for (std::size_t i = 0; i < kArchetypeCount; ++i) {
          const Archetype archetype = all_archetypes()[i];
          ok = ok && canonical_spec_bytes(local.spec(archetype)) ==
                         expected[i] &&
               canonical_spec_bytes(catalog.spec(archetype)) == expected[i];
        }
      }
      identical[t] = ok;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (std::size_t t = 0; t < identical.size(); ++t) {
    EXPECT_TRUE(identical[t]) << "thread " << t;
  }
}

TEST(Zoo, DifferentSeedsJitterTheSpec) {
  const ArchetypeCatalog a{1};
  const ArchetypeCatalog b{2};
  for (const Archetype archetype : all_archetypes()) {
    EXPECT_NE(fingerprint_of(a.spec(archetype)).hash,
              fingerprint_of(b.spec(archetype)).hash)
        << to_string(archetype);
  }
}

TEST(Zoo, JitterStaysWithinThreePercentOfBase) {
  const ArchetypeCatalog catalog{90210};
  for (const Archetype archetype : all_archetypes()) {
    const soc::MachineSpec base = ArchetypeCatalog::base_spec(archetype);
    const soc::MachineSpec jittered = catalog.spec(archetype);
    const struct {
      double base, jittered;
    } rows[] = {
        {base.base_power_w, jittered.base_power_w},
        {base.cpu_core_dyn_w, jittered.cpu_core_dyn_w},
        {base.gpu_dyn_w, jittered.gpu_dyn_w},
        {base.dram_bw_gbs, jittered.dram_bw_gbs},
        {base.cpu_scalar_flops_per_cycle,
         jittered.cpu_scalar_flops_per_cycle},
    };
    for (const auto& row : rows) {
      EXPECT_GE(row.jittered, row.base * 0.97) << to_string(archetype);
      EXPECT_LE(row.jittered, row.base * 1.03) << to_string(archetype);
    }
  }
}

TEST(Zoo, ArchetypesAreDistinctArchitectures) {
  const ArchetypeCatalog catalog{90210};
  std::vector<std::uint64_t> hashes;
  for (const Archetype archetype : all_archetypes()) {
    hashes.push_back(fingerprint_of(catalog.spec(archetype)).hash);
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << i << " vs " << j;
    }
  }
}

TEST(Zoo, TrinityBaseSpecIsTheMachineSpecDefault) {
  EXPECT_EQ(canonical_spec_bytes(ArchetypeCatalog::base_spec(
                Archetype::Trinity)),
            canonical_spec_bytes(soc::MachineSpec{}));
}

TEST(Zoo, CalibrationVariantsStartFromTheBaseline) {
  const std::vector<NamedSpec> variants =
      ArchetypeCatalog::calibration_variants();
  ASSERT_GE(variants.size(), 5u);
  EXPECT_EQ(variants[0].name, "baseline");
  EXPECT_EQ(canonical_spec_bytes(variants[0].spec),
            canonical_spec_bytes(soc::MachineSpec{}));
  for (const NamedSpec& variant : variants) {
    EXPECT_FALSE(variant.name.empty());
  }
}

// -------------------------------------------------------- fingerprint ---

TEST(Zoo, FingerprintIgnoresObservationOnlyFields) {
  // Measurement noise, sensor guards and thermal boost describe how a
  // machine is observed, not what it is — a model transfers across them,
  // so they must not change the architecture's identity.
  soc::MachineSpec spec;
  const std::uint64_t hash = fingerprint_of(spec).hash;
  spec.power_noise_frac *= 3.0;
  spec.guard_median_window += 2;
  spec.thermal.enable_boost = !spec.thermal.enable_boost;
  EXPECT_EQ(canonical_spec_bytes(spec), canonical_spec_bytes({}));
  EXPECT_EQ(fingerprint_of(spec).hash, hash);
}

TEST(Zoo, FingerprintTracksCalibrationCoefficients) {
  soc::MachineSpec spec;
  const std::uint64_t hash = fingerprint_of(spec).hash;
  spec.gpu_dyn_w *= 1.01;
  EXPECT_NE(fingerprint_of(spec).hash, hash);
}

TEST(Zoo, FingerprintHashIsNeverZero) {
  for (const Archetype archetype : all_archetypes()) {
    EXPECT_NE(fingerprint_of(ArchetypeCatalog::base_spec(archetype)).hash,
              0u);
  }
}

TEST(Zoo, DescriptorDistanceIsAMetricShape) {
  const ArchetypeCatalog catalog{90210};
  const HardwareFingerprint trinity =
      fingerprint_of(catalog.spec(Archetype::Trinity));
  const HardwareFingerprint edge =
      fingerprint_of(catalog.spec(Archetype::Edge));
  const HardwareFingerprint hpc =
      fingerprint_of(catalog.spec(Archetype::HpcGpu));
  EXPECT_EQ(trinity.distance_to(trinity), 0.0);
  EXPECT_GT(trinity.distance_to(edge), 0.0);
  EXPECT_NEAR(trinity.distance_to(edge), edge.distance_to(trinity), 1e-12);
  // The HPC node's power envelope sits much farther from the edge class
  // than the Trinity does — the fallback ordering the registry relies on.
  EXPECT_GT(hpc.distance_to(edge), trinity.distance_to(edge));
}

// ---------------------------------------------------------- big.LITTLE --

TEST(Zoo, DisabledAsymmetryChangesNothing) {
  // The knobs may hold any values: while `enabled` is false the perf and
  // power planes must be bit-identical to the pre-zoo model.
  const auto k = parallel_kernel();
  soc::MachineSpec modified;
  modified.asymmetric.little_perf_scale = 0.01;
  modified.asymmetric.little_power_scale = 9.0;
  modified.asymmetric.migration_cost_ms = 99.0;
  for (int threads = 1; threads <= 4; ++threads) {
    for (const CoreMapping mapping :
         {CoreMapping::Compact, CoreMapping::Scatter}) {
      if (mapping == CoreMapping::Scatter && (threads < 2 || threads > 3)) {
        continue;  // canonicalized to compact when physically indistinct
      }
      const auto config = cpu_config(3, threads, mapping);
      const auto a = evaluate_steady_state(soc::MachineSpec{}, k, config);
      const auto b = evaluate_steady_state(modified, k, config);
      EXPECT_EQ(a.time_ms, b.time_ms);
      EXPECT_EQ(a.cpu_power_w, b.cpu_power_w);
      EXPECT_EQ(a.nbgpu_power_w, b.nbgpu_power_w);
    }
  }
}

TEST(Zoo, LittleClusterTradesPerformanceForPower) {
  // Four threads span both clusters: the asymmetric machine must be
  // slower (LITTLE cores retire less) and draw less CPU power (they are
  // cheaper) than its symmetric twin.
  const auto k = parallel_kernel();
  soc::MachineSpec biglittle;
  biglittle.asymmetric.enabled = true;
  const auto config = cpu_config(3, 4);
  const auto symmetric =
      evaluate_steady_state(soc::MachineSpec{}, k, config);
  const auto asymmetric = evaluate_steady_state(biglittle, k, config);
  EXPECT_GT(asymmetric.time_ms, symmetric.time_ms);
  EXPECT_LT(asymmetric.cpu_power_w, symmetric.cpu_power_w);
}

TEST(Zoo, CompactSingleThreadStaysOnTheBigCluster) {
  // One compact thread never leaves module 0, so the asymmetric spec is
  // invisible to it; a scatter pair already spans the bridge.
  EXPECT_EQ(soc::asymmetric_little_threads(cpu_config(3, 1)), 0);
  EXPECT_EQ(soc::asymmetric_little_threads(cpu_config(3, 2)), 0);
  EXPECT_EQ(soc::asymmetric_little_threads(cpu_config(3, 3)), 1);
  EXPECT_EQ(soc::asymmetric_little_threads(cpu_config(3, 4)), 2);
  EXPECT_EQ(soc::asymmetric_little_threads(
                cpu_config(3, 2, CoreMapping::Scatter)),
            1);
  const auto k = parallel_kernel();
  soc::MachineSpec biglittle;
  biglittle.asymmetric.enabled = true;
  const auto config = cpu_config(3, 1);
  const auto symmetric =
      evaluate_steady_state(soc::MachineSpec{}, k, config);
  const auto asymmetric = evaluate_steady_state(biglittle, k, config);
  EXPECT_EQ(asymmetric.time_ms, symmetric.time_ms);
  EXPECT_EQ(asymmetric.cpu_power_w, symmetric.cpu_power_w);
}

TEST(Zoo, MigrationCostPenalizesSpanningKernels) {
  const auto k = parallel_kernel();
  soc::MachineSpec cheap;
  cheap.asymmetric.enabled = true;
  cheap.asymmetric.migration_cost_ms = 0.0;
  soc::MachineSpec expensive = cheap;
  expensive.asymmetric.migration_cost_ms = 1.0;
  const auto config = cpu_config(3, 4);  // spans both clusters
  EXPECT_GT(evaluate_steady_state(expensive, k, config).time_ms,
            evaluate_steady_state(cheap, k, config).time_ms);
}

}  // namespace
}  // namespace acsel::zoo
