// Wire-codec tests: encode/decode round-trips and table-driven rejection
// of malformed frames — no sockets involved, the codec is pure bytes.
// Also the text-format side of forward compatibility: the registry's
// publish_file path must reject foreign or newer predictor envelopes with
// typed errors instead of publishing garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "hw/config_space.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/codec.h"
#include "serve/registry.h"

namespace acsel::serve {
namespace {

profile::KernelRecord make_record(const hw::Configuration& config,
                                  double seed) {
  profile::KernelRecord record;
  record.benchmark = "LULESH";
  record.input = "Large";
  record.kernel = "CalcFBHourglassForce";
  record.config = config;
  record.time_ms = 1.25 * seed;
  record.cpu_power_w = 13.5 + seed;
  record.nbgpu_power_w = 9.75 + seed;
  record.energy_j = 0.03125 * seed;
  record.counters.instructions = 1e9 * seed;
  record.counters.l1d_misses = 3e6 * seed;
  record.counters.l2d_misses = 7e5 * seed;
  record.counters.tlb_misses = 1.5e4 * seed;
  record.counters.branches = 2e8 * seed;
  record.counters.vector_insts = 4e7 * seed;
  record.counters.stalled_cycles = 6e8 * seed;
  record.counters.core_cycles = 3.7e9 * seed;
  record.counters.reference_cycles = 3.7e9 * seed;
  record.counters.idle_fpu_cycles = 1e8 * seed;
  record.counters.interrupts = 123.0 * seed;
  record.counters.dram_accesses = 5e6 * seed;
  return record;
}

SelectRequest make_request() {
  const hw::ConfigSpace space;
  SelectRequest request;
  request.request_id = 0xfeedfacecafebeefULL;
  request.model_version = 7;
  request.goal = core::SchedulingGoal::MinEnergy;
  request.cap_w = 27.25;
  request.samples.cpu = make_record(space.cpu_sample(), 1.0);
  request.samples.gpu = make_record(space.gpu_sample(), 2.0);
  return request;
}

TEST(ServeCodec, RequestRoundTrip) {
  const SelectRequest request = make_request();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);

  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.type, MessageType::SelectRequest);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());

  const SelectRequest& out = decoded.request;
  EXPECT_EQ(out.request_id, request.request_id);
  EXPECT_EQ(out.model_version, request.model_version);
  EXPECT_EQ(out.goal, request.goal);
  ASSERT_TRUE(out.cap_w.has_value());
  EXPECT_EQ(*out.cap_w, *request.cap_w);  // bit-exact by construction
  EXPECT_EQ(out.samples.cpu.benchmark, request.samples.cpu.benchmark);
  EXPECT_EQ(out.samples.cpu.kernel, request.samples.cpu.kernel);
  EXPECT_EQ(out.samples.cpu.config, request.samples.cpu.config);
  EXPECT_EQ(out.samples.gpu.config, request.samples.gpu.config);
  EXPECT_EQ(out.samples.cpu.time_ms, request.samples.cpu.time_ms);
  EXPECT_EQ(out.samples.gpu.cpu_power_w, request.samples.gpu.cpu_power_w);
  EXPECT_EQ(out.samples.cpu.counters.dram_accesses,
            request.samples.cpu.counters.dram_accesses);
  EXPECT_EQ(out.samples.gpu.counters.instructions,
            request.samples.gpu.counters.instructions);
}

TEST(ServeCodec, RequestWithoutCapRoundTrips) {
  SelectRequest request = make_request();
  request.cap_w.reset();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_FALSE(decoded.request.cap_w.has_value());
}

TEST(ServeCodec, ResponseRoundTrip) {
  SelectResponse response;
  response.request_id = 42;
  response.status = ResponseStatus::Ok;
  response.model_version = 3;
  response.config_index = 17;
  response.predicted_power_w = 23.4375;
  response.predicted_performance = 812.5;
  response.predicted_feasible = true;

  std::vector<std::uint8_t> bytes;
  encode_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.type, MessageType::SelectResponse);
  EXPECT_EQ(decoded.response.request_id, response.request_id);
  EXPECT_EQ(decoded.response.status, response.status);
  EXPECT_EQ(decoded.response.model_version, response.model_version);
  EXPECT_EQ(decoded.response.config_index, response.config_index);
  EXPECT_EQ(decoded.response.predicted_power_w, response.predicted_power_w);
  EXPECT_EQ(decoded.response.predicted_performance,
            response.predicted_performance);
  EXPECT_TRUE(decoded.response.predicted_feasible);
}

TEST(ServeCodec, BackToBackFramesDecodeInSequence) {
  const SelectRequest request = make_request();
  std::vector<std::uint8_t> stream;
  encode_request(request, stream);
  const std::size_t first_size = stream.size();
  encode_request(request, stream);

  const Decoded first = decode_frame(stream);
  ASSERT_EQ(first.status, DecodeStatus::Ok);
  EXPECT_EQ(first.bytes_consumed, first_size);
  const Decoded second = decode_frame(
      std::span<const std::uint8_t>{stream}.subspan(first.bytes_consumed));
  ASSERT_EQ(second.status, DecodeStatus::Ok);
  EXPECT_EQ(second.request.request_id, request.request_id);
}

TEST(ServeCodec, ShortReadsReportNeedMoreData) {
  const SelectRequest request = make_request();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  // Every strict prefix is either an incomplete header or an incomplete
  // payload — never an error, never a successful decode.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, kFrameHeaderBytes - 1,
        kFrameHeaderBytes, kFrameHeaderBytes + 5, bytes.size() - 1}) {
    const Decoded decoded =
        decode_frame(std::span<const std::uint8_t>{bytes.data(), cut});
    EXPECT_EQ(decoded.status, DecodeStatus::NeedMoreData)
        << "prefix length " << cut;
    EXPECT_EQ(decoded.bytes_consumed, 0u) << "prefix length " << cut;
  }
}

// Table-driven header corruption: each case mutates one header field and
// names the status the decoder must report.
struct HeaderCase {
  const char* name;
  std::size_t offset;
  std::uint8_t value;
  DecodeStatus expected;
};

class ServeCodecHeader : public ::testing::TestWithParam<HeaderCase> {};

TEST_P(ServeCodecHeader, RejectsCorruptHeader) {
  const HeaderCase& test = GetParam();
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  bytes[test.offset] = test.value;
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, test.expected);
  if (test.expected != DecodeStatus::MalformedPayload) {
    EXPECT_EQ(decoded.bytes_consumed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corruptions, ServeCodecHeader,
    ::testing::Values(
        HeaderCase{"bad_magic_byte0", 0, 0x00, DecodeStatus::BadMagic},
        HeaderCase{"bad_magic_byte3", 3, 0xff, DecodeStatus::BadMagic},
        HeaderCase{"future_version", 4, 99,
                   DecodeStatus::UnsupportedVersion},
        HeaderCase{"unknown_type_0", 5, 0, DecodeStatus::UnknownType},
        HeaderCase{"unknown_type_200", 5, 200, DecodeStatus::UnknownType},
        // Oversized: setting the length's high byte declares ~4 GiB.
        HeaderCase{"oversized_frame", 11, 0xff,
                   DecodeStatus::OversizedFrame}),
    [](const ::testing::TestParamInfo<HeaderCase>& param_info) {
      return std::string{param_info.param.name};
    });

TEST(ServeCodec, RejectsTruncatedPayloadDeclaredShort) {
  // Shrink the declared payload length: decode sees a complete (shorter)
  // frame whose payload no longer parses.
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  const std::size_t payload = bytes.size() - kFrameHeaderBytes;
  const std::size_t shortened = payload - 8;
  bytes[8] = static_cast<std::uint8_t>(shortened & 0xff);
  bytes[9] = static_cast<std::uint8_t>((shortened >> 8) & 0xff);
  bytes.resize(kFrameHeaderBytes + shortened);
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, RejectsTrailingGarbageInPayload) {
  // Grow the declared payload length and append bytes: the payload must
  // be fully consumed, so trailing garbage is malformed.
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  const std::size_t payload = bytes.size() - kFrameHeaderBytes + 4;
  bytes[8] = static_cast<std::uint8_t>(payload & 0xff);
  bytes[9] = static_cast<std::uint8_t>((payload >> 8) & 0xff);
  bytes.insert(bytes.end(), {1, 2, 3, 4});
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, RejectsOutOfRangeEnumsInPayload) {
  // goal byte sits right after request_id + model_version.
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  bytes[kFrameHeaderBytes + 16] = 77;  // goal out of range
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, RejectsInvalidConfigurationInPayload) {
  // Find the CPU sample record's device byte by re-encoding with a
  // poisoned device value: corrupt the config's cpu_pstate to 250, which
  // Configuration::validate() rejects.
  SelectRequest request = make_request();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  // Locate the first record: payload starts with 8+8+1+1+8+8 = 34 fixed
  // bytes (request_id, model_version, goal, has_cap, cap_w, deadline_ns),
  // then benchmark "LULESH" (2+6), input "Large" (2+5), kernel
  // "CalcFBHourglassForce" (2+20), then the 5 config bytes (device,
  // cpu_pstate, threads, gpu_pstate, mapping).
  const std::size_t record_start = kFrameHeaderBytes + 34;
  const std::size_t config_offset = record_start + 2 + 6 + 2 + 5 + 2 + 20;
  bytes[config_offset + 1] = 250;  // cpu_pstate far out of range
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

// ----------------------------------------------------------- stats ------

obs::MetricSnapshot make_metric(const char* name, obs::MetricKind kind) {
  obs::MetricSnapshot metric;
  metric.name = name;
  metric.kind = kind;
  return metric;
}

StatsResponse make_stats_response() {
  StatsResponse response;
  response.request_id = 99;
  response.status = ResponseStatus::Ok;
  obs::MetricSnapshot counter =
      make_metric("serve.submitted", obs::MetricKind::Counter);
  counter.count = 12345;
  obs::MetricSnapshot gauge =
      make_metric("serve.queue_depth", obs::MetricKind::Gauge);
  gauge.value = 17.5;
  obs::MetricSnapshot hist =
      make_metric("serve.latency_ns", obs::MetricKind::Histogram);
  hist.count = 1000;
  hist.p50_us = 12.625;
  hist.p99_us = 99.5;
  hist.max_us = 130.0;
  response.metrics = {counter, gauge, hist};
  return response;
}

TEST(ServeCodec, StatsRequestRoundTrip) {
  StatsRequest request;
  request.request_id = 0x1122334455667788ULL;
  std::vector<std::uint8_t> bytes;
  encode_stats_request(request, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.type, MessageType::StatsRequest);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  EXPECT_EQ(decoded.stats_request.request_id, request.request_id);
}

TEST(ServeCodec, StatsResponseRoundTripIsExact) {
  const StatsResponse response = make_stats_response();
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.type, MessageType::StatsResponse);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  EXPECT_EQ(decoded.stats_response.request_id, response.request_id);
  EXPECT_EQ(decoded.stats_response.status, response.status);
  // Doubles travel as IEEE-754 bits, so the whole snapshot compares
  // bit-exactly through MetricSnapshot's fieldwise equality.
  EXPECT_EQ(decoded.stats_response.metrics, response.metrics);
}

TEST(ServeCodec, EmptyStatsResponseRoundTrips) {
  StatsResponse response;
  response.request_id = 1;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_TRUE(decoded.stats_response.metrics.empty());
}

TEST(ServeCodec, RejectsShortStatsRequestPayload) {
  StatsRequest request;
  std::vector<std::uint8_t> bytes;
  encode_stats_request(request, bytes);
  bytes[8] = 4;  // declare a 4-byte payload; request_id needs 8
  bytes.resize(kFrameHeaderBytes + 4);
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, RejectsTrailingGarbageInStatsRequest) {
  StatsRequest request;
  std::vector<std::uint8_t> bytes;
  encode_stats_request(request, bytes);
  bytes[8] = 12;  // 8 real bytes + 4 garbage
  bytes.insert(bytes.end(), {1, 2, 3, 4});
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

// Table-driven stats-payload corruption, mirroring the header table: each
// case pokes one byte of an encoded single-metric StatsResponse. Payload
// layout: request_id u64 @12, status u8 @20, count u32 @21, then the
// metric (name len u16 @25, name "m" @27, kind u8 @28, count u64 @29,
// four f64s @37).
struct StatsCase {
  const char* name;
  std::size_t offset;
  std::uint8_t value;
};

class ServeCodecStats : public ::testing::TestWithParam<StatsCase> {};

TEST_P(ServeCodecStats, RejectsCorruptStatsPayload) {
  StatsResponse response;
  response.request_id = 7;
  response.metrics = {make_metric("m", obs::MetricKind::Counter)};
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const StatsCase& test = GetParam();
  bytes[test.offset] = test.value;
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

INSTANTIATE_TEST_SUITE_P(
    Corruptions, ServeCodecStats,
    ::testing::Values(
        StatsCase{"status_out_of_range", 20, 200},
        StatsCase{"kind_out_of_range", 28, 9},
        StatsCase{"count_exceeds_metrics_present", 21, 2},
        // count's high byte declares ~16M metrics — more than any
        // payload under the size cap can hold.
        StatsCase{"absurd_metric_count", 24, 0xff},
        // name length beyond the remaining payload.
        StatsCase{"name_overruns_payload", 26, 0xff},
        // Adaptation block: appended after the single 44-byte metric, so
        // it starts at payload offset 57 (absolute 69). Three boolean
        // bytes, then max_drift_score.
        StatsCase{"adapt_attached_not_boolean", 69, 2},
        StatsCase{"adapt_canary_active_not_boolean", 70, 2},
        StatsCase{"adapt_retrain_inflight_not_boolean", 71, 2},
        // Smashing the f64's top byte turns the (zero) drift score into
        // a large negative value; scores must be >= 0.
        StatsCase{"adapt_negative_drift_score", 79, 0xff}),
    [](const ::testing::TestParamInfo<StatsCase>& param_info) {
      return std::string{param_info.param.name};
    });

TEST(ServeCodec, StatsResponseCarriesTheAdaptBlockExactly) {
  StatsResponse response = make_stats_response();
  response.adapt.attached = true;
  response.adapt.canary_active = true;
  response.adapt.retrain_inflight = true;
  response.adapt.max_drift_score = 1.375;
  response.adapt.observations = 1000;
  response.adapt.rejected_residuals = 3;
  response.adapt.drift_events = 2;
  response.adapt.retrains = 2;
  response.adapt.retrain_failures = 1;
  response.adapt.reservoir_size = 96;
  response.adapt.canary_evals = 24;
  response.adapt.shadow_evals = 7;
  response.adapt.canary_accepted = 1;
  response.adapt.canary_rejected = 1;
  response.adapt.promotions = 1;
  response.adapt.rollbacks = 0;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.stats_response.adapt, response.adapt);
  EXPECT_EQ(decoded.stats_response.metrics, response.metrics);
}

TEST(ServeCodec, NaNDriftScoreIsRejected) {
  StatsResponse response;
  response.request_id = 5;
  response.adapt.max_drift_score = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, StatsResponseCarriesTheFleetBlockExactly) {
  StatsResponse response = make_stats_response();
  response.fleet.attached = true;
  response.fleet.shards = 16;
  response.fleet.replicas = 48;
  response.fleet.replicas_alive = 45;
  response.fleet.routed = 100000;
  response.fleet.delivered = 99850;
  response.fleet.shed = 150;
  response.fleet.rerouted = 820;
  response.fleet.hedges_fired = 512;
  response.fleet.vote_disagreements = 9;
  response.fleet.median_fallbacks = 3;
  response.fleet.membership_transitions = 6;
  response.fleet.heartbeats_dropped = 40;
  response.fleet.replica_timeouts = 11;
  response.fleet.rebalances = 25;
  response.fleet.global_budget_w = 480.5;
  response.fleet.model_mismatch = 77;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.stats_response.fleet, response.fleet);
  EXPECT_EQ(decoded.stats_response.metrics, response.metrics);
}

TEST(ServeCodec, DetachedFleetBlockRoundTripsAsZeros) {
  StatsResponse response;
  response.request_id = 3;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_FALSE(decoded.stats_response.fleet.attached);
  EXPECT_EQ(decoded.stats_response.fleet, FleetStats{});
}

// Fleet-block rejection rows. Layout of the single-metric response used
// by the ServeCodecStats table: the adapt block spans absolute offsets
// [69, 176), so the fleet block starts at 176 — attached u8 @176, three
// u32s @177/@181/@185, eleven u64s @189, global_budget_w f64 @277.
TEST(ServeCodec, FleetAttachedMustBeBoolean) {
  StatsResponse response;
  response.request_id = 7;
  response.metrics = {make_metric("m", obs::MetricKind::Counter)};
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  bytes[176] = 2;
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, FleetAliveExceedingReplicasIsRejected) {
  StatsResponse response;
  response.request_id = 7;
  response.metrics = {make_metric("m", obs::MetricKind::Counter)};
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  // replicas stays 0; replicas_alive becomes 1 — a topology no fleet can
  // report, so it is a corrupt frame.
  bytes[185] = 1;
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, NegativeGlobalBudgetIsRejected) {
  StatsResponse response;
  response.request_id = 7;
  response.metrics = {make_metric("m", obs::MetricKind::Counter)};
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  // Smash the f64's sign/exponent byte: the (zero) budget goes negative.
  bytes[284] = 0xff;
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, NaNGlobalBudgetIsRejected) {
  StatsResponse response;
  response.request_id = 5;
  response.fleet.global_budget_w = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, StatsResponseTruncatedInsideTheFleetBlockIsMalformed) {
  // Cut the declared payload mid-way through the fleet counters: the
  // block is not optional, so a short frame must not silently decode to
  // a zeroed FleetStats.
  StatsResponse response;
  response.request_id = 6;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const std::size_t shortened = bytes.size() - kFrameHeaderBytes - 20;
  bytes[8] = static_cast<std::uint8_t>(shortened & 0xff);
  bytes[9] = static_cast<std::uint8_t>((shortened >> 8) & 0xff);
  bytes.resize(kFrameHeaderBytes + shortened);
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, StatsResponseTruncatedInsideTheAdaptBlockIsMalformed) {
  // Cut the declared payload mid-way through the adapt counters (the
  // blocks appended after it — fleet 201 + empty series 21 + empty slo
  // 13 — total 235 bytes, so the cut must reach past them): the block is
  // not optional, so a short frame must not silently decode to a zeroed
  // AdaptStats.
  StatsResponse response;
  response.request_id = 6;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const std::size_t shortened = bytes.size() - kFrameHeaderBytes - 250;
  bytes[8] = static_cast<std::uint8_t>(shortened & 0xff);
  bytes[9] = static_cast<std::uint8_t>((shortened >> 8) & 0xff);
  bytes.resize(kFrameHeaderBytes + shortened);
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, ToStringCoversStatuses) {
  EXPECT_STREQ(to_string(DecodeStatus::Ok), "Ok");
  EXPECT_STREQ(to_string(DecodeStatus::BadMagic), "BadMagic");
  EXPECT_STREQ(to_string(DecodeStatus::OversizedFrame), "OversizedFrame");
  EXPECT_STREQ(to_string(ResponseStatus::Shed), "Shed");
  EXPECT_STREQ(to_string(ResponseStatus::MalformedRequest),
               "MalformedRequest");
  EXPECT_STREQ(to_string(ResponseStatus::DeadlineExceeded),
               "DeadlineExceeded");
}

// ---- feedback ----------------------------------------------------------

FeedbackRequest make_feedback() {
  const hw::ConfigSpace space;
  FeedbackRequest feedback;
  feedback.request_id = 0xabad1deaU;
  feedback.model_version = 4;
  feedback.goal = core::SchedulingGoal::MaxPerformance;
  feedback.cap_w = 22.5;
  feedback.predicted_power_w = 19.25;
  feedback.predicted_performance = 640.0;
  feedback.measured_power_w = 21.0;
  feedback.measured_performance = 587.5;
  feedback.samples.cpu = make_record(space.cpu_sample(), 1.0);
  feedback.samples.gpu = make_record(space.gpu_sample(), 2.0);
  return feedback;
}

TEST(ServeCodec, FeedbackRequestRoundTrip) {
  const FeedbackRequest feedback = make_feedback();
  std::vector<std::uint8_t> bytes;
  encode_feedback_request(feedback, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.type, MessageType::FeedbackRequest);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  const FeedbackRequest& out = decoded.feedback;
  EXPECT_EQ(out.request_id, feedback.request_id);
  EXPECT_EQ(out.model_version, feedback.model_version);
  EXPECT_EQ(out.goal, feedback.goal);
  ASSERT_TRUE(out.cap_w.has_value());
  EXPECT_EQ(*out.cap_w, *feedback.cap_w);
  EXPECT_EQ(out.predicted_power_w, feedback.predicted_power_w);
  EXPECT_EQ(out.predicted_performance, feedback.predicted_performance);
  EXPECT_EQ(out.measured_power_w, feedback.measured_power_w);
  EXPECT_EQ(out.measured_performance, feedback.measured_performance);
  EXPECT_EQ(out.samples.cpu.kernel, feedback.samples.cpu.kernel);
  EXPECT_EQ(out.samples.gpu.config, feedback.samples.gpu.config);
  EXPECT_EQ(out.samples.cpu.counters.instructions,
            feedback.samples.cpu.counters.instructions);
}

TEST(ServeCodec, FeedbackRequestWithoutCapRoundTrips) {
  FeedbackRequest feedback = make_feedback();
  feedback.cap_w.reset();
  std::vector<std::uint8_t> bytes;
  encode_feedback_request(feedback, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_FALSE(decoded.feedback.cap_w.has_value());
}

TEST(ServeCodec, FeedbackResponseRoundTripsEveryStatus) {
  for (const ResponseStatus status :
       {ResponseStatus::Ok, ResponseStatus::Shed,
        ResponseStatus::MalformedRequest, ResponseStatus::UnknownModelVersion,
        ResponseStatus::NoModelPublished, ResponseStatus::InternalError,
        ResponseStatus::DeadlineExceeded, ResponseStatus::Unsupported}) {
    FeedbackResponse response;
    response.request_id = 11;
    response.status = status;
    std::vector<std::uint8_t> bytes;
    encode_feedback_response(response, bytes);
    const Decoded decoded = decode_frame(bytes);
    ASSERT_EQ(decoded.status, DecodeStatus::Ok) << to_string(status);
    EXPECT_EQ(decoded.type, MessageType::FeedbackResponse);
    EXPECT_EQ(decoded.feedback_response.request_id, 11u);
    EXPECT_EQ(decoded.feedback_response.status, status);
  }
}

TEST(ServeCodec, FeedbackResponseRejectsAStatusBeyondTheEnum) {
  FeedbackResponse response;
  std::vector<std::uint8_t> bytes;
  encode_feedback_response(response, bytes);
  bytes[kFrameHeaderBytes + 8] = 8;  // one past Unsupported
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

// Non-finite measurements are a client bug, not drift — the codec rejects
// them so the adapt loop never has to. Each case poisons one field.
struct FeedbackNonFiniteCase {
  const char* name;
  double FeedbackRequest::* field;
};

class ServeCodecFeedbackNonFinite
    : public ::testing::TestWithParam<FeedbackNonFiniteCase> {};

TEST_P(ServeCodecFeedbackNonFinite, IsRejected) {
  for (const double poison :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    FeedbackRequest feedback = make_feedback();
    feedback.*GetParam().field = poison;
    std::vector<std::uint8_t> bytes;
    encode_feedback_request(feedback, bytes);
    const Decoded decoded = decode_frame(bytes);
    EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
    EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fields, ServeCodecFeedbackNonFinite,
    ::testing::Values(
        FeedbackNonFiniteCase{"predicted_power",
                              &FeedbackRequest::predicted_power_w},
        FeedbackNonFiniteCase{"predicted_performance",
                              &FeedbackRequest::predicted_performance},
        FeedbackNonFiniteCase{"measured_power",
                              &FeedbackRequest::measured_power_w},
        FeedbackNonFiniteCase{"measured_performance",
                              &FeedbackRequest::measured_performance}),
    [](const ::testing::TestParamInfo<FeedbackNonFiniteCase>& param_info) {
      return std::string{param_info.param.name};
    });

TEST(ServeCodec, FeedbackRequestRejectsANonFiniteCap) {
  FeedbackRequest feedback = make_feedback();
  feedback.cap_w = std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> bytes;
  encode_feedback_request(feedback, bytes);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, FeedbackRequestRejectsCorruptEnumBytes) {
  // Payload layout: request_id u64, model_version u64, goal u8 @ +16,
  // has_cap u8 @ +17.
  {
    std::vector<std::uint8_t> bytes;
    encode_feedback_request(make_feedback(), bytes);
    bytes[kFrameHeaderBytes + 16] = 3;  // goal past MinEnergyDelay
    EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
  }
  {
    std::vector<std::uint8_t> bytes;
    encode_feedback_request(make_feedback(), bytes);
    bytes[kFrameHeaderBytes + 17] = 2;  // has_cap is a boolean
    EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
  }
}

TEST(ServeCodec, FeedbackRequestDeclaredShortIsMalformed) {
  std::vector<std::uint8_t> bytes;
  encode_feedback_request(make_feedback(), bytes);
  const std::size_t payload = bytes.size() - kFrameHeaderBytes;
  const std::size_t shortened = payload - 8;
  bytes[8] = static_cast<std::uint8_t>(shortened & 0xff);
  bytes[9] = static_cast<std::uint8_t>((shortened >> 8) & 0xff);
  bytes.resize(kFrameHeaderBytes + shortened);
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, FeedbackRequestWithTrailingBytesIsMalformed) {
  std::vector<std::uint8_t> bytes;
  encode_feedback_request(make_feedback(), bytes);
  const std::size_t payload = bytes.size() - kFrameHeaderBytes + 4;
  bytes[8] = static_cast<std::uint8_t>(payload & 0xff);
  bytes[9] = static_cast<std::uint8_t>((payload >> 8) & 0xff);
  bytes.insert(bytes.end(), {9, 9, 9, 9});
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

// ---- adversarial length prefixes ---------------------------------------

/// A header-only frame with an arbitrary declared payload length.
std::vector<std::uint8_t> make_header(MessageType type,
                                      std::uint32_t payload_length) {
  std::vector<std::uint8_t> frame;
  const auto put_u32 = [&frame](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u32(kWireMagic);
  frame.push_back(kWireVersion);
  frame.push_back(static_cast<std::uint8_t>(type));
  frame.push_back(0);  // reserved
  frame.push_back(0);
  put_u32(payload_length);
  return frame;
}

TEST(ServeCodec, AllOnesLengthPrefixIsRejectedFromTheHeaderAlone) {
  // 0xffffffff declared payload: must be rejected before any buffering,
  // and the 64-bit frame-size math must not wrap into "NeedMoreData".
  const auto frame = make_header(MessageType::SelectRequest, 0xffffffffu);
  const Decoded decoded = decode_frame(frame);
  EXPECT_EQ(decoded.status, DecodeStatus::OversizedFrame);
  EXPECT_EQ(decoded.bytes_consumed, 0u);
}

TEST(ServeCodec, ZeroLengthSelectRequestIsMalformedPayload) {
  // A complete frame whose payload is empty: framed (and therefore
  // skippable), but the payload cannot parse.
  const auto frame = make_header(MessageType::SelectRequest, 0);
  const Decoded decoded = decode_frame(frame);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, kFrameHeaderBytes);
}

TEST(ServeCodec, ZeroLengthStatsRequestIsMalformedPayload) {
  const auto frame = make_header(MessageType::StatsRequest, 0);
  const Decoded decoded = decode_frame(frame);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, kFrameHeaderBytes);
}

// ------------------------------------------- trace context (wire v2) ----

obs::TraceContext make_trace() {
  obs::TraceContext trace;
  trace.trace_id = 0xaaaa0000bbbb1111ULL;
  trace.span_id = 0x2222cccc3333ddddULL;
  trace.parent_id = 0x4444eeee5555ffffULL;
  trace.sampled = true;
  return trace;
}

TEST(ServeCodec, TraceContextRoundTripsOnRequestFrames) {
  const obs::TraceContext trace = make_trace();
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes, &trace);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  ASSERT_TRUE(decoded.has_trace);
  EXPECT_EQ(decoded.trace, trace);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  // The flag costs exactly the trace block.
  std::vector<std::uint8_t> untraced;
  encode_request(make_request(), untraced);
  EXPECT_EQ(bytes.size(), untraced.size() + kTraceBlockBytes);
}

TEST(ServeCodec, TraceContextRoundTripsOnEveryMessageType) {
  const obs::TraceContext trace = make_trace();
  std::vector<std::vector<std::uint8_t>> frames{{}, {}, {}, {}, {}, {}};
  encode_request(make_request(), frames[0], &trace);
  encode_response(SelectResponse{}, frames[1], &trace);
  encode_stats_request(StatsRequest{}, frames[2], &trace);
  encode_stats_response(StatsResponse{}, frames[3], &trace);
  FeedbackRequest feedback;
  feedback.samples = make_request().samples;
  encode_feedback_request(feedback, frames[4], &trace);
  encode_feedback_response(FeedbackResponse{}, frames[5], &trace);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Decoded decoded = decode_frame(frames[i]);
    ASSERT_EQ(decoded.status, DecodeStatus::Ok) << "frame " << i;
    EXPECT_TRUE(decoded.has_trace) << "frame " << i;
    EXPECT_EQ(decoded.trace, trace) << "frame " << i;
  }
}

TEST(ServeCodec, FramesWithoutTraceReportNoTrace) {
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_FALSE(decoded.has_trace);
  EXPECT_EQ(decoded.trace, obs::TraceContext{});
}

TEST(ServeCodec, UnsampledTraceContextRoundTrips) {
  obs::TraceContext trace = make_trace();
  trace.sampled = false;
  std::vector<std::uint8_t> bytes;
  encode_response(SelectResponse{}, bytes, &trace);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  ASSERT_TRUE(decoded.has_trace);
  EXPECT_FALSE(decoded.trace.sampled);
  EXPECT_EQ(decoded.trace.trace_id, trace.trace_id);
}

TEST(ServeCodec, TracedAndUntracedFramesInterleaveInOneStream) {
  const obs::TraceContext trace = make_trace();
  std::vector<std::uint8_t> stream;
  encode_request(make_request(), stream, &trace);
  const std::size_t first = stream.size();
  encode_response(SelectResponse{}, stream);
  std::span<const std::uint8_t> cursor{stream};
  const Decoded a = decode_frame(cursor);
  ASSERT_EQ(a.status, DecodeStatus::Ok);
  EXPECT_TRUE(a.has_trace);
  EXPECT_EQ(a.bytes_consumed, first);
  const Decoded b = decode_frame(cursor.subspan(a.bytes_consumed));
  ASSERT_EQ(b.status, DecodeStatus::Ok);
  EXPECT_FALSE(b.has_trace);
  EXPECT_EQ(a.bytes_consumed + b.bytes_consumed, stream.size());
}

TEST(ServeCodec, VersionOneFramesAreUnsupported) {
  // v1 frames had no flags field; a v1 peer is told to upgrade rather
  // than have its bytes misread.
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  bytes[4] = 1;
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::UnsupportedVersion);
  EXPECT_EQ(decoded.bytes_consumed, 0u);
}

TEST(ServeCodec, UnknownFlagBitsAreUnsupportedNotGuessed) {
  // An unknown flag bit may change the frame size (as bits 0 through 2
  // all did), so decoding must refuse rather than desynchronize the
  // stream.
  const obs::TraceContext trace = make_trace();
  for (const std::uint8_t bit :
       {std::uint8_t{0x08}, std::uint8_t{0x80}}) {
    std::vector<std::uint8_t> bytes;
    encode_request(make_request(), bytes, &trace);
    // flags u16 little-endian at offsets 6..7
    bytes[6] = static_cast<std::uint8_t>(bytes[6] | bit);
    const Decoded decoded = decode_frame(bytes);
    EXPECT_EQ(decoded.status, DecodeStatus::UnsupportedVersion);
    EXPECT_EQ(decoded.bytes_consumed, 0u);
  }
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes, &trace);
  bytes[7] = 0x01;  // high byte of the flags field
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::UnsupportedVersion);
}

TEST(ServeCodec, TruncatedTraceBlockIsNeedMoreData) {
  const obs::TraceContext trace = make_trace();
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes, &trace);
  for (const std::size_t cut :
       {kFrameHeaderBytes, kFrameHeaderBytes + 1,
        kFrameHeaderBytes + kTraceBlockBytes - 1}) {
    const Decoded decoded =
        decode_frame(std::span<const std::uint8_t>{bytes.data(), cut});
    EXPECT_EQ(decoded.status, DecodeStatus::NeedMoreData) << "cut " << cut;
    EXPECT_EQ(decoded.bytes_consumed, 0u);
  }
}

TEST(ServeCodec, CorruptSampledByteIsMalformedButSkippable) {
  const obs::TraceContext trace = make_trace();
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes, &trace);
  bytes[kFrameHeaderBytes + kTraceBlockBytes - 1] = 2;  // sampled must be 0/1
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  // The frame is correctly sized, so a stream can skip past it.
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, RequestDeadlineRoundTrips) {
  SelectRequest request = make_request();
  request.deadline_ns = 2'500'000;
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.request.deadline_ns, 2'500'000u);
}

// ------------------------------------------------ series / slo blocks ----

StatsResponse make_series_slo_response() {
  StatsResponse response;
  response.request_id = 5;
  response.status = ResponseStatus::Ok;
  response.series.attached = true;
  response.series.ticks = 120;
  response.series.capacity = 256;
  SeriesRollupStats rollup;
  rollup.name = "fleet.window_p99_us";
  rollup.latest = 950.0;
  rollup.points = 60;
  rollup.sum = 48000.0;
  rollup.min = 120.5;
  rollup.max = 1800.25;
  rollup.avg = 800.0;
  response.series.series = {rollup};
  response.slo.attached = true;
  response.slo.slos = 3;
  response.slo.active = 1;
  AlertSnapshot alert;
  alert.slo = "fleet.delivered";
  alert.fired_tick = 61;
  alert.cleared_tick = 0;  // active
  alert.fast_burn = 400.0;
  alert.slow_burn = 33.3;
  alert.worst_value = 0.5;
  alert.membership_transitions = 2.0;
  alert.promotions = 1.0;
  alert.rollbacks = 0.0;
  alert.exemplar_trace_ids = {0x1234567890abcdefULL, 42};
  AlertSnapshot cleared = alert;
  cleared.slo = "fleet.p99";
  cleared.cleared_tick = 90;
  response.slo.alerts = {alert, cleared};
  return response;
}

TEST(ServeCodec, StatsResponseCarriesSeriesAndSloBlocksExactly) {
  const StatsResponse response = make_series_slo_response();
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.stats_response.series, response.series);
  EXPECT_EQ(decoded.stats_response.slo, response.slo);
}

TEST(ServeCodec, DetachedSeriesAndSloBlocksRoundTripAsZeros) {
  StatsResponse response;
  response.request_id = 6;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_FALSE(decoded.stats_response.series.attached);
  EXPECT_TRUE(decoded.stats_response.series.series.empty());
  EXPECT_FALSE(decoded.stats_response.slo.attached);
  EXPECT_TRUE(decoded.stats_response.slo.alerts.empty());
}

TEST(ServeCodec, NonFiniteSeriesRollupIsRejected) {
  const StatsResponse response = make_series_slo_response();
  // Keep only the series block's rollup; detach the slo block so its 13
  // trailing bytes put the rollup's avg f64 at a known tail offset.
  StatsResponse series_only = response;
  series_only.slo = SloStats{};
  std::vector<std::uint8_t> bytes;
  encode_stats_response(series_only, bytes);
  ASSERT_EQ(decode_frame(bytes).status, DecodeStatus::Ok);
  // avg is the last rollup field: [size - 13 - 8, size - 13). Exponent
  // all-ones + nonzero mantissa = NaN.
  bytes[bytes.size() - 14] = 0xff;
  bytes[bytes.size() - 15] = 0xff;
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, SeriesAttachedMustBeBoolean) {
  StatsResponse response;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  // With no metrics the series block starts at payload offset 321
  // (8+1+4 response header + 107 adapt + 201 fleet, the fleet block's
  // per-priority, brownout and model-mismatch rows included).
  bytes[kFrameHeaderBytes + 321] = 2;
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, AbsurdSeriesCountIsRejected) {
  StatsResponse response;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  // series count u32 at payload offset 321 + 1 + 8 + 8 = 338.
  bytes[kFrameHeaderBytes + 338 + 3] = 0xff;  // ~16M rollups declared
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, SloActiveExceedingConfiguredIsRejected) {
  StatsResponse response = make_series_slo_response();
  response.slo.active = response.slo.slos + 1;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, AlertThatNeverFiredIsRejected) {
  StatsResponse response = make_series_slo_response();
  response.slo.alerts[0].fired_tick = 0;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, AlertClearedBeforeItFiredIsRejected) {
  StatsResponse response = make_series_slo_response();
  response.slo.alerts[1].cleared_tick = response.slo.alerts[1].fired_tick - 1;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, NonFiniteBurnRateIsRejected) {
  StatsResponse response = make_series_slo_response();
  response.slo.alerts[0].fast_burn =
      std::numeric_limits<double>::infinity();
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::MalformedPayload);
}

TEST(ServeCodec, StatsResponseTruncatedInsideTheSeriesBlockIsMalformed) {
  StatsResponse response = make_series_slo_response();
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  // Re-declare the payload length to end mid-rollup (cut the trailing
  // slo block plus half the rollup away).
  const std::size_t payload = bytes.size() - kFrameHeaderBytes;
  const std::size_t shortened = payload - 120;
  bytes[8] = static_cast<std::uint8_t>(shortened & 0xff);
  bytes[9] = static_cast<std::uint8_t>((shortened >> 8) & 0xff);
  bytes.resize(kFrameHeaderBytes + shortened);
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, ConfigurableMaxFrameBytesTightensTheCap) {
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  // Well-formed under the default cap...
  EXPECT_EQ(decode_frame(bytes).status, DecodeStatus::Ok);
  // ...but rejected, from the header alone, under a tightened one.
  const Decoded tightened = decode_frame(bytes, 16);
  EXPECT_EQ(tightened.status, DecodeStatus::OversizedFrame);
  EXPECT_EQ(tightened.bytes_consumed, 0u);
  // A cap beyond kMaxPayloadBytes is clamped, never widened.
  const auto huge = make_header(MessageType::SelectRequest,
                                static_cast<std::uint32_t>(kMaxPayloadBytes) + 1);
  EXPECT_EQ(decode_frame(huge, std::size_t{1} << 40).status,
            DecodeStatus::OversizedFrame);
}

// ---- predictor text-envelope rejections (forward compatibility) --------

/// Writes `text` to a temp file and returns its path.
std::string write_temp_model(const std::string& name,
                             const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out{path};
  out << text;
  return path;
}

TEST(PredictorEnvelope, PublishFileRejectsAnUnknownKindWithItsTag) {
  ModelRegistry registry;
  const std::string path = write_temp_model(
      "unknown_kind.model", "acsel-predictor transformer-v9 v1\nclusters 1\n");
  try {
    registry.publish_file(path);
    FAIL() << "unknown predictor kind must not publish";
  } catch (const core::UnknownPredictorKindError& error) {
    EXPECT_EQ(error.predictor_kind(), "transformer-v9");
  }
  EXPECT_EQ(registry.current().version, 0u);
  std::remove(path.c_str());
}

TEST(PredictorEnvelope, PublishFileRejectsANewerFormatVersion) {
  ModelRegistry registry;
  const std::string path = write_temp_model(
      "newer_version.model", "acsel-predictor cluster-cart v99\nclusters 1\n");
  EXPECT_THROW(registry.publish_file(path),
               core::UnsupportedPredictorVersionError);
  EXPECT_EQ(registry.current().version, 0u);
  std::remove(path.c_str());
}

TEST(PredictorEnvelope, PublishFileRejectsAMalformedEnvelope) {
  ModelRegistry registry;
  for (const char* text : {"", "garbage\n", "acsel-predictor\n",
                           "acsel-predictor cluster-cart one\n"}) {
    const std::string path = write_temp_model("malformed.model", text);
    EXPECT_THROW(registry.publish_file(path), core::PredictorFormatError)
        << "text: " << text;
    std::remove(path.c_str());
  }
  EXPECT_EQ(registry.current().version, 0u);
}

TEST(PredictorEnvelope, TypedRejectionsRemainPlainErrorsToOldCatchSites) {
  ModelRegistry registry;
  const std::string path = write_temp_model(
      "foreign.model", "acsel-predictor quantum v1\nwhatever\n");
  EXPECT_THROW(registry.publish_file(path), Error);
  std::remove(path.c_str());
}

// ---- priority block ----------------------------------------------------

TEST(ServeCodec, PriorityBlockRoundTripsHighAndLow) {
  for (const Priority priority : {Priority::High, Priority::Low}) {
    SelectRequest request = make_request();
    request.priority = priority;
    std::vector<std::uint8_t> bytes;
    encode_request(request, bytes);

    const Decoded decoded = decode_frame(bytes);
    ASSERT_EQ(decoded.status, DecodeStatus::Ok);
    EXPECT_TRUE(decoded.has_priority);
    EXPECT_EQ(decoded.priority, priority);
    EXPECT_EQ(decoded.request.priority, priority);
  }
}

TEST(ServeCodec, NormalPriorityOmitsTheBlockByteIdentically) {
  // A Normal request must encode exactly as a pre-priority build would:
  // no flag bit, no block byte — so version-skewed peers interoperate
  // and byte-keyed caches (the server's batch memoization) are unmoved.
  SelectRequest request = make_request();
  request.priority = Priority::Normal;
  std::vector<std::uint8_t> with_normal;
  encode_request(request, with_normal);

  std::vector<std::uint8_t> default_encoded;
  encode_request(make_request(), default_encoded);
  EXPECT_EQ(with_normal, default_encoded);

  const Decoded decoded = decode_frame(with_normal);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_FALSE(decoded.has_priority);
  EXPECT_EQ(decoded.request.priority, Priority::Normal);
  // Flags bit 1 (priority) is clear on the wire.
  const std::uint16_t flags = static_cast<std::uint16_t>(
      with_normal[6] | (with_normal[7] << 8));
  EXPECT_EQ(flags & kFlagPriority, 0);
}

TEST(ServeCodec, BadPriorityByteIsMalformedButSkippable) {
  SelectRequest request = make_request();
  request.priority = Priority::High;
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  // No trace block, so the priority byte sits right after the header.
  bytes[kFrameHeaderBytes] = 3;  // beyond Priority::Low
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  // Framed-but-bad: the stream can skip the whole frame and resume.
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, PriorityBlockCoexistsWithATraceBlock) {
  SelectRequest request = make_request();
  request.priority = Priority::Low;
  obs::TraceContext trace;
  trace.trace_id = 0x1111;
  trace.span_id = 0x2222;
  trace.parent_id = 0x3333;
  trace.sampled = true;
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes, &trace);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_TRUE(decoded.has_trace);
  EXPECT_EQ(decoded.trace.trace_id, 0x1111u);
  EXPECT_TRUE(decoded.has_priority);
  EXPECT_EQ(decoded.request.priority, Priority::Low);
}

// ---- fleet block: per-priority + brownout rows -------------------------

TEST(ServeCodec, FleetBlockPriorityAndBrownoutRowsRoundTrip) {
  StatsResponse response;
  response.request_id = 11;
  response.fleet.attached = true;
  response.fleet.shards = 6;
  response.fleet.replicas = 18;
  response.fleet.replicas_alive = 17;
  response.fleet.routed = 600;
  response.fleet.delivered = 550;
  response.fleet.shed = 50;
  response.fleet.routed_by_priority = {100, 300, 200};
  response.fleet.delivered_by_priority = {100, 300, 150};
  response.fleet.shed_by_priority = {0, 0, 50};
  response.fleet.brownout_stage = 2;
  response.fleet.brownout_events = 3;
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.stats_response.fleet, response.fleet);
}

TEST(ServeCodec, BrownoutStageBeyondTheLadderIsRejected) {
  StatsResponse response;
  response.request_id = 12;
  response.fleet.attached = true;
  response.fleet.brownout_stage = 4;  // deeper than ForceLowPower
  std::vector<std::uint8_t> bytes;
  encode_stats_response(response, bytes);
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

// ---- fingerprint block -------------------------------------------------

HardwareFingerprint make_fingerprint() {
  HardwareFingerprint fp;
  fp.hash = 0x1badc0de5eedf00dULL;
  fp.cpu_cores = 4;
  fp.gpu_cores = 384;
  fp.cpu_peak_ghz = 3.2;
  fp.gpu_peak_mhz = 686.0;
  fp.idle_power_w = 5.5;
  fp.peak_power_w = 62.25;
  return fp;
}

TEST(ServeCodec, FingerprintBlockRoundTripsOnRequestFrames) {
  SelectRequest request = make_request();
  request.fingerprint = make_fingerprint();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  ASSERT_TRUE(decoded.has_fingerprint);
  EXPECT_EQ(decoded.fingerprint.hash, request.fingerprint->hash);
  EXPECT_EQ(decoded.fingerprint.cpu_cores, request.fingerprint->cpu_cores);
  EXPECT_EQ(decoded.fingerprint.gpu_cores, request.fingerprint->gpu_cores);
  EXPECT_EQ(decoded.fingerprint.cpu_peak_ghz,
            request.fingerprint->cpu_peak_ghz);
  EXPECT_EQ(decoded.fingerprint.gpu_peak_mhz,
            request.fingerprint->gpu_peak_mhz);
  EXPECT_EQ(decoded.fingerprint.idle_power_w,
            request.fingerprint->idle_power_w);
  EXPECT_EQ(decoded.fingerprint.peak_power_w,
            request.fingerprint->peak_power_w);
  // The flag costs exactly the fingerprint block.
  std::vector<std::uint8_t> unkeyed;
  encode_request(make_request(), unkeyed);
  EXPECT_EQ(bytes.size(), unkeyed.size() + kFingerprintBlockBytes);
}

TEST(ServeCodec, FingerprintlessFramesAreByteIdenticalToLegacy) {
  // A request without a fingerprint must not pay for the new block nor
  // set its flag bit — old and new builds produce the same bytes.
  std::vector<std::uint8_t> bytes;
  encode_request(make_request(), bytes);
  EXPECT_EQ(bytes[6] & 0x04, 0);  // flags bit 2 unset
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_FALSE(decoded.has_fingerprint);
  EXPECT_FALSE(decoded.request.fingerprint.has_value());
}

TEST(ServeCodec, FingerprintBlockVersionMismatchIsUnsupported) {
  // A future block layout may have a different size, so the frame
  // boundary cannot be trusted: refuse like an unknown flag bit.
  SelectRequest request = make_request();
  request.fingerprint = make_fingerprint();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  bytes[kFrameHeaderBytes] = kFingerprintBlockVersion + 1;
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::UnsupportedVersion);
  EXPECT_EQ(decoded.bytes_consumed, 0u);
}

TEST(ServeCodec, TruncatedFingerprintBlockIsNeedMoreData) {
  SelectRequest request = make_request();
  request.fingerprint = make_fingerprint();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  for (const std::size_t cut :
       {kFrameHeaderBytes, kFrameHeaderBytes + 1,
        kFrameHeaderBytes + kFingerprintBlockBytes - 1}) {
    const Decoded decoded =
        decode_frame(std::span<const std::uint8_t>{bytes.data(), cut});
    EXPECT_EQ(decoded.status, DecodeStatus::NeedMoreData) << "cut " << cut;
    EXPECT_EQ(decoded.bytes_consumed, 0u);
  }
}

TEST(ServeCodec, ZeroHashFingerprintIsMalformedButSkippable) {
  // 0 means "no fingerprint" internally, so no encoder puts it on the
  // wire; a frame carrying one is corrupt but correctly sized.
  SelectRequest request = make_request();
  request.fingerprint = make_fingerprint();
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes);
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[kFrameHeaderBytes + 1 + i] = 0;  // hash u64 follows the version
  }
  const Decoded decoded = decode_frame(bytes);
  EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload);
  EXPECT_EQ(decoded.bytes_consumed, bytes.size());
}

TEST(ServeCodec, NonFiniteFingerprintDescriptorIsRejected) {
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(), -1.0}) {
    SelectRequest request = make_request();
    request.fingerprint = make_fingerprint();
    request.fingerprint->idle_power_w = bad;
    std::vector<std::uint8_t> bytes;
    encode_request(request, bytes);
    const Decoded decoded = decode_frame(bytes);
    EXPECT_EQ(decoded.status, DecodeStatus::MalformedPayload)
        << "descriptor " << bad;
    EXPECT_EQ(decoded.bytes_consumed, bytes.size());
  }
}

TEST(ServeCodec, ZeroHashFingerprintCannotBeEncoded) {
  SelectRequest request = make_request();
  request.fingerprint = make_fingerprint();
  request.fingerprint->hash = 0;
  std::vector<std::uint8_t> bytes;
  EXPECT_THROW(encode_request(request, bytes), Error);
}

TEST(ServeCodec, FingerprintCoexistsWithTraceAndPriorityBlocks) {
  SelectRequest request = make_request();
  request.priority = Priority::High;
  request.fingerprint = make_fingerprint();
  obs::TraceContext trace;
  trace.trace_id = 0x7777;
  trace.span_id = 0x8888;
  trace.parent_id = 0x9999;
  trace.sampled = true;
  std::vector<std::uint8_t> bytes;
  encode_request(request, bytes, &trace);
  const Decoded decoded = decode_frame(bytes);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_TRUE(decoded.has_trace);
  EXPECT_EQ(decoded.trace.trace_id, 0x7777u);
  EXPECT_TRUE(decoded.has_priority);
  EXPECT_EQ(decoded.request.priority, Priority::High);
  ASSERT_TRUE(decoded.has_fingerprint);
  EXPECT_EQ(decoded.fingerprint.hash, request.fingerprint->hash);
  ASSERT_TRUE(decoded.request.fingerprint.has_value());
  EXPECT_EQ(decoded.request.fingerprint->hash, request.fingerprint->hash);
}

TEST(ServeCodec, KeyedAndUnkeyedFramesInterleaveInOneStream) {
  SelectRequest keyed = make_request();
  keyed.fingerprint = make_fingerprint();
  std::vector<std::uint8_t> stream;
  encode_request(keyed, stream);
  const std::size_t first = stream.size();
  encode_request(make_request(), stream);
  std::span<const std::uint8_t> cursor{stream};
  const Decoded a = decode_frame(cursor);
  ASSERT_EQ(a.status, DecodeStatus::Ok);
  EXPECT_TRUE(a.has_fingerprint);
  EXPECT_EQ(a.bytes_consumed, first);
  const Decoded b = decode_frame(cursor.subspan(a.bytes_consumed));
  ASSERT_EQ(b.status, DecodeStatus::Ok);
  EXPECT_FALSE(b.has_fingerprint);
  EXPECT_EQ(a.bytes_consumed + b.bytes_consumed, stream.size());
}

TEST(PredictorEnvelope, PublishFileErrorsNameTheOffendingPath) {
  // A fleet-wide model push hits dozens of files; the error must say
  // *which* one refused to load, and keep its type while saying so.
  ModelRegistry registry;
  const struct {
    const char* text;
    const char* name;
  } rows[] = {
      {"acsel-predictor transformer-v9 v1\nclusters 1\n", "path_kind.model"},
      {"acsel-predictor cluster-cart v99\nclusters 1\n", "path_ver.model"},
      {"garbage\n", "path_fmt.model"},
  };
  for (const auto& row : rows) {
    const std::string path = write_temp_model(row.name, row.text);
    try {
      registry.publish_file(path);
      FAIL() << "must throw for " << row.name;
    } catch (const core::PredictorFormatError& error) {
      EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
          << "message must carry the path: " << error.what();
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace acsel::serve
