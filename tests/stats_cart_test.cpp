// Tests for the CART classification tree (the paper's cluster assigner).
#include <gtest/gtest.h>

#include <cmath>

#include "stats/cart.h"
#include "util/error.h"
#include "util/rng.h"

namespace acsel::stats {
namespace {

using linalg::Matrix;

TEST(Gini, PureSetIsZero) {
  const std::vector<std::size_t> counts{10, 0, 0};
  EXPECT_DOUBLE_EQ(gini_impurity(counts), 0.0);
}

TEST(Gini, UniformTwoClassesIsHalf) {
  const std::vector<std::size_t> counts{5, 5};
  EXPECT_DOUBLE_EQ(gini_impurity(counts), 0.5);
}

TEST(Gini, EmptySetIsZero) {
  const std::vector<std::size_t> counts{0, 0};
  EXPECT_DOUBLE_EQ(gini_impurity(counts), 0.0);
}

TEST(Cart, LearnsSingleThresholdSplit) {
  Matrix x{8, 1};
  std::vector<std::size_t> labels(8);
  for (std::size_t i = 0; i < 8; ++i) {
    x(i, 0) = static_cast<double>(i);
    labels[i] = i < 4 ? 0 : 1;
  }
  const auto tree = Cart::fit(x, labels);
  EXPECT_EQ(tree.depth(), 1u);
  EXPECT_EQ(tree.leaf_count(), 2u);
  EXPECT_EQ(tree.training_accuracy(), 1.0);
  EXPECT_EQ(tree.predict(std::vector<double>{1.5}), 0u);
  EXPECT_EQ(tree.predict(std::vector<double>{6.5}), 1u);
}

TEST(Cart, LearnsTwoFeatureQuadrants) {
  // Labels by quadrant of (x0, x1): needs a depth-2 tree.
  Matrix x{16, 2};
  std::vector<std::size_t> labels(16);
  std::size_t row = 0;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      x(row, 0) = static_cast<double>(a);
      x(row, 1) = static_cast<double>(b);
      labels[row] = static_cast<std::size_t>((a < 2 ? 0 : 2) + (b < 2 ? 0 : 1));
      ++row;
    }
  }
  CartOptions opts;
  opts.min_samples_leaf = 1;
  opts.min_samples_split = 2;
  const auto tree = Cart::fit(x, labels, opts);
  EXPECT_EQ(tree.training_accuracy(), 1.0);
  EXPECT_EQ(tree.predict(std::vector<double>{0.5, 3.0}), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0, 0.0}), 2u);
  EXPECT_EQ(tree.predict(std::vector<double>{3.0, 3.0}), 3u);
}

TEST(Cart, MaxDepthLimitsTree) {
  Rng rng{55};
  Matrix x{64, 1};
  std::vector<std::size_t> labels(64);
  for (std::size_t i = 0; i < 64; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    labels[i] = rng.uniform_index(4);
  }
  CartOptions opts;
  opts.max_depth = 2;
  opts.min_samples_leaf = 1;
  const auto tree = Cart::fit(x, labels, opts);
  EXPECT_LE(tree.depth(), 2u);
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(Cart, MinSamplesLeafRespected) {
  Matrix x{10, 1};
  std::vector<std::size_t> labels(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    labels[i] = i == 0 ? 0u : 1u;  // lone outlier class
  }
  CartOptions opts;
  opts.min_samples_leaf = 3;
  const auto tree = Cart::fit(x, labels, opts);
  // Splitting off the single item 0 would make a leaf of size 1 < 3, and
  // any other split keeps impurity on one side, so allowed splits must
  // respect the leaf minimum (the tree may stay a stump).
  EXPECT_LT(tree.training_accuracy(), 1.0);
}

TEST(Cart, PureInputStaysLeaf) {
  Matrix x{5, 2};
  const std::vector<std::size_t> labels(5, 2);  // all class 2
  const auto tree = Cart::fit(x, labels);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0, 0.0}), 2u);
}

TEST(Cart, PredictProbaSumsToOne) {
  Rng rng{66};
  Matrix x{40, 2};
  std::vector<std::size_t> labels(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
    labels[i] = rng.uniform_index(3);
  }
  const auto tree = Cart::fit(x, labels);
  const auto proba = tree.predict_proba(std::vector<double>{0.5, 0.5});
  double sum = 0.0;
  for (const double p : proba) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Cart, DescribeUsesFeatureNames) {
  Matrix x{8, 1};
  std::vector<std::size_t> labels(8);
  for (std::size_t i = 0; i < 8; ++i) {
    x(i, 0) = static_cast<double>(i);
    labels[i] = i < 4 ? 0 : 1;
  }
  const auto tree = Cart::fit(x, labels, {}, {"L2_miss_rate"});
  const std::string text = tree.describe();
  EXPECT_NE(text.find("L2_miss_rate"), std::string::npos);
  EXPECT_NE(text.find("cluster 0"), std::string::npos);
  EXPECT_NE(text.find("cluster 1"), std::string::npos);
}

TEST(Cart, FeatureNameCountValidated) {
  Matrix x{4, 2};
  const std::vector<std::size_t> labels{0, 0, 1, 1};
  EXPECT_THROW(Cart::fit(x, labels, {}, {"only_one"}), Error);
}

TEST(Cart, PredictValidatesFeatureCount) {
  Matrix x{4, 2};
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  x(3, 0) = 4;
  const std::vector<std::size_t> labels{0, 0, 1, 1};
  CartOptions opts;
  opts.min_samples_leaf = 1;
  const auto tree = Cart::fit(x, labels, opts);
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), Error);
}

TEST(Cart, UntrainedTreeThrows) {
  const Cart tree;
  EXPECT_THROW(tree.predict(std::vector<double>{}), Error);
}

TEST(Cart, SerializeParseRoundTrip) {
  Rng rng{77};
  Matrix x{60, 3};
  std::vector<std::size_t> labels(60);
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = rng.uniform(0.0, 1.0);
    }
    labels[i] = x(i, 0) > 0.5 ? (x(i, 1) > 0.5 ? 2u : 1u) : 0u;
  }
  const auto tree = Cart::fit(x, labels, {}, {"ipc", "l2_rate", "power"});
  const auto restored = Cart::parse(tree.serialize());
  EXPECT_EQ(restored.node_count(), tree.node_count());
  EXPECT_EQ(restored.depth(), tree.depth());
  EXPECT_EQ(restored.describe(), tree.describe());
  // Predictions must be identical on fresh samples.
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> probe{rng.uniform(0.0, 1.0),
                                    rng.uniform(0.0, 1.0),
                                    rng.uniform(0.0, 1.0)};
    EXPECT_EQ(restored.predict(probe), tree.predict(probe));
  }
}

TEST(Cart, ParseRejectsGarbage) {
  EXPECT_THROW(Cart::parse(""), Error);
  EXPECT_THROW(Cart::parse("1 2\n"), Error);
}

// Property sweep: trained trees respect structural invariants and are
// consistent with their own training data above chance.
class CartProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CartProperty, StructuralInvariants) {
  Rng rng{GetParam()};
  const std::size_t n = 20 + rng.uniform_index(80);
  const std::size_t n_classes = 2 + rng.uniform_index(4);
  Matrix x{n, 4};
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      x(i, j) = rng.uniform(0.0, 1.0);
    }
    // Ground truth depends on feature 0 only -> learnable signal.
    labels[i] = std::min<std::size_t>(
        n_classes - 1,
        static_cast<std::size_t>(x(i, 0) * static_cast<double>(n_classes)));
  }
  const auto tree = Cart::fit(x, labels);
  EXPECT_GE(tree.depth(), 1u);
  EXPECT_LE(tree.depth(), CartOptions{}.max_depth);
  EXPECT_EQ(tree.leaf_count() + (tree.leaf_count() - 1), tree.node_count())
      << "binary tree: internal nodes = leaves - 1";
  EXPECT_GT(tree.training_accuracy(), 1.0 / static_cast<double>(n_classes));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CartProperty,
                         ::testing::Range<std::uint64_t>(900, 915));

}  // namespace
}  // namespace acsel::stats
