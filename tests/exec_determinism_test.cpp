// The determinism contract of the parallel offline pipeline: every stage
// distributed over an Executor — characterization sweeps, the
// dissimilarity matrix, training, LOOCV, bootstrap — must produce
// *bitwise-identical* results at every thread count, because each task
// derives its state purely from its index (cloned machine, own Rng
// stream) and reductions happen on the caller in index order.
//
// Each check runs the same stage serially (inline executor), on a
// worker-less pool, and on pools of 1, 2 and 8 threads, then compares
// doubles by bit pattern and models by serialized text. Any scheduling
// dependence — a shared RNG, an unordered reduction, a task writing
// outside its slot — shows up here as a hard failure.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "eval/bootstrap.h"
#include "eval/characterize.h"
#include "eval/protocol.h"
#include "exec/thread_pool.h"
#include "pareto/dissimilarity.h"
#include "soc/machine.h"
#include "workloads/suite.h"

namespace acsel::exec {
namespace {

// Reduced two-benchmark suite: enough kernels for clustering and a
// two-fold LOOCV while keeping five full pipeline runs fast.
workloads::Suite reduced_suite() {
  return workloads::Suite{
      {workloads::smc_benchmark(), workloads::comd_benchmark()}};
}

constexpr std::uint64_t kSeed = 90210;

/// Exact comparison that distinguishes 0.0 from -0.0 and never tolerates
/// an ULP: "deterministic" here means the same bits, not close values.
std::uint64_t bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

/// Thread counts under test; 0 is the worker-less inline pool.
const std::size_t kThreadCounts[] = {0, 1, 2, 8};

class DeterminismTest : public ::testing::Test {
 protected:
  // The serial-executor run is the reference every pool is held to.
  static void SetUpTestSuite() {
    machine_ = new soc::Machine{soc::MachineSpec{}, kSeed};
    suite_ = new workloads::Suite{reduced_suite()};
    reference_ = new std::vector<core::KernelCharacterization>{
        eval::characterize(*machine_, *suite_)};
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete suite_;
    delete machine_;
  }

  static soc::Machine* machine_;
  static workloads::Suite* suite_;
  static std::vector<core::KernelCharacterization>* reference_;
};

soc::Machine* DeterminismTest::machine_ = nullptr;
workloads::Suite* DeterminismTest::suite_ = nullptr;
std::vector<core::KernelCharacterization>* DeterminismTest::reference_ =
    nullptr;

TEST_F(DeterminismTest, CharacterizationIsBitwiseIdentical) {
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool{threads};
    const auto parallel =
        eval::characterize(*machine_, *suite_, {}, pool);
    ASSERT_EQ(parallel.size(), reference_->size()) << threads;
    for (std::size_t k = 0; k < parallel.size(); ++k) {
      const auto& serial_kernel = (*reference_)[k];
      const auto& parallel_kernel = parallel[k];
      EXPECT_EQ(parallel_kernel.instance_id, serial_kernel.instance_id);
      const auto serial_powers = serial_kernel.powers();
      const auto parallel_powers = parallel_kernel.powers();
      const auto serial_perf = serial_kernel.performances();
      const auto parallel_perf = parallel_kernel.performances();
      ASSERT_EQ(parallel_powers.size(), serial_powers.size());
      for (std::size_t c = 0; c < serial_powers.size(); ++c) {
        EXPECT_EQ(bits(parallel_powers[c]), bits(serial_powers[c]))
            << threads << " threads, " << serial_kernel.instance_id
            << " config " << c;
        EXPECT_EQ(bits(parallel_perf[c]), bits(serial_perf[c]))
            << threads << " threads, " << serial_kernel.instance_id
            << " config " << c;
      }
    }
  }
}

TEST_F(DeterminismTest, DissimilarityMatrixIsBitwiseIdentical) {
  std::vector<pareto::ParetoFrontier> fronts;
  fronts.reserve(reference_->size());
  for (const auto& kernel : *reference_) {
    fronts.push_back(kernel.frontier());
  }
  const linalg::Matrix serial = pareto::dissimilarity_matrix(fronts);
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool{threads};
    const linalg::Matrix parallel =
        pareto::dissimilarity_matrix(fronts, {}, pool);
    ASSERT_EQ(parallel.rows(), serial.rows());
    ASSERT_EQ(parallel.cols(), serial.cols());
    const auto serial_data = serial.data();
    const auto parallel_data = parallel.data();
    for (std::size_t i = 0; i < serial_data.size(); ++i) {
      EXPECT_EQ(bits(parallel_data[i]), bits(serial_data[i]))
          << threads << " threads, cell " << i;
    }
  }
}

TEST_F(DeterminismTest, SerializedTrainedModelIsByteIdentical) {
  // serialize() prints coefficients with 17 significant digits, so equal
  // text means equal doubles: the whole frontier -> cluster -> fit -> CART
  // pipeline is scheduling-independent.
  const std::string serial = core::train(*reference_).model.serialize();
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool{threads};
    const std::string parallel =
        core::train(*reference_, {}, pool).model.serialize();
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST_F(DeterminismTest, LoocvCaseTableIsBitwiseIdentical) {
  const eval::EvaluationResult serial =
      eval::run_loocv({.machine = *machine_}, *suite_);
  ASSERT_FALSE(serial.cases.empty());
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool{threads};
    const eval::EvaluationResult parallel =
        eval::run_loocv({.machine = *machine_, .executor = pool}, *suite_);
    EXPECT_EQ(parallel.groups, serial.groups);
    ASSERT_EQ(parallel.cases.size(), serial.cases.size()) << threads;
    for (std::size_t i = 0; i < serial.cases.size(); ++i) {
      const eval::CaseResult& a = serial.cases[i];
      const eval::CaseResult& b = parallel.cases[i];
      EXPECT_EQ(b.instance_id, a.instance_id)
          << threads << " threads, case " << i;
      EXPECT_EQ(b.method, a.method);
      EXPECT_EQ(bits(b.cap_w), bits(a.cap_w));
      EXPECT_EQ(b.under_limit, a.under_limit);
      EXPECT_EQ(bits(b.perf_vs_oracle), bits(a.perf_vs_oracle))
          << threads << " threads, case " << i << " ("
          << a.instance_id << ")";
      EXPECT_EQ(bits(b.power_vs_oracle), bits(a.power_vs_oracle))
          << threads << " threads, case " << i << " ("
          << a.instance_id << ")";
    }
  }
}

TEST_F(DeterminismTest, BootstrapIntervalsAreBitwiseIdentical) {
  const eval::EvaluationResult result =
      eval::run_loocv({.machine = *machine_}, *suite_);
  eval::BootstrapOptions options;
  options.replicates = 100;
  const eval::BootstrapAggregate serial =
      eval::bootstrap_method(result.cases, eval::Method::Model, options);
  for (const std::size_t threads : kThreadCounts) {
    ThreadPool pool{threads};
    const eval::BootstrapAggregate parallel = eval::bootstrap_method(
        result.cases, eval::Method::Model, options, pool);
    for (const auto& [a, b] :
         {std::pair{serial.pct_under_limit, parallel.pct_under_limit},
          std::pair{serial.under_perf_pct, parallel.under_perf_pct},
          std::pair{serial.over_power_pct, parallel.over_power_pct}}) {
      EXPECT_EQ(bits(b.point), bits(a.point)) << threads << " threads";
      EXPECT_EQ(bits(b.lo), bits(a.lo)) << threads << " threads";
      EXPECT_EQ(bits(b.hi), bits(a.hi)) << threads << " threads";
    }
  }
}

TEST_F(DeterminismTest, ProgressCallbackCountsEveryFold) {
  // The callback arrives from worker threads in scheduling order, but the
  // count is monotone and ends at the fold total.
  ThreadPool pool{4};
  std::size_t last_done = 0;
  std::size_t total = 0;
  const eval::EvaluationResult result = eval::run_loocv(
      {.machine = *machine_,
       .executor = pool,
       .progress =
           [&](std::size_t done, std::size_t folds) {
             EXPECT_EQ(done, last_done + 1) << "count must be monotone";
             last_done = done;
             total = folds;
           }},
      *suite_);
  EXPECT_EQ(total, suite_->benchmarks().size());
  EXPECT_EQ(last_done, total);
  EXPECT_FALSE(result.cases.empty());
}

}  // namespace
}  // namespace acsel::exec
