// Tests for the offline trainer and the trained model's online path:
// clustering, regression quality, classification, prediction, and
// serialization. One shared characterization pass keeps the suite fast.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "hw/config_space.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::core {
namespace {

class ModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new soc::Machine{soc::MachineSpec{}, 7777};
    suite_ = new workloads::Suite{workloads::Suite::standard()};
    characterizations_ = new std::vector<KernelCharacterization>{
        eval::characterize(*machine_, *suite_)};
    TrainingResult result = train(*characterizations_);
    report_ = new TrainingReport{std::move(result.report)};
    model_ = new TrainedModel{std::move(result.model)};
  }

  static void TearDownTestSuite() {
    delete model_;
    delete report_;
    delete characterizations_;
    delete suite_;
    delete machine_;
  }

  static soc::Machine* machine_;
  static workloads::Suite* suite_;
  static std::vector<KernelCharacterization>* characterizations_;
  static TrainingReport* report_;
  static TrainedModel* model_;

  const KernelCharacterization& characterization(const std::string& id) {
    for (const auto& c : *characterizations_) {
      if (c.instance_id == id) {
        return c;
      }
    }
    throw Error{"no characterization: " + id};
  }
};

soc::Machine* ModelTest::machine_ = nullptr;
workloads::Suite* ModelTest::suite_ = nullptr;
std::vector<KernelCharacterization>* ModelTest::characterizations_ = nullptr;
TrainingReport* ModelTest::report_ = nullptr;
TrainedModel* ModelTest::model_ = nullptr;

TEST_F(ModelTest, TrainsFiveClusters) {
  EXPECT_EQ(model_->cluster_count(), 5u);  // §III-B
  ASSERT_EQ(report_->cluster_sizes.size(), 5u);
  for (const std::size_t size : report_->cluster_sizes) {
    EXPECT_GE(size, 1u);
  }
}

TEST_F(ModelTest, ClustersSpanMultipleBenchmarkInputs) {
  // §III-B: "Each cluster contains kernels from at least three of the
  // five benchmark/input combinations" — clusters must not be
  // single-benchmark artifacts. Check each cluster spans >= 2 groups.
  std::vector<std::set<std::string>> groups_in_cluster(
      model_->cluster_count());
  for (std::size_t i = 0; i < characterizations_->size(); ++i) {
    groups_in_cluster[report_->clustering.assignment[i]].insert(
        (*characterizations_)[i].group);
  }
  std::size_t multi_group = 0;
  for (const auto& groups : groups_in_cluster) {
    if (groups.size() >= 2) {
      ++multi_group;
    }
  }
  EXPECT_GE(multi_group, 4u);
}

TEST_F(ModelTest, PowerRegressionsFitWell) {
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_GT(report_->power_r2[c], 0.6) << "cluster " << c;
  }
}

TEST_F(ModelTest, PerfRegressionsCaptureScaling) {
  double mean_cpu = 0.0;
  double mean_gpu = 0.0;
  for (std::size_t c = 0; c < 5; ++c) {
    mean_cpu += report_->perf_cpu_r2[c];
    mean_gpu += report_->perf_gpu_r2[c];
  }
  EXPECT_GT(mean_cpu / 5.0, 0.5);
  EXPECT_GT(mean_gpu / 5.0, 0.5);
}

TEST_F(ModelTest, TreeClassifiesTrainingKernelsWell) {
  EXPECT_GT(report_->tree_training_accuracy, 0.75);
  EXPECT_GE(model_->tree().depth(), 2u);
}

TEST_F(ModelTest, ClassifyMatchesTrainingAssignmentMostly) {
  std::size_t agree = 0;
  for (std::size_t i = 0; i < characterizations_->size(); ++i) {
    if (model_->classify((*characterizations_)[i].samples) ==
        report_->clustering.assignment[i]) {
      ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) /
                static_cast<double>(characterizations_->size()),
            0.75);
}

TEST_F(ModelTest, PredictionCoversAllConfigs) {
  const auto& c = characterization("LULESH-Large/CalcFBHourglassForce");
  const Prediction prediction = model_->predict(c.samples);
  const hw::ConfigSpace space;
  EXPECT_EQ(prediction.per_config.size(), space.size());
  EXPECT_LT(prediction.cluster, model_->cluster_count());
  EXPECT_FALSE(prediction.frontier.empty());
  for (const auto& estimate : prediction.per_config) {
    EXPECT_GT(estimate.power_w, 0.0);
    EXPECT_GT(estimate.performance, 0.0);
    EXPECT_GE(estimate.power_sigma, 0.0);
  }
}

TEST_F(ModelTest, PredictionsTrackTruthOnHeldInKernels) {
  // Training kernels should be predicted with sane relative error: median
  // per-config power error under 15%, performance within a factor ~2.
  const auto& c = characterization("SMC-Default/DiffusionFluxX");
  const Prediction prediction = model_->predict(c.samples);
  const hw::ConfigSpace space;
  std::size_t power_close = 0;
  std::size_t perf_close = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const double true_power = c.per_config[i].total_power_w();
    const double true_perf = c.per_config[i].performance();
    if (std::abs(prediction.per_config[i].power_w - true_power) /
            true_power <
        0.15) {
      ++power_close;
    }
    const double ratio = prediction.per_config[i].performance / true_perf;
    if (ratio > 0.5 && ratio < 2.0) {
      ++perf_close;
    }
  }
  EXPECT_GT(power_close, space.size() / 2);
  EXPECT_GT(perf_close, space.size() / 2);
}

TEST_F(ModelTest, PredictedFrontierOrdersDevicesSensibly) {
  // For a strongly GPU-friendly kernel the predicted top-performance
  // configuration must be a GPU one.
  const auto& c = characterization("LU-Large/lud");
  const Prediction prediction = model_->predict(c.samples);
  const hw::ConfigSpace space;
  EXPECT_EQ(
      space.at(prediction.frontier.best_performance().config_index).device,
      hw::Device::Gpu);
}

TEST_F(ModelTest, SerializeParseRoundTripsPredictions) {
  const std::string text = model_->serialize();
  const TrainedModel restored = TrainedModel::parse(text);
  EXPECT_EQ(restored.cluster_count(), model_->cluster_count());
  const auto& c = characterization("CoMD-EAM/ComputeForce");
  const Prediction a = model_->predict(c.samples);
  const Prediction b = restored.predict(c.samples);
  EXPECT_EQ(a.cluster, b.cluster);
  ASSERT_EQ(a.per_config.size(), b.per_config.size());
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_config[i].power_w, b.per_config[i].power_w);
    EXPECT_DOUBLE_EQ(a.per_config[i].performance,
                     b.per_config[i].performance);
  }
}

TEST_F(ModelTest, SaveLoadFile) {
  const std::string path = ::testing::TempDir() + "/acsel_model.txt";
  model_->save(path);
  const TrainedModel loaded = TrainedModel::load(path);
  EXPECT_EQ(loaded.cluster_count(), model_->cluster_count());
  EXPECT_THROW(TrainedModel::load("/nonexistent/model.txt"), Error);
}

TEST_F(ModelTest, ParseRejectsGarbage) {
  EXPECT_THROW(TrainedModel::parse(""), Error);
  EXPECT_THROW(TrainedModel::parse("not-a-model\n"), Error);
  EXPECT_THROW(TrainedModel::parse("acsel-model v1\nclusters 0\ntree\n"),
               Error);
}

TEST_F(ModelTest, TrainRejectsTooFewKernels) {
  std::vector<KernelCharacterization> few(characterizations_->begin(),
                                          characterizations_->begin() + 3);
  TrainerOptions options;
  options.clusters = 5;
  EXPECT_THROW(train(few, options), Error);
}

TEST_F(ModelTest, VarianceStabilizingTransformTrains) {
  // The §VI extension must train and predict without blowing up.
  TrainerOptions options;
  options.transform = linalg::ResponseTransform::Log1p;
  const TrainedModel model = train(*characterizations_, options).model;
  const auto& c = characterization("LU-Small/lud");
  const Prediction prediction = model.predict(c.samples);
  for (const auto& estimate : prediction.per_config) {
    EXPECT_TRUE(std::isfinite(estimate.power_w));
    EXPECT_TRUE(std::isfinite(estimate.performance));
    EXPECT_GT(estimate.power_w, 0.0);
  }
}

TEST_F(ModelTest, SingleClusterModelStillWorks) {
  TrainerOptions options;
  options.clusters = 1;
  const auto [model, report] = train(*characterizations_, options);
  EXPECT_EQ(model.cluster_count(), 1u);
  EXPECT_DOUBLE_EQ(report.tree_training_accuracy, 1.0);  // trivial tree
  const auto& c = characterization("SMC-Default/ChemistryRates");
  EXPECT_EQ(model.classify(c.samples), 0u);
}

}  // namespace
}  // namespace acsel::core
