// TrainedModel serialization round-trip: a model trained on a small suite
// must serialize -> parse into a model with *identical* predictions on
// every configuration (coefficients travel with 17 significant digits, so
// doubles survive bit-exactly), and truncated/corrupt input must fail
// loudly with acsel::Error rather than yield a silently different model.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "hw/config_space.h"
#include "soc/machine.h"
#include "util/error.h"
#include "util/strings.h"
#include "workloads/suite.h"

namespace acsel::core {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 1313};
    const auto suite = workloads::Suite::standard();
    characterizations_ = new std::vector<KernelCharacterization>{};
    for (const auto& instance : suite.instances()) {
      characterizations_->push_back(
          eval::characterize_instance(machine, instance));
      if (characterizations_->size() == 8) {
        break;
      }
    }
    TrainerOptions options;
    options.clusters = 3;
    model_ = new TrainedModel{train(*characterizations_, options).model};
  }

  static void TearDownTestSuite() {
    delete model_;
    delete characterizations_;
  }

  static std::vector<KernelCharacterization>* characterizations_;
  static TrainedModel* model_;
};

std::vector<KernelCharacterization>* SerializationTest::characterizations_ =
    nullptr;
TrainedModel* SerializationTest::model_ = nullptr;

TEST_F(SerializationTest, RoundTripPredictsIdenticallyOnEveryConfig) {
  const TrainedModel restored = TrainedModel::parse(model_->serialize());
  ASSERT_EQ(restored.cluster_count(), model_->cluster_count());
  const hw::ConfigSpace space;
  for (const auto& characterization : *characterizations_) {
    const Prediction original = model_->predict(characterization.samples);
    const Prediction parsed = restored.predict(characterization.samples);
    EXPECT_EQ(original.cluster, parsed.cluster)
        << characterization.instance_id;
    ASSERT_EQ(original.per_config.size(), space.size());
    ASSERT_EQ(parsed.per_config.size(), space.size());
    for (std::size_t i = 0; i < space.size(); ++i) {
      // Exact equality, not near-equality: serialization must not move
      // a single bit of any prediction.
      EXPECT_EQ(original.per_config[i].power_w,
                parsed.per_config[i].power_w)
          << characterization.instance_id << " config " << i;
      EXPECT_EQ(original.per_config[i].performance,
                parsed.per_config[i].performance)
          << characterization.instance_id << " config " << i;
      EXPECT_EQ(original.per_config[i].power_sigma,
                parsed.per_config[i].power_sigma);
      EXPECT_EQ(original.per_config[i].performance_sigma,
                parsed.per_config[i].performance_sigma);
    }
    // Identical estimates imply identical frontiers; spot-check anyway.
    ASSERT_EQ(original.frontier.size(), parsed.frontier.size());
    for (std::size_t p = 0; p < original.frontier.size(); ++p) {
      EXPECT_EQ(original.frontier.points()[p].config_index,
                parsed.frontier.points()[p].config_index);
    }
  }
}

TEST_F(SerializationTest, SecondRoundTripIsTextuallyStable) {
  // serialize(parse(serialize(m))) == serialize(m): the format is a
  // fixed point, so repeated save/load cycles cannot drift.
  const std::string once = model_->serialize();
  const std::string twice = TrainedModel::parse(once).serialize();
  EXPECT_EQ(once, twice);
}

TEST_F(SerializationTest, TruncatedInputIsRejected) {
  const std::string text = model_->serialize();
  // Cutting the text anywhere — mid-header, mid-cluster, mid-tree — must
  // throw, never construct a partial model.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, text.size() / 4, text.size() / 2,
        3 * text.size() / 4}) {
    EXPECT_THROW(TrainedModel::parse(text.substr(0, keep)), Error)
        << "kept " << keep << " of " << text.size() << " bytes";
  }
}

TEST_F(SerializationTest, CorruptInputIsRejected) {
  const std::string text = model_->serialize();
  {
    std::string bad = text;
    bad[0] = 'x';  // wrong header magic
    EXPECT_THROW(TrainedModel::parse(bad), Error);
  }
  {
    // Claim more clusters than the payload holds.
    std::string bad = text;
    const std::size_t pos = bad.find("clusters ");
    bad.replace(pos, bad.find('\n', pos) - pos, "clusters 99");
    EXPECT_THROW(TrainedModel::parse(bad), Error);
  }
  {
    // Non-numeric garbage inside a coefficient line.
    std::string bad = text;
    const std::size_t line_start = bad.find('\n', bad.find("clusters")) + 1;
    const std::size_t field = bad.find(' ', line_start + 2);
    bad.replace(field + 1, 3, "zzz");
    EXPECT_THROW(TrainedModel::parse(bad), Error);
  }
  {
    // Drop the tree section entirely.
    std::string bad = text.substr(0, text.find("tree\n"));
    EXPECT_THROW(TrainedModel::parse(bad), Error);
  }
}

TEST_F(SerializationTest, TruncatedFileFailsToLoad) {
  const std::string path =
      ::testing::TempDir() + "/acsel_truncated_model.txt";
  const std::string text = model_->serialize();
  {
    std::ofstream out{path, std::ios::binary};
    out << text.substr(0, text.size() / 3);
  }
  EXPECT_THROW(TrainedModel::load(path), Error);
  EXPECT_THROW(TrainedModel::load_shared(path), Error);
}

TEST_F(SerializationTest, LoadSharedMatchesLoad) {
  const std::string path = ::testing::TempDir() + "/acsel_shared_model.txt";
  model_->save(path);
  const auto shared = TrainedModel::load_shared(path);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->cluster_count(), model_->cluster_count());
  const auto& samples = (*characterizations_)[0].samples;
  EXPECT_EQ(shared->classify(samples), model_->classify(samples));
}

}  // namespace
}  // namespace acsel::core
