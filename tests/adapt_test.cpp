// Unit tests for the adapt building blocks: drift-detector edge cases
// (constant streams, NaN rejection, grace periods, exact threshold
// boundaries, reset), reservoir determinism, registry retention, the
// promoter's probation window, and the controller's input guards. The
// end-to-end drift -> retrain -> canary -> promote loop lives in
// adapt_canary_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "adapt/canary.h"
#include "adapt/controller.h"
#include "adapt/drift.h"
#include "adapt/promoter.h"
#include "adapt/reservoir.h"
#include "core/model.h"
#include "core/predictor.h"
#include "hw/config_space.h"
#include "pareto/frontier.h"
#include "profile/record.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "util/error.h"

namespace acsel {
namespace {

// ---- DriftDetector -----------------------------------------------------

TEST(DriftTest, PageHinkleyAbsorbsAConstantBias) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::PageHinkley,
                                 .threshold = 1.0,
                                 .delta = 0.0,
                                 .grace_samples = 0}};
  // A constant residual stream means the model is *consistently* wrong —
  // Page-Hinkley treats that as the norm and never fires.
  for (int i = 0; i < 500; ++i) {
    detector.feed(0.75);
  }
  EXPECT_FALSE(detector.fired());
  EXPECT_NEAR(detector.score(), 0.0, 1e-12);
  EXPECT_EQ(detector.samples(), 500u);
}

TEST(DriftTest, CusumFiresOnASustainedBias) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::Cusum,
                                 .threshold = 5.0,
                                 .delta = 0.005,
                                 .grace_samples = 0}};
  // CUSUM references zero, so the same constant bias accumulates.
  int fired_at = -1;
  for (int i = 0; i < 100; ++i) {
    if (detector.feed(0.5)) {
      fired_at = i;
      break;
    }
  }
  // 0.495 per sample crosses 5.0 on the 11th sample.
  EXPECT_EQ(fired_at, 10);
}

TEST(DriftTest, PageHinkleyFiresOnAChangePoint) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::PageHinkley,
                                 .threshold = 5.0,
                                 .delta = 0.005,
                                 .grace_samples = 30}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(detector.feed(0.0));
  }
  // Step shift: residuals jump to 1.0 and stay there.
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) {
    fired = detector.feed(1.0);
  }
  EXPECT_TRUE(fired);
  EXPECT_GT(detector.score(), 1.0);
}

TEST(DriftTest, DownwardShiftsFireTheOtherSide) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::PageHinkley,
                                 .threshold = 5.0,
                                 .delta = 0.005,
                                 .grace_samples = 0}};
  for (int i = 0; i < 50; ++i) {
    detector.feed(0.0);
  }
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) {
    fired = detector.feed(-1.0);
  }
  EXPECT_TRUE(fired);
}

TEST(DriftTest, GracePeriodSuppressesEarlyFirings) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::Cusum,
                                 .threshold = 1.0,
                                 .delta = 0.0,
                                 .grace_samples = 100}};
  // The statistic is far past the threshold after a handful of samples,
  // but the detector holds its fire until the grace period has passed.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(detector.feed(1.0)) << "sample " << i;
  }
  EXPECT_GT(detector.score(), 1.0);
  EXPECT_TRUE(detector.feed(1.0));  // sample 101: grace over
}

TEST(DriftTest, ThresholdBoundaryIsStrict) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::Cusum,
                                 .threshold = 10.0,
                                 .delta = 0.0,
                                 .grace_samples = 0}};
  // Ten unit residuals land the statistic exactly *at* the threshold:
  // firing requires strictly exceeding it.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(detector.feed(1.0)) << "sample " << i;
  }
  EXPECT_DOUBLE_EQ(detector.score(), 1.0);
  EXPECT_TRUE(detector.feed(1.0));  // 11.0 > 10.0
}

TEST(DriftTest, NonFiniteResidualsAreRejectedNotFolded) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::Cusum,
                                 .threshold = 5.0,
                                 .delta = 0.0,
                                 .grace_samples = 0}};
  detector.feed(1.0);
  const double score_before = detector.score();
  detector.feed(std::numeric_limits<double>::quiet_NaN());
  detector.feed(std::numeric_limits<double>::infinity());
  detector.feed(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(detector.rejected(), 3u);
  EXPECT_EQ(detector.samples(), 1u);  // garbage never counts as evidence
  EXPECT_DOUBLE_EQ(detector.score(), score_before);
  EXPECT_FALSE(detector.fired());
}

TEST(DriftTest, FiredStateIsStickyUntilReset) {
  adapt::DriftDetector detector{{.method = adapt::DriftDetector::Method::Cusum,
                                 .threshold = 1.0,
                                 .delta = 0.0,
                                 .grace_samples = 0}};
  detector.feed(2.0);
  ASSERT_TRUE(detector.fired());
  // Perfectly calibrated residuals afterwards do not un-fire it.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(detector.feed(0.0));
  }
  detector.reset();
  EXPECT_FALSE(detector.fired());
  EXPECT_EQ(detector.samples(), 0u);
  EXPECT_EQ(detector.rejected(), 0u);
  EXPECT_DOUBLE_EQ(detector.score(), 0.0);
  // The reset detector accumulates fresh evidence from scratch.
  EXPECT_TRUE(detector.feed(2.0));
}

TEST(DriftTest, OptionsAreValidated) {
  EXPECT_THROW(adapt::DriftDetector({.threshold = 0.0}), Error);
  EXPECT_THROW(adapt::DriftDetector({.threshold = -1.0}), Error);
  EXPECT_THROW(adapt::DriftDetector({.threshold = std::nan("")}), Error);
  EXPECT_THROW(
      adapt::DriftDetector({.threshold = 1.0, .delta = -0.1}), Error);
}

// ---- SampleReservoir ---------------------------------------------------

core::KernelCharacterization labelled(int index) {
  core::KernelCharacterization sample;
  sample.instance_id = "kernel-" + std::to_string(index);
  return sample;
}

TEST(ReservoirTest, FillsToCapacityThenDisplacesUniformly) {
  adapt::SampleReservoir reservoir{{.capacity = 8, .seed = 42}};
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(reservoir.offer(labelled(i)));  // always stored while empty
  }
  EXPECT_EQ(reservoir.size(), 8u);
  std::uint64_t displaced = 0;
  for (int i = 8; i < 200; ++i) {
    displaced += reservoir.offer(labelled(i)) ? 1u : 0u;
  }
  EXPECT_EQ(reservoir.size(), 8u);  // bounded forever
  EXPECT_EQ(reservoir.seen(), 200u);
  // Algorithm R keeps offer n with probability capacity/(n+1): of 192
  // post-fill offers roughly 8 * ln(200/8) = 26 land. Any uniform
  // sampler lands well inside [5, 80].
  EXPECT_GT(displaced, 5u);
  EXPECT_LT(displaced, 80u);
  // Late offers are present: the reservoir is not a frozen prefix.
  bool any_late = false;
  for (const auto& item : reservoir.items()) {
    any_late = any_late || item.instance_id > "kernel-7";
  }
  EXPECT_TRUE(any_late);
}

TEST(ReservoirTest, SameSeedSameStreamSameContents) {
  adapt::SampleReservoir a{{.capacity = 4, .seed = 7}};
  adapt::SampleReservoir b{{.capacity = 4, .seed = 7}};
  for (int i = 0; i < 100; ++i) {
    a.offer(labelled(i));
    b.offer(labelled(i));
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.items()[i].instance_id, b.items()[i].instance_id) << i;
  }
}

TEST(ReservoirTest, DifferentSeedsDiverge) {
  adapt::SampleReservoir a{{.capacity = 4, .seed = 7}};
  adapt::SampleReservoir b{{.capacity = 4, .seed = 8}};
  for (int i = 0; i < 100; ++i) {
    a.offer(labelled(i));
    b.offer(labelled(i));
  }
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a.items()[i].instance_id != b.items()[i].instance_id;
  }
  EXPECT_TRUE(differs);
}

TEST(ReservoirTest, ClearRestartsTheStream) {
  adapt::SampleReservoir reservoir{{.capacity = 4, .seed = 7}};
  for (int i = 0; i < 50; ++i) {
    reservoir.offer(labelled(i));
  }
  reservoir.clear();
  EXPECT_EQ(reservoir.size(), 0u);
  EXPECT_EQ(reservoir.seen(), 0u);
  // Refilling replays the same decisions as a fresh reservoir.
  adapt::SampleReservoir fresh{{.capacity = 4, .seed = 7}};
  for (int i = 0; i < 50; ++i) {
    reservoir.offer(labelled(i));
    fresh.offer(labelled(i));
  }
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(reservoir.items()[i].instance_id, fresh.items()[i].instance_id);
  }
}

// ---- ModelRegistry retention -------------------------------------------

TEST(RegistryRetentionTest, UnboundedByDefault) {
  serve::ModelRegistry registry;
  for (int i = 0; i < 10; ++i) {
    registry.publish(core::make_predictor(core::TrainedModel{}));
  }
  EXPECT_EQ(registry.version_count(), 10u);
  EXPECT_EQ(registry.pruned(), 0u);
}

TEST(RegistryRetentionTest, RetainLimitPrunesOldestVersions) {
  serve::ModelRegistry registry{{.retain_limit = 3}};
  for (int i = 0; i < 8; ++i) {
    registry.publish(core::make_predictor(core::TrainedModel{}));
  }
  EXPECT_EQ(registry.version_count(), 3u);
  EXPECT_EQ(registry.pruned(), 5u);
  EXPECT_EQ(registry.versions(), (std::vector<std::uint64_t>{6, 7, 8}));
  EXPECT_EQ(registry.current().version, 8u);
  // The pruned versions are really gone; the retained ones resolve.
  EXPECT_EQ(registry.get(1), nullptr);
  EXPECT_NE(registry.get(6), nullptr);
}

TEST(RegistryRetentionTest, RollbackTargetSurvivesPruning) {
  serve::ModelRegistry registry{{.retain_limit = 2}};
  for (int i = 0; i < 6; ++i) {
    registry.publish(core::make_predictor(core::TrainedModel{}));
  }
  EXPECT_EQ(registry.version_count(), 2u);
  // previous_of(current) was never pruned, so rollback still works.
  EXPECT_EQ(registry.previous_of(registry.current().version).version, 5u);
  EXPECT_EQ(registry.rollback(), 5u);
  EXPECT_EQ(registry.current().version, 5u);
}

TEST(RegistryRetentionTest, LimitsBelowTwoAreClampedToTwo) {
  serve::ModelRegistry registry{{.retain_limit = 1}};
  for (int i = 0; i < 5; ++i) {
    registry.publish(core::make_predictor(core::TrainedModel{}));
  }
  // A limit of 1 would prune the rollback target; it is treated as 2.
  EXPECT_EQ(registry.version_count(), 2u);
  EXPECT_NO_THROW(registry.rollback());
}

TEST(RegistryRetentionTest, RolledBackCurrentIsNeverPruned) {
  serve::ModelRegistry registry{{.retain_limit = 2}};
  registry.publish(core::make_predictor(core::TrainedModel{}));
  registry.publish(core::make_predictor(core::TrainedModel{}));
  registry.rollback();  // current is now the *older* of the two
  ASSERT_EQ(registry.current().version, 1u);
  // Publishing more versions prunes history, but never past current.
  registry.publish(core::make_predictor(core::TrainedModel{}));
  EXPECT_NE(registry.get(registry.current().version), nullptr);
  EXPECT_EQ(registry.current().version, 3u);
}

// ---- Promoter ----------------------------------------------------------

std::shared_ptr<const core::TrainedModel> dummy_model() {
  return std::make_shared<const core::TrainedModel>();
}

TEST(PromoterTest, CleanProbationKeepsThePromotedModel) {
  serve::ModelRegistry registry;
  registry.publish(core::make_predictor(core::TrainedModel{}));  // v1: the incumbent
  adapt::Promoter promoter{registry,
                           {.probation_observations = 4, .rollback_margin = 0.1}};
  EXPECT_EQ(promoter.promote(dummy_model(), 0.2), 2u);
  EXPECT_TRUE(promoter.in_probation());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(promoter.observe_live_error(0.25));  // within margin
  }
  EXPECT_FALSE(promoter.in_probation());
  EXPECT_EQ(registry.current().version, 2u);
  EXPECT_EQ(promoter.promotions(), 1u);
  EXPECT_EQ(promoter.rollbacks(), 0u);
}

TEST(PromoterTest, BrokenPromiseRollsBack) {
  serve::ModelRegistry registry;
  registry.publish(core::make_predictor(core::TrainedModel{}));
  adapt::Promoter promoter{registry,
                           {.probation_observations = 4, .rollback_margin = 0.1}};
  promoter.promote(dummy_model(), 0.1);
  bool rolled_back = false;
  for (int i = 0; i < 4; ++i) {
    rolled_back = promoter.observe_live_error(0.5);  // far above the promise
  }
  EXPECT_TRUE(rolled_back);
  EXPECT_EQ(registry.current().version, 1u);
  EXPECT_EQ(promoter.rollbacks(), 1u);
  EXPECT_FALSE(promoter.in_probation());
}

TEST(PromoterTest, RollbackYieldsWhenCurrentMovedElsewhere) {
  serve::ModelRegistry registry;
  registry.publish(core::make_predictor(core::TrainedModel{}));
  adapt::Promoter promoter{registry, {.probation_observations = 2}};
  promoter.promote(dummy_model(), 0.0);
  // An operator publishes v3 mid-probation: the promoter must not yank
  // the registry out from under them.
  registry.publish(core::make_predictor(core::TrainedModel{}));
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(promoter.observe_live_error(1.0));
  }
  EXPECT_EQ(registry.current().version, 3u);
  EXPECT_EQ(promoter.rollbacks(), 0u);
}

TEST(PromoterTest, ColdStartPromotionHasNoRollbackTarget) {
  serve::ModelRegistry registry;  // empty: the promotion is version 1
  adapt::Promoter promoter{registry, {.probation_observations = 2}};
  promoter.promote(dummy_model(), 0.0);
  // Even a badly broken promise cannot roll back past the only model.
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(promoter.observe_live_error(1.0));
  }
  EXPECT_EQ(registry.current().version, 1u);
  EXPECT_EQ(promoter.rollbacks(), 0u);
}

TEST(PromoterTest, NonFiniteErrorsAreIgnored) {
  serve::ModelRegistry registry;
  registry.publish(core::make_predictor(core::TrainedModel{}));
  adapt::Promoter promoter{registry, {.probation_observations = 2}};
  promoter.promote(dummy_model(), 0.0);
  EXPECT_FALSE(promoter.observe_live_error(std::nan("")));
  EXPECT_TRUE(promoter.in_probation());  // the window did not advance
}

// ---- selection_quality / CanaryEvaluator (model-free paths) ------------

TEST(CanaryTest, CorruptModelScoresAsTotalLoss) {
  const core::KernelCharacterization truth;  // never consulted: predict throws
  const adapt::SelectionQuality quality = adapt::selection_quality(
      core::TrainedModel{}, truth, 30.0, core::SchedulingGoal::MaxPerformance,
      {});
  EXPECT_TRUE(quality.failed);
  EXPECT_TRUE(quality.violation);
  EXPECT_DOUBLE_EQ(quality.error, 1.0);
}

TEST(CanaryTest, PredictFailureIsAHardReject) {
  adapt::CanaryOptions options;
  options.shadow_fraction = 1.0;  // score every offer
  options.min_evals = 4;
  auto corrupt = dummy_model();
  adapt::CanaryEvaluator canary{corrupt, dummy_model(), options};
  // The very first scored offer observes a predict() throw and rejects —
  // long before min_evals would allow an accept.
  canary.offer_labelled(core::KernelCharacterization{}, 30.0,
                        core::SchedulingGoal::MaxPerformance, {});
  ASSERT_TRUE(canary.decided());
  EXPECT_FALSE(canary.verdict().accepted);
  EXPECT_EQ(canary.verdict().reason, "candidate failed to predict");
  EXPECT_EQ(canary.verdict().candidate_failures, 1u);
}

TEST(CanaryTest, InsufficientEvidenceRejectsAtMaxObservations) {
  adapt::CanaryOptions options;
  options.shadow_fraction = 1e-12;  // effectively never scores
  options.min_evals = 4;
  options.max_observations = 16;
  adapt::CanaryEvaluator canary{dummy_model(), dummy_model(), options};
  for (int i = 0; i < 16; ++i) {
    ASSERT_FALSE(canary.decided()) << "offer " << i;
    canary.offer_labelled(core::KernelCharacterization{}, std::nullopt,
                          core::SchedulingGoal::MaxPerformance, {});
  }
  ASSERT_TRUE(canary.decided());
  EXPECT_FALSE(canary.verdict().accepted);
  EXPECT_EQ(canary.verdict().reason,
            "insufficient evidence before max_observations");
}

TEST(CanaryTest, OptionsAreValidated) {
  adapt::CanaryOptions bad_fraction;
  bad_fraction.shadow_fraction = 0.0;
  EXPECT_THROW(
      (adapt::CanaryEvaluator{dummy_model(), dummy_model(), bad_fraction}),
      Error);
  adapt::CanaryOptions bad_window;
  bad_window.min_evals = 64;
  bad_window.max_observations = 32;
  EXPECT_THROW(
      (adapt::CanaryEvaluator{dummy_model(), dummy_model(), bad_window}),
      Error);
  EXPECT_THROW((adapt::CanaryEvaluator{nullptr, dummy_model(), {}}), Error);
}

// ---- variance gate ------------------------------------------------------

/// A Predictor whose estimates are scripted: a (power, performance) ramp
/// with a tunable power bias and one power sigma — enough to steer both
/// the scheduler's choice and the canary's uncertainty accounting. A
/// positive bias makes the stub overestimate power and select a slower
/// configuration than the measured optimum (a real, nonzero error).
class StubPredictor final : public core::Predictor {
 public:
  StubPredictor(double power_sigma, double power_bias_w)
      : power_sigma_(power_sigma), power_bias_w_(power_bias_w) {}

  std::string_view kind() const override { return "stub"; }
  std::size_t cluster_count() const override { return 1; }
  const hw::ConfigSpace& config_space() const override { return space_; }
  std::size_t classify(const core::SamplePair&) const override { return 0; }

  core::Prediction predict(const core::SamplePair&) const override {
    core::Prediction prediction;
    const std::size_t n = space_.size();
    std::vector<double> power(n), perf(n);
    for (std::size_t i = 0; i < n; ++i) {
      power[i] = 10.0 + static_cast<double>(i) + power_bias_w_;
      perf[i] = 100.0 + static_cast<double>(i);
      prediction.per_config.push_back(
          {power[i], perf[i], power_sigma_, 0.0});
    }
    prediction.frontier = pareto::ParetoFrontier::build(power, perf);
    return prediction;
  }

  std::string serialize_body() const override { return ""; }

 private:
  double power_sigma_ = 0.0;
  double power_bias_w_ = 0.0;
  hw::ConfigSpace space_;
};

/// A truth whose measurements exactly match the stub's ramp: both models
/// select oracle-equal configurations, so acceptance hinges purely on the
/// margins under test.
core::KernelCharacterization ramp_truth() {
  core::KernelCharacterization truth;
  const hw::ConfigSpace space;
  for (std::size_t i = 0; i < space.size(); ++i) {
    profile::KernelRecord record;
    record.config = space.at(i);
    record.cpu_power_w = 10.0 + static_cast<double>(i);
    record.nbgpu_power_w = 0.0;
    record.time_ms = 1000.0 / (100.0 + static_cast<double>(i));
    truth.per_config.push_back(record);
  }
  return truth;
}

/// Drives one evaluator to a verdict against ramp_truth() under a 30 W
/// cap (the candidate is unbiased, the incumbent overestimates power by
/// 5 W, so the candidate beats it on selection error every round).
adapt::CanaryVerdict run_ramp_canary(double candidate_sigma,
                                     double incumbent_sigma,
                                     const adapt::CanaryOptions& options) {
  auto candidate =
      std::make_shared<const StubPredictor>(candidate_sigma, 0.0);
  auto incumbent =
      std::make_shared<const StubPredictor>(incumbent_sigma, 5.0);
  adapt::CanaryEvaluator canary{candidate, incumbent, options};
  const core::KernelCharacterization truth = ramp_truth();
  while (!canary.decided()) {
    canary.offer_labelled(truth, 30.0, core::SchedulingGoal::MaxPerformance,
                          {});
  }
  return canary.verdict();
}

TEST(CanaryTest, UncertainCandidateIsRejectedByTheVarianceGate) {
  // The candidate wins on error but states a far wider power sigma than
  // the incumbent — precisely the drift-risk shape the gate exists for.
  adapt::CanaryOptions options;
  options.shadow_fraction = 1.0;
  options.min_evals = 4;
  const adapt::CanaryVerdict verdict = run_ramp_canary(8.0, 0.5, options);
  EXPECT_FALSE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "too uncertain at selected configurations");
  EXPECT_LT(verdict.candidate_error, verdict.incumbent_error);
  EXPECT_DOUBLE_EQ(verdict.candidate_power_sigma, 8.0);
  EXPECT_DOUBLE_EQ(verdict.incumbent_power_sigma, 0.5);
}

TEST(CanaryTest, CandidateWithinTheUncertaintyMarginIsAccepted) {
  adapt::CanaryOptions options;
  options.shadow_fraction = 1.0;
  options.min_evals = 3;
  // 2.0 <= 1.0 * (1 + 1.0) + 0.25 under the default margins.
  const adapt::CanaryVerdict verdict = run_ramp_canary(2.0, 1.0, options);
  EXPECT_TRUE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "beat incumbent by margin");
  EXPECT_DOUBLE_EQ(verdict.candidate_power_sigma, 2.0);
  EXPECT_DOUBLE_EQ(verdict.incumbent_power_sigma, 1.0);
}

TEST(CanaryTest, NegativeUncertaintyMarginDisablesTheGate) {
  adapt::CanaryOptions options;
  options.shadow_fraction = 1.0;
  options.min_evals = 3;
  options.uncertainty_margin = -1.0;  // gate off
  const adapt::CanaryVerdict verdict = run_ramp_canary(50.0, 0.1, options);
  EXPECT_TRUE(verdict.accepted);
  EXPECT_EQ(verdict.reason, "beat incumbent by margin");
}

TEST(CanaryTest, SelectionQualityReportsTheSelectedConfigSigma) {
  const StubPredictor stub{3.5, 0.0};
  const adapt::SelectionQuality quality = adapt::selection_quality(
      stub, ramp_truth(), 30.0, core::SchedulingGoal::MaxPerformance, {});
  EXPECT_FALSE(quality.failed);
  EXPECT_DOUBLE_EQ(quality.error, 0.0);
  EXPECT_DOUBLE_EQ(quality.selected_power_sigma, 3.5);
}

// ---- AdaptController input guards --------------------------------------

TEST(AdaptControllerTest, ObservationsWithoutAModelAreCountedOnly) {
  obs::Registry metrics;
  serve::ModelRegistry registry;  // nothing published
  adapt::AdaptOptions options;
  options.metrics = &metrics;
  adapt::AdaptController controller{registry, exec::inline_executor(), {},
                                    options};
  adapt::Feedback feedback;
  feedback.predicted_power_w = 10.0;
  feedback.predicted_performance = 1.0;
  feedback.measured_power_w = 20.0;
  feedback.measured_performance = 0.5;
  controller.observe(feedback);
  const serve::AdaptStats stats = controller.adapt_stats();
  EXPECT_TRUE(stats.attached);
  EXPECT_EQ(stats.observations, 1u);
  EXPECT_EQ(stats.rejected_residuals, 0u);
  EXPECT_EQ(stats.drift_events, 0u);
  EXPECT_EQ(stats.reservoir_size, 0u);
}

TEST(AdaptControllerTest, NonFiniteFeedbackIsRejected) {
  obs::Registry metrics;
  serve::ModelRegistry registry;
  adapt::AdaptOptions options;
  options.metrics = &metrics;
  adapt::AdaptController controller{registry, exec::inline_executor(), {},
                                    options};
  adapt::Feedback feedback;
  feedback.predicted_power_w = std::nan("");
  feedback.measured_power_w = 10.0;
  controller.observe(feedback);
  feedback.predicted_power_w = 10.0;
  feedback.measured_performance = std::numeric_limits<double>::infinity();
  controller.observe(feedback);
  const serve::AdaptStats stats = controller.adapt_stats();
  EXPECT_EQ(stats.observations, 2u);
  EXPECT_EQ(stats.rejected_residuals, 2u);
  EXPECT_EQ(metrics.counter("adapt.rejected_residuals").value(), 2u);
}

TEST(AdaptControllerTest, BeginCanaryRequiresAnIncumbent) {
  obs::Registry metrics;
  serve::ModelRegistry registry;
  adapt::AdaptOptions options;
  options.metrics = &metrics;
  adapt::AdaptController controller{registry, exec::inline_executor(), {},
                                    options};
  EXPECT_THROW(controller.begin_canary(nullptr), Error);
  EXPECT_THROW(controller.begin_canary(dummy_model()), Error);  // no incumbent
  registry.publish(core::make_predictor(core::TrainedModel{}));
  controller.begin_canary(dummy_model());
  EXPECT_TRUE(controller.canary_active());
  EXPECT_THROW(controller.begin_canary(dummy_model()), Error);  // one at a time
}

}  // namespace
}  // namespace acsel
