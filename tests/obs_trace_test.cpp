// Tests for the span tracer: enable/disable fast path, RAII span
// recording, ring overflow accounting, multi-thread rings, and the Chrome
// trace-event JSON export — emitted, parsed back with the obs JSON
// parser, and checked for spec fields and span-nesting invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace acsel::obs {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.record_instant("ignored", "test");
  {
    Span span{tracer, "also ignored", "test"};
  }
  tracer.record_counter("ignored", 1.0);
  EXPECT_TRUE(tracer.collected().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, SpanRecordsCompleteEventWithDuration) {
  Tracer tracer;
  tracer.enable();
  const std::uint64_t before = tracer.now_ns();
  {
    Span span{tracer, "work", "test"};
  }
  const auto events = tracer.collected();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_EQ(events[0].type, TraceEventType::Complete);
  EXPECT_GE(events[0].ts_ns, before);
  EXPECT_GE(events[0].ts_ns + events[0].dur_ns, events[0].ts_ns);
}

TEST(Tracer, CollectedIsSortedByTimestamp) {
  Tracer tracer;
  tracer.enable();
  for (int i = 0; i < 100; ++i) {
    // Built with += rather than operator+: GCC 12's -Wrestrict
    // false-positives on string concatenation chains (PR 105651).
    std::string name = "e";
    name += std::to_string(i);
    tracer.record_instant(name, "test");
  }
  const auto events = tracer.collected();
  ASSERT_EQ(events.size(), 100u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
}

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  Tracer tracer{8};
  tracer.enable();
  for (int i = 0; i < 20; ++i) {
    tracer.record_instant(std::string{"e"} + std::to_string(i), "test");
  }
  const auto events = tracer.collected();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // The survivors are the 8 newest events, oldest-first.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].name,
              "e" + std::to_string(12 + i));
  }
}

TEST(Tracer, DropsSurfaceInTheGlobalMetricRegistry) {
  // Exporters watch obs.trace.dropped_events on the scrape path; every
  // ring overwrite must land there, not only in the tracer's own
  // dropped() accessor.
  Counter& counter = Registry::global().counter("obs.trace.dropped_events");
  const std::uint64_t before = counter.value();
  Tracer tracer{4};
  tracer.enable();
  for (int i = 0; i < 9; ++i) {
    tracer.record_instant("e", "test");
  }
  EXPECT_EQ(tracer.dropped(), 5u);
  EXPECT_EQ(counter.value(), before + 5u);
}

TEST(Tracer, ClearEmptiesRingsAndResetsDropCount) {
  Tracer tracer{4};
  tracer.enable();
  for (int i = 0; i < 10; ++i) {
    tracer.record_instant("e", "test");
  }
  tracer.clear();
  EXPECT_TRUE(tracer.collected().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.record_instant("after", "test");
  EXPECT_EQ(tracer.collected().size(), 1u);
}

TEST(Tracer, ThreadsGetDistinctTids) {
  Tracer tracer;
  tracer.enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 500; ++i) {
        Span span{tracer, "worker", "test"};
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto events = tracer.collected();
  ASSERT_EQ(events.size(), 1500u);
  std::map<int, int> per_tid;
  for (const TraceEvent& event : events) {
    ++per_tid[event.tid];
  }
  ASSERT_EQ(per_tid.size(), 3u);
  for (const auto& [tid, count] : per_tid) {
    EXPECT_EQ(count, 500);
  }
}

/// Emits a known event mix and parses the export back with the obs JSON
/// parser, checking the Chrome trace-event contract field by field.
TEST(ChromeTrace, RoundTripsThroughJsonParser) {
  Tracer tracer;
  tracer.enable();
  {
    Span outer{tracer, "outer", "test"};
    {
      Span inner{tracer, "inner \"quoted\"", "test"};
      tracer.record_instant("tick", "test");
    }
    tracer.record_counter("power_w", 17.25);
  }
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = JsonValue::parse(out.str());
  const auto& events = doc.at("traceEvents").items();
  ASSERT_EQ(events.size(), 4u);

  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& event : events) {
    by_name[event.at("name").as_string()] = &event;
    // Every event carries the required spec fields.
    EXPECT_NO_THROW(event.at("ph"));
    EXPECT_NO_THROW(event.at("ts"));
    EXPECT_NO_THROW(event.at("pid"));
    EXPECT_NO_THROW(event.at("tid"));
  }
  ASSERT_EQ(by_name.size(), 4u);
  EXPECT_EQ(by_name.at("outer")->at("ph").as_string(), "X");
  EXPECT_NO_THROW(by_name.at("outer")->at("dur"));
  EXPECT_EQ(by_name.at("inner \"quoted\"")->at("ph").as_string(), "X");
  EXPECT_EQ(by_name.at("tick")->at("ph").as_string(), "i");
  EXPECT_EQ(by_name.at("tick")->at("s").as_string(), "t");
  EXPECT_EQ(by_name.at("power_w")->at("ph").as_string(), "C");
  EXPECT_DOUBLE_EQ(
      by_name.at("power_w")->at("args").at("value").as_number(), 17.25);
}

/// Same-thread spans must nest: for any two complete events on one tid,
/// their [ts, ts+dur] intervals are either disjoint or one contains the
/// other — the invariant that makes the trace render as a flame graph.
TEST(ChromeTrace, SameThreadSpansNest) {
  Tracer tracer;
  tracer.enable();
  for (int i = 0; i < 10; ++i) {
    Span a{tracer, "a", "test"};
    Span b{tracer, "b", "test"};
    { Span c{tracer, "c", "test"}; }
    { Span d{tracer, "d", "test"}; }
  }
  tracer.disable();

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const JsonValue doc = JsonValue::parse(out.str());
  struct Interval {
    double begin;
    double end;
  };
  std::vector<Interval> spans;
  for (const JsonValue& event : doc.at("traceEvents").items()) {
    if (event.at("ph").as_string() == "X") {
      const double ts = event.at("ts").as_number();
      spans.push_back({ts, ts + event.at("dur").as_number()});
    }
  }
  ASSERT_EQ(spans.size(), 40u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const Interval& a = spans[i];
      const Interval& b = spans[j];
      const bool disjoint = a.end <= b.begin || b.end <= a.begin;
      const bool a_in_b = b.begin <= a.begin && a.end <= b.end;
      const bool b_in_a = a.begin <= b.begin && b.end <= a.end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "[" << a.begin << "," << a.end << ") vs [" << b.begin << ","
          << b.end << ")";
    }
  }
}

TEST(ChromeTrace, TimestampsAreMicrosecondsWithNanoPrecision) {
  Tracer tracer;
  tracer.enable();
  tracer.record_complete("fixed", "test", 1234567, 890);
  tracer.disable();
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  // 1234567 ns = 1234.567 us; 890 ns = 0.890 us — exact digits, no
  // floating-point rounding.
  EXPECT_NE(out.str().find("\"ts\": 1234.567"), std::string::npos);
  EXPECT_NE(out.str().find("\"dur\": 0.890"), std::string::npos);
}

#ifndef ACSEL_OBS_NO_TRACING
TEST(Macros, RecordIntoGlobalTracer) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.enable();
  {
    ACSEL_OBS_SPAN("macro_span", "test");
    ACSEL_OBS_INSTANT("macro_instant", "test");
  }
  ACSEL_OBS_COUNTER("macro_counter", 2.5);
  tracer.disable();
  const auto events = tracer.collected();
  tracer.clear();
  ASSERT_EQ(events.size(), 3u);
  bool saw_span = false;
  bool saw_instant = false;
  bool saw_counter = false;
  for (const TraceEvent& event : events) {
    saw_span |= event.name == "macro_span" &&
                event.type == TraceEventType::Complete;
    saw_instant |= event.name == "macro_instant" &&
                   event.type == TraceEventType::Instant;
    saw_counter |=
        event.name == "macro_counter" && event.value == 2.5;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}
#endif

}  // namespace
}  // namespace acsel::obs
