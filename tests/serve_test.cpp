// Tests for the concurrent configuration-selection service: registry
// hot-swap/rollback, bounded-queue shedding, the latency histogram, and —
// the core contract — N worker threads returning byte-identical decisions
// to the single-threaded reference loop, including across a mid-stream
// model hot-swap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "serve/codec.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  // One characterization pass shared by every test; two differently-shaped
  // models so a hot-swap visibly changes decisions.
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 4242};
    const auto suite = workloads::Suite::standard();
    characterizations_ = new std::vector<core::KernelCharacterization>{};
    for (const auto& instance : suite.instances()) {
      characterizations_->push_back(
          eval::characterize_instance(machine, instance));
      if (characterizations_->size() == 12) {
        break;
      }
    }
    core::TrainerOptions options_a;
    options_a.clusters = 3;
    model_a_ = core::make_predictor(
        core::train(*characterizations_, options_a).model);
    core::TrainerOptions options_b;
    options_b.clusters = 2;
    model_b_ = core::make_predictor(
        core::train(*characterizations_, options_b).model);
  }

  static void TearDownTestSuite() {
    model_b_.reset();
    model_a_.reset();
    delete characterizations_;
  }

  /// A deterministic mixed request stream: rotates kernels, goals and
  /// caps. `salt` decorrelates streams of different tests.
  static SelectRequest make_request(std::uint64_t id, std::uint64_t salt) {
    static const double caps[] = {18.0, 22.0, 26.0, 30.0, 40.0};
    const std::uint64_t mix = id * 2654435761u + salt;
    SelectRequest request;
    request.request_id = id;
    request.samples =
        (*characterizations_)[mix % characterizations_->size()].samples;
    request.goal = static_cast<core::SchedulingGoal>(mix % 3);
    if (mix % 7 != 0) {  // every 7th request is unconstrained
      request.cap_w = caps[mix % 5];
    }
    return request;
  }

  static std::vector<core::KernelCharacterization>* characterizations_;
  static core::PredictorPtr model_a_;
  static core::PredictorPtr model_b_;
};

std::vector<core::KernelCharacterization>* ServeTest::characterizations_ =
    nullptr;
core::PredictorPtr ServeTest::model_a_;
core::PredictorPtr ServeTest::model_b_;

// ---- registry ----------------------------------------------------------

TEST_F(ServeTest, RegistryPublishesAndResolvesVersions) {
  ModelRegistry registry;
  EXPECT_EQ(registry.current().version, 0u);
  EXPECT_EQ(registry.current().model, nullptr);
  EXPECT_EQ(registry.get(1), nullptr);

  const std::uint64_t v1 = registry.publish(model_a_);
  const std::uint64_t v2 = registry.publish(model_b_);
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(registry.current().version, v2);
  EXPECT_EQ(registry.version_count(), 2u);
  EXPECT_EQ(registry.get(v1)->cluster_count(), model_a_->cluster_count());
  EXPECT_EQ(registry.get(v2)->cluster_count(), model_b_->cluster_count());
  EXPECT_EQ(registry.versions(), (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(ServeTest, AdoptModelAcceptsNewerVersionsAndInterleavesWithPublish) {
  ModelRegistry registry;
  // Fleet hand-off: a coordinator assigns version numbers; the replica
  // adopts them as-is.
  EXPECT_EQ(registry.adopt_model(5, model_a_), 5u);
  EXPECT_EQ(registry.current().version, 5u);
  EXPECT_EQ(registry.adopt_model(9, model_b_), 9u);
  EXPECT_EQ(registry.current().version, 9u);
  EXPECT_EQ(registry.versions(), (std::vector<std::uint64_t>{5, 9}));
  // publish() continues from the adopted history.
  EXPECT_EQ(registry.publish(model_a_), 10u);
  // previous_of keeps its version-order meaning across adopted entries.
  EXPECT_EQ(registry.previous_of(10).version, 9u);
}

TEST_F(ServeTest, AdoptModelRejectsOlderVersionWithoutRollbackFlag) {
  ModelRegistry registry;
  registry.adopt_model(7, model_a_);
  // The version-skew guard: a lagging fleet node replaying an old
  // publish must not displace the newer model.
  EXPECT_THROW(registry.adopt_model(3, model_b_), Error);
  EXPECT_EQ(registry.current().version, 7u);
  EXPECT_EQ(registry.version_count(), 1u);
}

TEST_F(ServeTest, AdoptModelAllowRollbackOverridesTheGuard) {
  ModelRegistry registry;
  registry.adopt_model(7, model_a_);
  // Explicit operator override: the older version is adopted and becomes
  // current, inserted in version order.
  EXPECT_EQ(registry.adopt_model(3, model_b_, /*allow_rollback=*/true), 3u);
  EXPECT_EQ(registry.current().version, 3u);
  EXPECT_EQ(registry.versions(), (std::vector<std::uint64_t>{3, 7}));
  // The newer model is still resolvable; re-adopting it moves forward.
  EXPECT_EQ(registry.adopt_model(7, model_a_), 7u);
  EXPECT_EQ(registry.current().version, 7u);
  EXPECT_EQ(registry.version_count(), 2u);  // re-pointed, not duplicated
}

TEST_F(ServeTest, AdoptModelReAdoptingCurrentIsIdempotent) {
  ModelRegistry registry;
  registry.adopt_model(4, model_a_);
  EXPECT_EQ(registry.adopt_model(4, model_b_), 4u);  // no-op, keeps model
  EXPECT_EQ(registry.version_count(), 1u);
  EXPECT_EQ(registry.current().model->cluster_count(),
            model_a_->cluster_count());
}

TEST_F(ServeTest, RegistryRollbackStepsBack) {
  ModelRegistry registry;
  registry.publish(model_a_);
  const std::uint64_t v2 = registry.publish(model_b_);
  EXPECT_EQ(registry.current().version, v2);
  EXPECT_EQ(registry.rollback(), 1u);
  EXPECT_EQ(registry.current().version, 1u);
  // The rolled-back-from version stays resolvable for pinned requests.
  EXPECT_NE(registry.get(v2), nullptr);
  EXPECT_THROW(registry.rollback(), Error);
  // Publishing after a rollback continues the version sequence.
  EXPECT_EQ(registry.publish(model_b_), 3u);
  EXPECT_EQ(registry.current().version, 3u);
}

TEST_F(ServeTest, RegistryPublishFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/serve_registry_model.txt";
  model_a_->save(path);
  ModelRegistry registry;
  const std::uint64_t version = registry.publish_file(path);
  const auto loaded = registry.get(version);
  ASSERT_NE(loaded, nullptr);
  // The loaded model must reproduce the original's predictions exactly
  // (17-significant-digit serialization round-trips doubles bit-exactly).
  const auto& samples = (*characterizations_)[0].samples;
  const core::Prediction a = model_a_->predict(samples);
  const core::Prediction b = loaded->predict(samples);
  ASSERT_EQ(a.per_config.size(), b.per_config.size());
  for (std::size_t i = 0; i < a.per_config.size(); ++i) {
    EXPECT_EQ(a.per_config[i].power_w, b.per_config[i].power_w);
    EXPECT_EQ(a.per_config[i].performance, b.per_config[i].performance);
  }
}

// ---- bounded queue -----------------------------------------------------

TEST(ServeQueue, ShedsWhenFullAndDrainsOnClose) {
  BoundedQueue<int> queue{2};
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));  // full -> shed
  EXPECT_EQ(queue.size(), 2u);

  queue.close();
  EXPECT_FALSE(queue.try_push(4));  // closed -> shed
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 8), 1u);  // drains the remainder
  EXPECT_EQ(batch, (std::vector<int>{2}));
  EXPECT_EQ(queue.pop_batch(batch, 8), 0u);  // closed and empty
}

TEST(ServeQueue, PopBatchTakesAtMostMaxItems) {
  BoundedQueue<int> queue{8};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.try_push(i));
  }
  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 3), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.size(), 2u);
}

// ---- latency histogram -------------------------------------------------

TEST(ServeMetrics, HistogramBucketBoundsContainSamples) {
  for (const std::uint64_t nanos :
       {0ull, 1ull, 3ull, 4ull, 7ull, 100ull, 999ull, 1000ull, 123456ull,
        1000000ull, 987654321ull}) {
    const std::size_t bucket = LatencyHistogram::bucket_of(nanos);
    EXPECT_LE(nanos, LatencyHistogram::bucket_upper_nanos(bucket))
        << nanos;
    if (bucket + 1 < LatencyHistogram::kBuckets) {
      EXPECT_LT(LatencyHistogram::bucket_upper_nanos(bucket),
                LatencyHistogram::bucket_upper_nanos(bucket + 1));
    }
  }
}

TEST(ServeMetrics, HistogramQuantilesAreOrderedAndTight) {
  LatencyHistogram histogram;
  for (int i = 0; i < 99; ++i) {
    histogram.record(1000);  // ~1 us
  }
  histogram.record(1000000);  // one 1 ms outlier
  const auto snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 100u);
  // Quarter-octave buckets overestimate by < 28%.
  EXPECT_GE(snap.p50_us, 1.0);
  EXPECT_LE(snap.p50_us, 1.28);
  EXPECT_LE(snap.p50_us, snap.p99_us);
  EXPECT_EQ(snap.max_us, 1000.0);  // max is exact, not bucketed
}

// ---- server ------------------------------------------------------------

TEST_F(ServeTest, ServesNoModelPublishedWhenRegistryEmpty) {
  ModelRegistry registry;
  ServerOptions options;
  options.workers = 1;
  Server server{registry, options};
  const SelectResponse response = server.select(make_request(1, 0));
  EXPECT_EQ(response.status, ResponseStatus::NoModelPublished);
  EXPECT_EQ(response.request_id, 1u);
}

TEST_F(ServeTest, ServesUnknownModelVersion) {
  ModelRegistry registry;
  registry.publish(model_a_);
  ServerOptions options;
  options.workers = 1;
  Server server{registry, options};
  SelectRequest request = make_request(2, 0);
  request.model_version = 99;
  EXPECT_EQ(server.select(request).status,
            ResponseStatus::UnknownModelVersion);
}

TEST_F(ServeTest, SingleRequestMatchesReferenceExactly) {
  ModelRegistry registry;
  const std::uint64_t version = registry.publish(model_a_);
  ServerOptions options;
  options.workers = 2;
  Server server{registry, options};
  const SelectRequest request = make_request(3, 1);
  const SelectResponse served = server.select(request);
  const SelectResponse reference =
      serve_with_model(*model_a_, version, request, {});
  // Byte-identical: compare the encoded frames.
  std::vector<std::uint8_t> served_bytes;
  std::vector<std::uint8_t> reference_bytes;
  encode_response(served, served_bytes);
  encode_response(reference, reference_bytes);
  EXPECT_EQ(served_bytes, reference_bytes);
}

TEST_F(ServeTest, ConcurrentStreamMatchesReferenceAcrossHotSwap) {
  ModelRegistry registry;
  const std::uint64_t v1 = registry.publish(model_a_);

  ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 4096;
  options.max_batch = 16;
  Server server{registry, options};

  constexpr std::uint64_t kPerClient = 250;
  constexpr std::size_t kClients = 4;
  std::vector<std::pair<SelectRequest, std::future<SelectResponse>>>
      in_flight[kClients];
  std::atomic<std::uint64_t> submitted_count{0};
  std::atomic<std::uint64_t> v2{0};

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        SelectRequest request =
            make_request(c * kPerClient + i, 7 + c);
        // A slice of requests pins version 1 explicitly — they must be
        // served by v1 even after the swap.
        if (i % 11 == 0) {
          request.model_version = v1;
        }
        in_flight[c].emplace_back(request, server.submit(request));
        ++submitted_count;
      }
    });
  }
  // Hot-swap mid-stream, once roughly half the requests are in.
  std::thread swapper{[&] {
    while (submitted_count.load() < kClients * kPerClient / 2) {
      std::this_thread::yield();
    }
    v2.store(registry.publish(model_b_));
  }};
  for (auto& client : clients) {
    client.join();
  }
  swapper.join();

  std::size_t served_by_v2 = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    for (auto& [request, future] : in_flight[c]) {
      const SelectResponse response = future.get();
      ASSERT_EQ(response.status, ResponseStatus::Ok);
      // Responses must name a version the registry holds...
      const auto model = registry.get(response.model_version);
      ASSERT_NE(model, nullptr) << "version " << response.model_version;
      // ...honor explicit pins...
      if (request.model_version != 0) {
        EXPECT_EQ(response.model_version, request.model_version);
      }
      served_by_v2 += response.model_version == v2.load() ? 1 : 0;
      // ...and match the single-threaded reference loop byte for byte.
      const SelectResponse reference = serve_with_model(
          *model, response.model_version, request, server.options().scheduler);
      std::vector<std::uint8_t> served_bytes;
      std::vector<std::uint8_t> reference_bytes;
      encode_response(response, served_bytes);
      encode_response(reference, reference_bytes);
      ASSERT_EQ(served_bytes, reference_bytes)
          << "request " << request.request_id;
    }
  }
  // The swap happened mid-stream, so both versions must have served.
  EXPECT_GT(served_by_v2, 0u);
  EXPECT_LT(served_by_v2, kClients * kPerClient);

  const auto snapshot = server.metrics_snapshot();
  EXPECT_EQ(snapshot.submitted, kClients * kPerClient);
  EXPECT_EQ(snapshot.completed + snapshot.shed, snapshot.submitted);
  EXPECT_EQ(snapshot.shed, 0u);  // queue was deep enough for the stream
  EXPECT_EQ(snapshot.errors, 0u);
  EXPECT_GE(snapshot.batches, 1u);
  EXPECT_GE(snapshot.mean_batch, 1.0);
}

TEST_F(ServeTest, ShedsWithErrorWhenQueueIsFull) {
  ModelRegistry registry;
  registry.publish(model_a_);
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;  // nearly every burst submission sheds
  options.max_batch = 1;
  Server server{registry, options};

  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kPerClient = 100;
  std::atomic<std::uint64_t> shed_seen{0};
  std::atomic<std::uint64_t> ok_seen{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<SelectResponse>> futures;
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        futures.push_back(server.submit(make_request(c * kPerClient + i, 3)));
      }
      for (auto& future : futures) {
        const SelectResponse response = future.get();
        if (response.status == ResponseStatus::Shed) {
          ++shed_seen;
        } else if (response.status == ResponseStatus::Ok) {
          ++ok_seen;
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  // Every request resolved one way or the other; nothing hung or vanished.
  EXPECT_EQ(shed_seen + ok_seen, kClients * kPerClient);
  EXPECT_GT(shed_seen.load(), 0u);
  EXPECT_GT(ok_seen.load(), 0u);

  const auto snapshot = server.metrics_snapshot();
  EXPECT_EQ(snapshot.shed, shed_seen.load());
  EXPECT_EQ(snapshot.completed, ok_seen.load());
  EXPECT_EQ(snapshot.submitted, kClients * kPerClient);
}

TEST_F(ServeTest, SubmissionsAfterStopAreShed) {
  ModelRegistry registry;
  registry.publish(model_a_);
  ServerOptions options;
  options.workers = 1;
  Server server{registry, options};
  server.stop();
  EXPECT_EQ(server.select(make_request(5, 0)).status, ResponseStatus::Shed);
}

// ---- wire path ---------------------------------------------------------

TEST_F(ServeTest, ServeFrameRoundTripsThroughTheWire) {
  ModelRegistry registry;
  const std::uint64_t version = registry.publish(model_a_);
  ServerOptions options;
  options.workers = 2;
  Server server{registry, options};

  const SelectRequest request = make_request(6, 2);
  std::vector<std::uint8_t> frame;
  encode_request(request, frame);
  const std::vector<std::uint8_t> reply = server.serve_frame(frame);

  const Decoded decoded = decode_frame(reply);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  ASSERT_EQ(decoded.type, MessageType::SelectResponse);
  EXPECT_EQ(decoded.response.request_id, request.request_id);
  EXPECT_EQ(decoded.response.status, ResponseStatus::Ok);
  EXPECT_EQ(decoded.response.model_version, version);

  const SelectResponse reference =
      serve_with_model(*model_a_, version, request, {});
  EXPECT_EQ(decoded.response.config_index, reference.config_index);
  EXPECT_EQ(decoded.response.predicted_power_w,
            reference.predicted_power_w);
}

TEST_F(ServeTest, ServeFrameRejectsMalformedInput) {
  ModelRegistry registry;
  registry.publish(model_a_);
  ServerOptions options;
  options.workers = 1;
  Server server{registry, options};

  const std::vector<std::uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8,
                                          9, 10, 11, 12, 13};
  const std::vector<std::uint8_t> reply = server.serve_frame(garbage);
  const Decoded decoded = decode_frame(reply);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  EXPECT_EQ(decoded.response.status, ResponseStatus::MalformedRequest);

  // A response frame sent to the request endpoint is equally rejected.
  std::vector<std::uint8_t> response_frame;
  encode_response(SelectResponse{}, response_frame);
  const Decoded wrong_type = decode_frame(server.serve_frame(response_frame));
  ASSERT_EQ(wrong_type.status, DecodeStatus::Ok);
  EXPECT_EQ(wrong_type.response.status, ResponseStatus::MalformedRequest);
}

/// A StatsRequest frame answered over the wire returns the exact snapshot
/// the in-process registry reports — the remote-scrape parity contract.
TEST_F(ServeTest, StatsScrapeMatchesRegistry) {
  ModelRegistry registry;
  registry.publish(model_a_);
  ServerOptions options;
  options.workers = 2;
  Server server{registry, options};

  // Drive some traffic so the scraped counters are non-trivial.
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_EQ(server.select(make_request(i, 9)).status, ResponseStatus::Ok);
  }

  StatsRequest stats_request;
  stats_request.request_id = 77;
  std::vector<std::uint8_t> frame;
  encode_stats_request(stats_request, frame);
  const std::vector<std::uint8_t> reply = server.serve_frame(frame);

  const Decoded decoded = decode_frame(reply);
  ASSERT_EQ(decoded.status, DecodeStatus::Ok);
  ASSERT_EQ(decoded.type, MessageType::StatsResponse);
  EXPECT_EQ(decoded.stats_response.request_id, 77u);
  EXPECT_EQ(decoded.stats_response.status, ResponseStatus::Ok);
  // The server is idle (select() waited for each future), so the wire
  // snapshot and a fresh in-process snapshot must agree fieldwise.
  EXPECT_EQ(decoded.stats_response.metrics,
            server.stats_registry().snapshot());

  // Sanity: the scrape carried the real counters.
  bool saw_completed = false;
  for (const auto& metric : decoded.stats_response.metrics) {
    if (metric.name == "serve.completed") {
      saw_completed = true;
      EXPECT_EQ(metric.count, 16u);
    }
  }
  EXPECT_TRUE(saw_completed);

  // Scraping is read-only: a second scrape returns the same counters.
  const Decoded again = decode_frame(server.serve_frame(frame));
  ASSERT_EQ(again.status, DecodeStatus::Ok);
  EXPECT_EQ(again.stats_response.metrics, decoded.stats_response.metrics);
}

}  // namespace
}  // namespace acsel::serve
