// Fingerprint-keyed model serving, end to end: registry exact /
// nearest-architecture / unkeyed fallback, the version-collision guard,
// the server's model-mismatch accounting, the heterogeneous fleet's
// fingerprint-aware routing, and a single transfer-matrix cell (cliff
// detected, adaptation recovers).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "fleet/fleet.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"
#include "zoo/archetype.h"
#include "zoo/fingerprint.h"
#include "zoo/transfer.h"

namespace acsel::zoo {
namespace {

class ZooTransferTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 4242};
    const auto suite = workloads::Suite::standard();
    characterizations_ = new std::vector<core::KernelCharacterization>{};
    for (const auto& instance : suite.instances()) {
      characterizations_->push_back(
          eval::characterize_instance(machine, instance));
      if (characterizations_->size() == 8) {
        break;
      }
    }
    core::TrainerOptions options;
    options.clusters = 3;
    model_a_ = core::make_predictor(
        core::train(*characterizations_, options).model);
    options.clusters = 2;
    model_b_ = core::make_predictor(
        core::train(*characterizations_, options).model);
  }

  static void TearDownTestSuite() {
    model_b_.reset();
    model_a_.reset();
    delete characterizations_;
  }

  static HardwareFingerprint fingerprint(Archetype archetype) {
    return fingerprint_of(ArchetypeCatalog{90210}.spec(archetype));
  }

  static serve::SelectRequest keyed_request(
      std::uint64_t id, const HardwareFingerprint& fingerprint) {
    serve::SelectRequest request;
    request.request_id = id;
    request.fingerprint = fingerprint;
    request.samples =
        (*characterizations_)[id % characterizations_->size()].samples;
    return request;
  }

  static std::vector<core::KernelCharacterization>* characterizations_;
  static core::PredictorPtr model_a_;
  static core::PredictorPtr model_b_;
};

std::vector<core::KernelCharacterization>*
    ZooTransferTest::characterizations_ = nullptr;
core::PredictorPtr ZooTransferTest::model_a_;
core::PredictorPtr ZooTransferTest::model_b_;

// ----------------------------------------------------------- registry ---

TEST_F(ZooTransferTest, RegistryServesTheExactFingerprintMatch) {
  serve::ModelRegistry registry;
  const std::uint64_t version_a =
      registry.publish(model_a_, fingerprint(Archetype::Trinity));
  registry.publish(model_b_, fingerprint(Archetype::HpcGpu));
  const serve::FingerprintMatch match =
      registry.current_for(fingerprint(Archetype::Trinity));
  EXPECT_TRUE(match.exact);
  EXPECT_EQ(match.model.version, version_a);
  EXPECT_EQ(match.model.model, model_a_);
}

TEST_F(ZooTransferTest, RegistryFallsBackToTheNearestArchitecture) {
  serve::ModelRegistry registry;
  registry.publish(model_a_, fingerprint(Archetype::Trinity));
  registry.publish(model_b_, fingerprint(Archetype::HpcGpu));
  // No edge model is published; the Trinity APU is much closer to the
  // edge class's descriptor than the HPC node is.
  const serve::FingerprintMatch match =
      registry.current_for(fingerprint(Archetype::Edge));
  EXPECT_FALSE(match.exact);
  EXPECT_EQ(match.model.model, model_a_);
}

TEST_F(ZooTransferTest, RegistryFallsBackToTheUnkeyedCurrentModel) {
  serve::ModelRegistry registry;
  const std::uint64_t version = registry.publish(model_a_);
  const serve::FingerprintMatch match =
      registry.current_for(fingerprint(Archetype::Edge));
  EXPECT_FALSE(match.exact);
  EXPECT_EQ(match.model.version, version);
  EXPECT_EQ(match.model.model, model_a_);
}

TEST_F(ZooTransferTest, EmptyRegistryResolvesToNoModel) {
  const serve::ModelRegistry registry;
  const serve::FingerprintMatch match =
      registry.current_for(fingerprint(Archetype::Trinity));
  EXPECT_FALSE(match.exact);
  EXPECT_EQ(match.model.version, 0u);
  EXPECT_EQ(match.model.model, nullptr);
}

TEST_F(ZooTransferTest, NewerPublishUnderTheSameFingerprintWins) {
  serve::ModelRegistry registry;
  registry.publish(model_a_, fingerprint(Archetype::Trinity));
  const std::uint64_t newer =
      registry.publish(model_b_, fingerprint(Archetype::Trinity));
  const serve::FingerprintMatch match =
      registry.current_for(fingerprint(Archetype::Trinity));
  EXPECT_TRUE(match.exact);
  EXPECT_EQ(match.model.version, newer);
  EXPECT_EQ(match.model.model, model_b_);
}

TEST_F(ZooTransferTest, VersionCollisionAcrossArchitecturesIsTyped) {
  serve::ModelRegistry registry;
  registry.adopt_model(5, model_a_, false, fingerprint(Archetype::Trinity));
  // Re-adopting the same version for the same architecture is the
  // idempotent catch-up path...
  EXPECT_NO_THROW(registry.adopt_model(5, model_a_, false,
                                       fingerprint(Archetype::Trinity)));
  // ...but the same version number under another architecture's
  // fingerprint is a cluster-wide numbering bug, reported as such.
  EXPECT_THROW(registry.adopt_model(5, model_b_, false,
                                    fingerprint(Archetype::HpcGpu)),
               serve::FingerprintCollisionError);
  // The registry kept serving its original mapping.
  EXPECT_TRUE(
      registry.current_for(fingerprint(Archetype::Trinity)).exact);
}

// ------------------------------------------------------------- server ---

TEST_F(ZooTransferTest, ServerCountsMismatchedFingerprintServes) {
  serve::ModelRegistry registry;
  registry.publish(model_a_, fingerprint(Archetype::Trinity));
  serve::ServerOptions options;
  options.workers = 1;
  serve::Server server{registry, options};

  const serve::SelectResponse matched =
      server.select(keyed_request(1, fingerprint(Archetype::Trinity)));
  EXPECT_EQ(matched.status, serve::ResponseStatus::Ok);
  EXPECT_EQ(server.metrics_snapshot().model_mismatch, 0u);

  // An edge-keyed request is served (nearest architecture), but the
  // mismatch is visible in the metrics — this is the signal an operator
  // alerts on before the transfer cliff becomes an outage.
  const serve::SelectResponse fallback =
      server.select(keyed_request(2, fingerprint(Archetype::Edge)));
  EXPECT_EQ(fallback.status, serve::ResponseStatus::Ok);
  EXPECT_EQ(server.metrics_snapshot().model_mismatch, 1u);
}

// -------------------------------------------------- heterogeneous fleet --

TEST_F(ZooTransferTest, HeterogeneousFleetRoutesToMatchedShards) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 2;
  options.shard_fingerprints = {fingerprint(Archetype::Trinity),
                                fingerprint(Archetype::HpcGpu)};
  fleet::Fleet fleet{options};
  fleet.publish_for(fingerprint(Archetype::Trinity), model_a_);
  fleet.publish_for(fingerprint(Archetype::HpcGpu), model_b_);
  for (std::uint64_t id = 1; id <= 24; ++id) {
    const HardwareFingerprint target = fingerprint(
        id % 2 == 0 ? Archetype::Trinity : Archetype::HpcGpu);
    const serve::SelectResponse response =
        fleet.select(keyed_request(id, target));
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok) << "id " << id;
  }
  const serve::FleetStats stats = fleet.stats();
  fleet.stop();
  // Every shard is healthy, so every request landed on its own
  // architecture's shard.
  EXPECT_EQ(stats.delivered, 24u);
  EXPECT_EQ(stats.model_mismatch, 0u);
}

TEST_F(ZooTransferTest, FailedMatchedShardFallsBackAndCountsMismatch) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 2;
  options.shard_fingerprints = {fingerprint(Archetype::Trinity),
                                fingerprint(Archetype::HpcGpu)};
  fleet::Fleet fleet{options};
  fleet.publish_for(fingerprint(Archetype::Trinity), model_a_);
  fleet.publish_for(fingerprint(Archetype::HpcGpu), model_b_);
  // Kill every replica of the Trinity shard (shard 0): Trinity-keyed
  // traffic must still be served — by the other architecture's shard,
  // and counted as a mismatch per delivered request.
  fleet.fail_node(fleet::NodeId{0, 0});
  fleet.fail_node(fleet::NodeId{0, 1});
  std::uint64_t delivered = 0;
  for (std::uint64_t id = 1; id <= 8; ++id) {
    const serve::SelectResponse response =
        fleet.select(keyed_request(id, fingerprint(Archetype::Trinity)));
    delivered += response.status == serve::ResponseStatus::Ok ? 1 : 0;
  }
  const serve::FleetStats stats = fleet.stats();
  fleet.stop();
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(stats.model_mismatch, delivered);
}

TEST_F(ZooTransferTest, ShardFingerprintCountMustMatchTheShardCount) {
  fleet::FleetOptions options;
  options.shards = 4;
  options.replicas = 1;
  options.shard_fingerprints = {fingerprint(Archetype::Trinity),
                                fingerprint(Archetype::HpcGpu)};
  EXPECT_THROW(fleet::Fleet{options}, Error);
}

TEST_F(ZooTransferTest, PublishForAnUnknownArchitectureThrows) {
  fleet::FleetOptions options;
  options.shards = 2;
  options.replicas = 1;
  options.shard_fingerprints = {fingerprint(Archetype::Trinity),
                                fingerprint(Archetype::HpcGpu)};
  fleet::Fleet fleet{options};
  EXPECT_THROW(
      fleet.publish_for(fingerprint(Archetype::Edge), model_a_), Error);
  fleet.stop();
}

// ----------------------------------------------------- transfer matrix --

TEST_F(ZooTransferTest, TransferCellDetectsTheCliffAndRecovers) {
  TransferEval eval;  // default seed; inline executor
  const TransferResult cell = eval.run(Archetype::Trinity,
                                       Archetype::HpcGpu);
  // Cold transfer is strictly worse than the serve machine's own model —
  // the cliff the fingerprint machinery exists to prevent.
  EXPECT_GT(cell.mismatched_score, cell.matched_score);
  // The adapt loop promoted at least one retrained model and closed most
  // of the gap from live feedback alone.
  EXPECT_GE(cell.adapt.promotions, 1u);
  EXPECT_GT(cell.rounds_to_promotion, 0);
  EXPECT_LT(cell.recovered_score, cell.mismatched_score);
}

TEST_F(ZooTransferTest, DiagonalCellsShortCircuitWithoutAdaptation) {
  TransferEval eval;
  const TransferResult cell = eval.run(Archetype::Edge, Archetype::Edge);
  EXPECT_EQ(cell.mismatched_score, cell.matched_score);
  EXPECT_EQ(cell.recovered_score, cell.matched_score);
  EXPECT_EQ(cell.rounds_to_promotion, -1);
  EXPECT_EQ(cell.adapt.retrains, 0u);
}

}  // namespace
}  // namespace acsel::zoo
