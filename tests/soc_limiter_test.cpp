// Tests for the RAPL-style frequency limiter in its three roles
// (CPU+FL, GPU+FL, Model+FL safety net).
#include <gtest/gtest.h>

#include "hw/config_space.h"
#include "soc/freq_limiter.h"
#include "soc/machine.h"
#include "util/error.h"

namespace acsel::soc {
namespace {

using hw::ConfigSpace;
using hw::Configuration;
using hw::Device;

KernelCharacteristics long_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 4.0;  // long enough for the control loop to settle
  k.bytes_per_flop = 0.3;
  k.parallel_fraction = 0.95;
  k.vector_fraction = 0.5;
  k.gpu_efficiency = 0.5;
  k.launch_overhead_ms = 0.5;
  return k;
}

Configuration cpu_fl_start() {
  // CPU+FL: all cores enabled, GPU at minimum frequency (paper §V-A).
  Configuration c;
  c.device = Device::Cpu;
  c.cpu_pstate = hw::kCpuMaxPState;
  c.threads = hw::kCpuCores;
  return c;
}

Configuration gpu_fl_start() {
  // GPU+FL: CPU at minimum, GPU at maximum (paper §V-A).
  Configuration c;
  c.device = Device::Gpu;
  c.cpu_pstate = 0;
  c.threads = 1;
  c.gpu_pstate = hw::kGpuMaxPState;
  return c;
}

/// Runs `iterations` back-to-back invocations with a persistent limiter
/// (the limiter keeps its learned ceilings across iterations, as in a real
/// iterative application) and returns the last result.
ExecutionResult run_with_limiter(Machine& machine,
                                 const KernelCharacteristics& k,
                                 Configuration start,
                                 FrequencyLimiter& limiter,
                                 int iterations = 3) {
  ExecutionResult result;
  for (int i = 0; i < iterations; ++i) {
    result = machine.run(k, start, &limiter);
    start = result.final_config;  // configuration persists across calls
  }
  return result;
}

TEST(Limiter, CpuFlThrottlesDownToMeetCap) {
  Machine machine;
  const auto k = long_kernel();
  // Find a cap between the floor and ceiling of the CPU+FL trajectory.
  const double floor_w =
      machine.analytic(k, Configuration{Device::Cpu, 0, 4, 0,
                                        hw::CoreMapping::Compact})
          .total_power_w();
  const double ceil_w =
      machine.analytic(k, cpu_fl_start()).total_power_w();
  const double cap = 0.5 * (floor_w + ceil_w);

  LimiterOptions options;
  options.cap_w = cap;
  options.controlled = Device::Cpu;
  FrequencyLimiter limiter{options};
  const auto result = run_with_limiter(machine, k, cpu_fl_start(), limiter);
  EXPECT_GT(limiter.down_steps(), 0u);
  EXPECT_LE(result.avg_power_w(), cap * 1.05);  // settles at/below the cap
  EXPECT_LT(result.final_config.cpu_pstate, hw::kCpuMaxPState);
}

TEST(Limiter, CpuFlSaturatesWhenCapUnreachable) {
  Machine machine;
  const auto k = long_kernel();
  LimiterOptions options;
  options.cap_w = 5.0;  // below even the lowest CPU P-state at 4 threads
  options.controlled = Device::Cpu;
  FrequencyLimiter limiter{options};
  const auto result = run_with_limiter(machine, k, cpu_fl_start(), limiter);
  EXPECT_EQ(result.final_config.cpu_pstate, 0u);
  EXPECT_TRUE(limiter.saturated_over_cap());
  EXPECT_GT(result.avg_power_w(), options.cap_w);  // over-limit case
}

TEST(Limiter, CpuFlStepsUpWithGenerousCap) {
  Machine machine;
  const auto k = long_kernel();
  LimiterOptions options;
  options.cap_w = 200.0;  // unconstrained
  options.controlled = Device::Cpu;
  FrequencyLimiter limiter{options};
  Configuration start = cpu_fl_start();
  start.cpu_pstate = 0;  // begin at the floor; limiter should climb
  const auto result = run_with_limiter(machine, k, start, limiter, 5);
  EXPECT_EQ(result.final_config.cpu_pstate, hw::kCpuMaxPState);
  EXPECT_GT(limiter.up_steps(), 0u);
}

TEST(Limiter, GpuFlThrottlesGpuThenRaisesCpu) {
  Machine machine;
  const auto k = long_kernel();
  const double mid_cap =
      machine.analytic(k, gpu_fl_start()).total_power_w() - 1.5;
  LimiterOptions options;
  options.cap_w = mid_cap;
  options.controlled = Device::Gpu;
  options.manage_host_cpu = true;
  FrequencyLimiter limiter{options};
  const auto result = run_with_limiter(machine, k, gpu_fl_start(), limiter, 5);
  // Must still be a GPU configuration; the limiter cannot change device.
  EXPECT_EQ(result.final_config.device, Device::Gpu);
  EXPECT_LE(result.avg_power_w(), mid_cap * 1.06);
}

TEST(Limiter, GpuFlUsesHeadroomForHostCpu) {
  Machine machine;
  const auto k = long_kernel();
  LimiterOptions options;
  options.cap_w = 200.0;  // plenty of headroom
  options.controlled = Device::Gpu;
  options.manage_host_cpu = true;
  FrequencyLimiter limiter{options};
  const auto result = run_with_limiter(machine, k, gpu_fl_start(), limiter, 5);
  // GPU already at max; headroom goes to the host CPU (paper §V-A).
  EXPECT_EQ(result.final_config.gpu_pstate, hw::kGpuMaxPState);
  EXPECT_GT(result.final_config.cpu_pstate, 0u);
}

TEST(Limiter, ModelFlRespectsModelChosenCeiling) {
  Machine machine;
  const auto k = long_kernel();
  LimiterOptions options;
  options.cap_w = 200.0;
  options.controlled = Device::Cpu;
  options.max_cpu_pstate = 2;  // the model selected P-state 2
  FrequencyLimiter limiter{options};
  Configuration start = cpu_fl_start();
  start.cpu_pstate = 2;
  const auto result = run_with_limiter(machine, k, start, limiter, 4);
  // With infinite headroom the limiter must not exceed the model's choice.
  EXPECT_LE(result.final_config.cpu_pstate, 2u);
}

TEST(Limiter, SetCapResetsLearnedCeilings) {
  LimiterOptions options;
  options.cap_w = 20.0;
  options.controlled = Device::Cpu;
  FrequencyLimiter limiter{options};
  // Simulate an over-cap interval to learn a ceiling.
  PowerView over;
  over.window_avg_w = 25.0;
  Configuration c = cpu_fl_start();
  const auto stepped = limiter.on_interval(over, c);
  ASSERT_TRUE(stepped.has_value());
  EXPECT_EQ(stepped->cpu_pstate, c.cpu_pstate - 1);
  limiter.set_cap(40.0);
  EXPECT_DOUBLE_EQ(limiter.cap_w(), 40.0);
  EXPECT_FALSE(limiter.saturated_over_cap());
}

TEST(Limiter, CooldownSuppressesImmediateFollowUp) {
  LimiterOptions options;
  options.cap_w = 20.0;
  options.controlled = Device::Cpu;
  options.cooldown_intervals = 2;
  FrequencyLimiter limiter{options};
  PowerView over;
  over.window_avg_w = 30.0;
  Configuration c = cpu_fl_start();
  const auto first = limiter.on_interval(over, c);
  ASSERT_TRUE(first.has_value());
  c = *first;
  // The next two intervals are cooldown: no action even though still over.
  EXPECT_FALSE(limiter.on_interval(over, c).has_value());
  EXPECT_FALSE(limiter.on_interval(over, c).has_value());
  EXPECT_TRUE(limiter.on_interval(over, c).has_value());
}

TEST(Limiter, HysteresisPreventsUpStepNearCap) {
  LimiterOptions options;
  options.cap_w = 20.0;
  options.controlled = Device::Cpu;
  options.headroom_margin_w = 2.0;
  FrequencyLimiter limiter{options};
  Configuration c = cpu_fl_start();
  c.cpu_pstate = 1;
  PowerView just_under;
  just_under.window_avg_w = 19.0;  // under cap but within the margin
  EXPECT_FALSE(limiter.on_interval(just_under, c).has_value());
  PowerView well_under;
  well_under.window_avg_w = 10.0;
  EXPECT_TRUE(limiter.on_interval(well_under, c).has_value());
}

TEST(Limiter, DoesNotClimbPastLearnedCeiling) {
  LimiterOptions options;
  options.cap_w = 20.0;
  options.controlled = Device::Cpu;
  options.cooldown_intervals = 0;
  FrequencyLimiter limiter{options};
  Configuration c = cpu_fl_start();  // P-state 5
  PowerView over;
  over.window_avg_w = 30.0;
  c = *limiter.on_interval(over, c);  // learned: 5 violates, ceiling = 4
  c = *limiter.on_interval(over, c);  // ceiling = 3
  EXPECT_EQ(c.cpu_pstate, 3u);
  PowerView way_under;
  way_under.window_avg_w = 5.0;
  // May climb back only to the learned ceiling (3), not beyond.
  while (const auto next = limiter.on_interval(way_under, c)) {
    c = *next;
    ASSERT_LE(c.cpu_pstate, 3u);
  }
  EXPECT_EQ(c.cpu_pstate, 3u);
}

TEST(Limiter, ValidatesOptions) {
  LimiterOptions bad;
  bad.cap_w = -1.0;
  EXPECT_THROW(FrequencyLimiter{bad}, Error);
  bad = LimiterOptions{};
  bad.max_cpu_pstate = hw::kCpuPStateCount;
  EXPECT_THROW(FrequencyLimiter{bad}, Error);
}

}  // namespace
}  // namespace acsel::soc
