// Graceful-degradation tests across the defense layers: the SensorGuard
// median filter, the Smu fault sites, the OnlineRuntime cap-violation
// fallback/backoff/re-sample cycle, the serving circuit breaker, deadline
// shedding, and the retrying wire client. Everything runs against the
// process-global fault::Injector, so each test disarms on exit.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <vector>

#include "core/runtime.h"
#include "core/trainer.h"
#include "eval/characterize.h"
#include "fault/fault.h"
#include "hw/config_space.h"
#include "serve/breaker.h"
#include "serve/client.h"
#include "serve/server.h"
#include "soc/machine.h"
#include "soc/sensor_guard.h"
#include "soc/smu.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel {
namespace {

/// Every test leaves the global injector clean, whatever happens.
class DegradationTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().disarm_all(); }
};

// ---- SensorGuard -------------------------------------------------------

TEST_F(DegradationTest, SensorGuardPassesPlausibleReadings) {
  soc::SensorGuard guard{{.median_window = 3,
                          .min_plausible_w = 0.0,
                          .max_plausible_w = 100.0}};
  EXPECT_EQ(guard.filter(10.0), 10.0);
  EXPECT_EQ(guard.filter(20.0), 20.0);
  EXPECT_EQ(guard.accepted(), 2u);
  EXPECT_EQ(guard.rejected(), 0u);
}

TEST_F(DegradationTest, SensorGuardReplacesGarbageWithTheMedian) {
  soc::SensorGuard guard{{.median_window = 5,
                          .min_plausible_w = 0.0,
                          .max_plausible_w = 100.0}};
  guard.filter(10.0);
  guard.filter(30.0);
  guard.filter(20.0);
  EXPECT_EQ(guard.filter(std::numeric_limits<double>::quiet_NaN()), 20.0);
  EXPECT_EQ(guard.filter(1e9), 20.0);
  EXPECT_EQ(guard.filter(-5.0), 20.0);
  EXPECT_EQ(guard.rejected(), 3u);
  // Rejected readings never enter the history.
  EXPECT_EQ(guard.accepted(), 3u);
}

TEST_F(DegradationTest, SensorGuardClampsWhenNoHistoryExists) {
  soc::SensorGuard guard{{.median_window = 3,
                          .min_plausible_w = 1.0,
                          .max_plausible_w = 100.0}};
  EXPECT_EQ(guard.filter(1e9), 100.0);
  EXPECT_EQ(guard.filter(std::numeric_limits<double>::quiet_NaN()), 1.0);
  EXPECT_EQ(guard.filter(-3.0), 1.0);
}

// ---- Smu fault sites ---------------------------------------------------

TEST_F(DegradationTest, SmuDropoutReadsZero) {
  fault::Injector::global().arm("smu.dropout", {1.0, 1, 1.0});
  soc::Smu smu{0.0, 100.0, Rng{1}};
  smu.sample(50.0, 30.0, 1.0);
  EXPECT_EQ(smu.window_view().window_avg_w, 0.0);
  EXPECT_EQ(smu.total_energy_j(), 0.0);
}

TEST_F(DegradationTest, SmuSpikeScalesTheReading) {
  fault::Injector::global().arm("smu.spike", {1.0, 1, 4.0});
  soc::Smu smu{0.0, 100.0, Rng{1}};
  smu.sample(50.0, 30.0, 1.0);
  EXPECT_DOUBLE_EQ(smu.window_view().window_avg_w, 5.0 * 80.0);
}

TEST_F(DegradationTest, SmuStuckRepeatsTheLastReportedSample) {
  fault::Injector::global().arm("smu.stuck", {1.0, 100, 1.0});
  soc::Smu smu{0.0, 100.0, Rng{1}};
  smu.sample(50.0, 30.0, 1.0);  // nothing to be stuck at yet: reported as-is
  smu.sample(80.0, 40.0, 1.0);  // stuck: repeats (50, 30)
  smu.sample(10.0, 5.0, 1.0);   // still stuck
  const soc::PowerView view = smu.window_view();
  EXPECT_DOUBLE_EQ(view.window_avg_cpu_w, 50.0);
  EXPECT_DOUBLE_EQ(view.window_avg_nbgpu_w, 30.0);
}

TEST_F(DegradationTest, SmuDelayLagsTheTelemetry) {
  fault::Injector::global().arm("smu.delay", {1.0, 1, 2.0});
  soc::Smu smu{0.0, 1000.0, Rng{1}};
  smu.sample(10.0, 0.0, 1.0);  // too little history: reported as-is
  smu.sample(20.0, 0.0, 1.0);  // still too little
  smu.sample(30.0, 0.0, 1.0);  // lag 2: reports the first sample again
  EXPECT_DOUBLE_EQ(smu.window_view().window_avg_cpu_w, (10.0 + 20.0 + 10.0) / 3.0);
}

TEST_F(DegradationTest, SmuGuardFiltersInjectedSpikes) {
  soc::Smu smu{0.0, 1000.0, Rng{1}};
  smu.enable_guard({.median_window = 5,
                    .min_plausible_w = 0.0,
                    .max_plausible_w = 100.0});
  for (int i = 0; i < 3; ++i) {
    smu.sample(20.0, 20.0, 1.0);
  }
  fault::Injector::global().arm("smu.spike", {1.0, 1, 9.0});
  smu.sample(20.0, 20.0, 1.0);  // 10x spike -> 200 W/domain, rejected
  EXPECT_EQ(smu.guard_rejections(), 2u);  // both domains
  // The spike was replaced by the per-domain median (20 W), so the
  // window average never saw it.
  EXPECT_DOUBLE_EQ(smu.window_view().window_avg_w, 40.0);
}

TEST_F(DegradationTest, MachineSurvivesChaosWithGuardEnabled) {
  fault::Injector::global().arm_presets("smu_noise,smu_stuck");
  soc::MachineSpec spec;
  spec.sensor_guard = true;
  spec.guard_max_plausible_w = 200.0;
  soc::Machine machine{spec, 77};
  const auto suite = workloads::Suite::standard();
  const auto result = machine.run(suite.instances().front().traits,
                                  hw::ConfigSpace{}.cpu_sample());
  EXPECT_TRUE(std::isfinite(result.time_ms));
  EXPECT_TRUE(std::isfinite(result.avg_cpu_power_w));
  EXPECT_GE(result.avg_cpu_power_w, 0.0);
}

// ---- circuit breaker (unit) --------------------------------------------

serve::BreakerOptions small_breaker() {
  serve::BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 3;
  options.open_requests = 4;
  options.half_open_probes = 2;
  return options;
}

TEST_F(DegradationTest, BreakerTripsProbesAndRecovers) {
  serve::Breaker breaker{small_breaker()};
  EXPECT_EQ(breaker.state(), serve::Breaker::State::Closed);
  EXPECT_TRUE(breaker.allow());

  // A success resets the failure streak.
  breaker.on_failure();
  breaker.on_failure();
  breaker.on_success(0);
  breaker.on_failure();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), serve::Breaker::State::Closed);
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), serve::Breaker::State::Open);
  EXPECT_EQ(breaker.trips(), 1u);

  // The open window rejects a fixed number of requests (no wall clock).
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(breaker.allow()) << i;
  }
  EXPECT_EQ(breaker.state(), serve::Breaker::State::HalfOpen);

  // Half-open admits a bounded probe quota...
  EXPECT_TRUE(breaker.allow());
  EXPECT_TRUE(breaker.allow());
  EXPECT_FALSE(breaker.allow());
  // ...and closes after enough successful probes.
  breaker.on_success(0);
  EXPECT_EQ(breaker.state(), serve::Breaker::State::HalfOpen);
  breaker.on_success(0);
  EXPECT_EQ(breaker.state(), serve::Breaker::State::Closed);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST_F(DegradationTest, BreakerReopensOnFailedProbe) {
  serve::Breaker breaker{small_breaker()};
  for (int i = 0; i < 3; ++i) {
    breaker.on_failure();
  }
  for (int i = 0; i < 4; ++i) {
    breaker.allow();
  }
  EXPECT_EQ(breaker.state(), serve::Breaker::State::HalfOpen);
  EXPECT_TRUE(breaker.allow());
  breaker.on_failure();  // one bad probe reopens immediately
  EXPECT_EQ(breaker.state(), serve::Breaker::State::Open);
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST_F(DegradationTest, BreakerCountsLatencyBudgetViolationsAsFailures) {
  serve::BreakerOptions options = small_breaker();
  options.latency_budget_ns = 1000;
  serve::Breaker breaker{options};
  for (int i = 0; i < 3; ++i) {
    breaker.on_success(5000);  // over budget
  }
  EXPECT_EQ(breaker.state(), serve::Breaker::State::Open);
}

TEST_F(DegradationTest, DisabledBreakerAlwaysAllows) {
  serve::Breaker breaker;  // enabled = false
  for (int i = 0; i < 100; ++i) {
    breaker.on_failure();
  }
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), serve::Breaker::State::Closed);
  EXPECT_EQ(breaker.trips(), 0u);
}

// ---- served degradation (integration) ----------------------------------

class ServeDegradationTest : public DegradationTest {
 protected:
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 4242};
    const auto suite = workloads::Suite::standard();
    characterizations_ = new std::vector<core::KernelCharacterization>{};
    for (const auto& instance : suite.instances()) {
      characterizations_->push_back(
          eval::characterize_instance(machine, instance));
      if (characterizations_->size() == 12) {
        break;
      }
    }
    model_ = core::make_predictor(core::train(*characterizations_).model);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete characterizations_;
  }

  static serve::SelectRequest make_request(std::uint64_t id) {
    serve::SelectRequest request;
    request.request_id = id;
    request.samples =
        (*characterizations_)[id % characterizations_->size()].samples;
    request.cap_w = 30.0;
    return request;
  }

  static std::vector<core::KernelCharacterization>* characterizations_;
  static core::PredictorPtr model_;
};

std::vector<core::KernelCharacterization>*
    ServeDegradationTest::characterizations_ = nullptr;
core::PredictorPtr ServeDegradationTest::model_;

TEST_F(ServeDegradationTest, BreakerReroutesToPreviousVersionAndRecovers) {
  serve::ModelRegistry registry;
  registry.publish(model_);              // v1: healthy
  registry.publish(core::make_predictor(core::TrainedModel{}));  // v2: corrupt (predict throws)

  serve::ServerOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.breaker = small_breaker();
  serve::Server server{registry, options};

  // The corrupt current model fails requests until the breaker trips.
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(server.select(make_request(i)).status,
              serve::ResponseStatus::InternalError);
  }
  EXPECT_EQ(server.breaker().state(), serve::Breaker::State::Open);
  EXPECT_EQ(server.breaker().trips(), 1u);

  // The open window reroutes version-0 requests to the previous version.
  for (std::uint64_t i = 0; i < 4; ++i) {
    const serve::SelectResponse response = server.select(make_request(i));
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(response.model_version, 1u);
  }
  EXPECT_EQ(server.metrics_snapshot().breaker_rerouted, 4u);
  EXPECT_EQ(server.breaker().state(), serve::Breaker::State::HalfOpen);

  // The next request probes the still-corrupt current model and re-trips.
  EXPECT_EQ(server.select(make_request(9)).status,
            serve::ResponseStatus::InternalError);
  EXPECT_EQ(server.breaker().state(), serve::Breaker::State::Open);
  EXPECT_EQ(server.breaker().trips(), 2u);

  // Operator rolls back; the current model is healthy again. With no
  // earlier version to reroute to, open-window requests serve current —
  // and succeed — then the probes close the breaker.
  registry.rollback();
  for (std::uint64_t i = 0; i < 4; ++i) {
    const serve::SelectResponse response = server.select(make_request(i));
    EXPECT_EQ(response.status, serve::ResponseStatus::Ok);
    EXPECT_EQ(response.model_version, 1u);
  }
  EXPECT_EQ(server.breaker().state(), serve::Breaker::State::HalfOpen);
  EXPECT_EQ(server.select(make_request(20)).status,
            serve::ResponseStatus::Ok);
  EXPECT_EQ(server.select(make_request(21)).status,
            serve::ResponseStatus::Ok);
  EXPECT_EQ(server.breaker().state(), serve::Breaker::State::Closed);
}

TEST_F(ServeDegradationTest, ExpiredRequestsAreShedNotServed) {
  serve::ModelRegistry registry;
  registry.publish(model_);
  serve::ServerOptions options;
  options.workers = 1;
  // Any queue wait exceeds a 1 ns deadline, so every request expires
  // before a worker reaches it — deterministic total shedding.
  options.request_deadline = std::chrono::nanoseconds{1};
  serve::Server server{registry, options};

  std::vector<std::future<serve::SelectResponse>> futures;
  for (std::uint64_t i = 0; i < 16; ++i) {
    futures.push_back(server.submit(make_request(i)));
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, serve::ResponseStatus::DeadlineExceeded);
  }
  const auto snapshot = server.metrics_snapshot();
  EXPECT_EQ(snapshot.submitted, 16u);
  EXPECT_EQ(snapshot.deadline_shed, 16u);
  EXPECT_EQ(snapshot.completed, 0u);  // shed work is answered, not served
}

TEST_F(ServeDegradationTest, GenerousDeadlinesServeNormally) {
  serve::ModelRegistry registry;
  registry.publish(model_);
  serve::ServerOptions options;
  options.request_deadline = std::chrono::seconds{10};
  serve::Server server{registry, options};
  EXPECT_EQ(server.select(make_request(1)).status,
            serve::ResponseStatus::Ok);
  EXPECT_EQ(server.metrics_snapshot().deadline_shed, 0u);
}

TEST_F(ServeDegradationTest, ClientRetriesUndecodableRepliesWithBackoff) {
  serve::ModelRegistry registry;
  registry.publish(model_);
  serve::Server server{registry, {}};

  int calls = 0;
  const serve::Transport flaky =
      [&](std::span<const std::uint8_t> frame) -> std::vector<std::uint8_t> {
    if (++calls <= 2) {
      return {0xde, 0xad};  // line noise
    }
    return server.serve_frame(frame);
  };
  std::vector<std::chrono::microseconds> slept;
  serve::ClientOptions options;
  options.max_attempts = 4;
  options.backoff_base = std::chrono::microseconds{100};
  options.backoff_max = std::chrono::microseconds{400};
  options.sleep = [&](std::chrono::microseconds d) { slept.push_back(d); };
  serve::Client client{flaky, options};

  EXPECT_EQ(client.select(make_request(5)).status,
            serve::ResponseStatus::Ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(client.retries(), 2u);
  // Jittered exponential backoff: delay k is min(base * 2^k, max) scaled
  // by [0.5, 1.5).
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_GE(slept[0].count(), 50);
  EXPECT_LT(slept[0].count(), 150);
  EXPECT_GE(slept[1].count(), 100);
  EXPECT_LT(slept[1].count(), 300);
}

TEST_F(ServeDegradationTest, ClientGivesUpAfterMaxAttemptsUnderWireFaults) {
  serve::ModelRegistry registry;
  registry.publish(model_);
  serve::Server server{registry, {}};
  fault::Injector::global().arm("wire.corrupt", {1.0, 1, 1.0});

  std::vector<std::chrono::microseconds> slept;
  serve::ClientOptions options;
  options.max_attempts = 3;
  options.sleep = [&](std::chrono::microseconds d) { slept.push_back(d); };
  serve::Client client{[&](std::span<const std::uint8_t> frame) {
                         return server.serve_frame(frame);
                       },
                       options};

  // Every attempt's frame is corrupted, the server answers
  // MalformedRequest each time, and the client surfaces the last one.
  EXPECT_EQ(client.select(make_request(7)).status,
            serve::ResponseStatus::MalformedRequest);
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(slept.size(), 2u);
  EXPECT_EQ(fault::Injector::global().fire_count("wire.corrupt"), 3u);
}

TEST_F(ServeDegradationTest, ClientRecoversOncePerRequestFaultsClear) {
  serve::ModelRegistry registry;
  registry.publish(model_);
  serve::Server server{registry, {}};

  serve::ClientOptions options;
  options.sleep = [](std::chrono::microseconds) {};
  serve::Client client{[&](std::span<const std::uint8_t> frame) {
                         return server.serve_frame(frame);
                       },
                       options};
  fault::Injector::global().arm("wire.corrupt", {1.0, 1, 1.0});
  EXPECT_EQ(client.select(make_request(3)).status,
            serve::ResponseStatus::MalformedRequest);
  fault::Injector::global().disarm_all();
  EXPECT_EQ(client.select(make_request(3)).status,
            serve::ResponseStatus::Ok);
}

// ---- runtime degradation (integration) ---------------------------------

class RuntimeDegradationTest : public DegradationTest {
 protected:
  static void SetUpTestSuite() {
    machine_ = new soc::Machine{soc::MachineSpec{}, 4242};
    suite_ = new workloads::Suite{workloads::Suite::standard()};
    std::vector<core::KernelCharacterization> training;
    for (const auto& instance : suite_->instances()) {
      training.push_back(eval::characterize_instance(*machine_, instance));
    }
    model_ = core::make_predictor(core::train(training).model);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete suite_;
    delete machine_;
  }

  static core::OnlineRuntime::Options guarded_options(double cap_w) {
    core::OnlineRuntime::Options options;
    options.power_cap_w = cap_w;
    options.guardrails.enabled = true;
    options.guardrails.cap_tolerance = 0.2;
    options.guardrails.cap_patience = 2;
    options.guardrails.backoff_initial = 3;
    return options;
  }

  static soc::Machine* machine_;
  static workloads::Suite* suite_;
  static core::PredictorPtr model_;
};

soc::Machine* RuntimeDegradationTest::machine_ = nullptr;
workloads::Suite* RuntimeDegradationTest::suite_ = nullptr;
core::PredictorPtr RuntimeDegradationTest::model_;

TEST_F(RuntimeDegradationTest, CapArgumentsMustBeFiniteAndPositive) {
  core::OnlineRuntime runtime{*machine_, model_};
  EXPECT_THROW(runtime.set_power_cap(std::nan("")), Error);
  EXPECT_THROW(
      runtime.set_power_cap(std::numeric_limits<double>::infinity()), Error);
  EXPECT_THROW(runtime.set_power_cap(-10.0), Error);
  EXPECT_THROW(runtime.set_power_cap(0.0), Error);

  core::OnlineRuntime::Options options;
  options.power_cap_w = std::nan("");
  EXPECT_THROW((core::OnlineRuntime{*machine_, model_, options}), Error);
}

TEST_F(RuntimeDegradationTest, ImplausibleSamplesAreNeverCommitted) {
  // A 1 W plausibility bound rejects every real record, so the kernel
  // can never leave the sampling phase — and never poisons a profile.
  core::OnlineRuntime::Options options = guarded_options(30.0);
  options.guardrails.max_plausible_power_w = 1.0;
  core::OnlineRuntime runtime{*machine_, model_, options};
  const auto& instance = suite_->instances().front();
  const core::KernelKey key{instance.kernel, "main", 10};
  for (int i = 0; i < 4; ++i) {
    runtime.invoke(key, instance);
  }
  EXPECT_EQ(runtime.phase(key), core::OnlineRuntime::Phase::Unseen);
  EXPECT_EQ(runtime.guard_rejected_samples(), 4u);
}

TEST_F(RuntimeDegradationTest, StuckSmuTriggersFallbackBackoffAndRecovery) {
  core::OnlineRuntime runtime{*machine_, model_, guarded_options(30.0)};
  const auto& instance = suite_->instances().front();
  const core::KernelKey key{instance.kernel, "main", 10};

  // Clean warm-up: two samples, then scheduled steady state.
  for (int i = 0; i < 6; ++i) {
    runtime.invoke(key, instance);
  }
  ASSERT_EQ(runtime.phase(key), core::OnlineRuntime::Phase::Scheduled);
  ASSERT_FALSE(runtime.in_fallback(key));
  ASSERT_EQ(runtime.guard_fallbacks(), 0u);

  // SMU spikes 5x: every measured power violates the cap. After
  // cap_patience violations the runtime degrades to the safe config.
  fault::Injector::global().arm("smu.spike", {1.0, 1, 4.0});
  runtime.invoke(key, instance);
  EXPECT_FALSE(runtime.in_fallback(key));
  runtime.invoke(key, instance);
  EXPECT_TRUE(runtime.in_fallback(key));
  EXPECT_EQ(runtime.guard_fallbacks(), 1u);
  EXPECT_EQ(runtime.guard_cap_violations(), 2u);

  // The fallback configuration is the predicted lowest-power point.
  const auto safe = runtime.scheduled_config(key);
  ASSERT_TRUE(safe.has_value());

  // Serve the backoff at the safe configuration, then re-sample.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(runtime.in_fallback(key));
    runtime.invoke(key, instance);
  }
  EXPECT_EQ(runtime.phase(key), core::OnlineRuntime::Phase::Unseen);
  EXPECT_EQ(runtime.guard_resamples(), 1u);
  EXPECT_FALSE(runtime.in_fallback(key));

  // Faults clear; the kernel re-samples and converges back to a
  // cap-respecting steady state.
  fault::Injector::global().disarm_all();
  for (int i = 0; i < 6; ++i) {
    const auto& record = runtime.invoke(key, instance);
    if (runtime.phase(key) == core::OnlineRuntime::Phase::Scheduled &&
        i >= 2) {
      EXPECT_LE(record.total_power_w(), 30.0 * 1.2);
    }
  }
  EXPECT_EQ(runtime.phase(key), core::OnlineRuntime::Phase::Scheduled);
  EXPECT_FALSE(runtime.in_fallback(key));
  EXPECT_EQ(runtime.guard_fallbacks(), 1u);  // no relapse after recovery
}

TEST_F(RuntimeDegradationTest, RepeatedFallbacksBackOffExponentially) {
  core::OnlineRuntime::Options options = guarded_options(30.0);
  options.guardrails.backoff_initial = 2;
  options.guardrails.backoff_max = 8;
  core::OnlineRuntime runtime{*machine_, model_, options};
  const auto& instance = suite_->instances().front();
  const core::KernelKey key{instance.kernel, "main", 10};

  // Persistent fault: the spike never clears, so every re-sampled profile
  // violates again and the backoff doubles (2, 4, 8, capped at 8).
  fault::Injector::global().arm("smu.spike", {1.0, 1, 4.0});
  std::vector<std::size_t> fallback_runs;
  std::size_t invocations_at_fallback = 0;
  std::size_t invocations = 0;
  std::uint64_t last_fallbacks = 0;
  for (int i = 0; i < 80 && runtime.guard_resamples() < 3; ++i) {
    runtime.invoke(key, instance);
    ++invocations;
    if (runtime.guard_fallbacks() > last_fallbacks) {
      last_fallbacks = runtime.guard_fallbacks();
      invocations_at_fallback = invocations;
    }
    if (runtime.guard_resamples() == fallback_runs.size() + 1) {
      fallback_runs.push_back(invocations - invocations_at_fallback);
    }
  }
  ASSERT_GE(fallback_runs.size(), 3u);
  EXPECT_EQ(fallback_runs[0], 2u);
  EXPECT_EQ(fallback_runs[1], 4u);
  EXPECT_EQ(fallback_runs[2], 8u);
}

}  // namespace
}  // namespace acsel
