// Tests for the fault-injection subsystem: deterministic replay under a
// fixed seed, burst semantics, per-site stream independence, and the
// preset/env arming surface.
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "util/error.h"

namespace acsel::fault {
namespace {

std::vector<bool> draw(Injector& injector, const std::string& site, int n) {
  std::vector<bool> fires;
  fires.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    fires.push_back(injector.should_fire(site));
  }
  return fires;
}

TEST(FaultInjector, UnarmedSiteNeverFires) {
  Injector injector{1};
  EXPECT_FALSE(injector.any_armed());
  EXPECT_FALSE(injector.armed("smu.spike"));
  EXPECT_FALSE(injector.should_fire("smu.spike"));
  EXPECT_EQ(injector.fire_count("smu.spike"), 0u);
  EXPECT_EQ(injector.magnitude("smu.spike"), 0.0);
}

TEST(FaultInjector, ProbabilityExtremes) {
  Injector injector{7};
  injector.arm("always", {1.0, 1, 1.0});
  injector.arm("never", {0.0, 1, 1.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.should_fire("always"));
    EXPECT_FALSE(injector.should_fire("never"));
  }
  EXPECT_EQ(injector.fire_count("always"), 100u);
  EXPECT_EQ(injector.fire_count("never"), 0u);
}

TEST(FaultInjector, SameSeedReplaysIdentically) {
  Injector a{0xdead};
  Injector b{0xdead};
  const FaultSpec spec{0.3, 2, 1.0};
  a.arm("site", spec);
  b.arm("site", spec);
  EXPECT_EQ(draw(a, "site", 500), draw(b, "site", 500));
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  Injector a{1};
  Injector b{2};
  const FaultSpec spec{0.3, 1, 1.0};
  a.arm("site", spec);
  b.arm("site", spec);
  EXPECT_NE(draw(a, "site", 500), draw(b, "site", 500));
}

TEST(FaultInjector, RewindReplaysTheScenario) {
  Injector injector{42};
  injector.arm("site", {0.25, 3, 1.0});
  const auto first = draw(injector, "site", 300);
  const std::uint64_t fires = injector.fire_count("site");
  injector.rewind();
  EXPECT_EQ(injector.fire_count("site"), 0u);
  EXPECT_EQ(draw(injector, "site", 300), first);
  EXPECT_EQ(injector.fire_count("site"), fires);
}

TEST(FaultInjector, BurstsRunForBurstLengthQueries) {
  Injector injector{9};
  injector.arm("site", {0.05, 4, 1.0});
  const auto fires = draw(injector, "site", 2000);
  // Every burst start (a fire following a non-fire) is followed by at
  // least burst_length - 1 further fires.
  int observed_bursts = 0;
  for (std::size_t i = 1; i + 3 < fires.size(); ++i) {
    if (fires[i] && !fires[i - 1]) {
      ++observed_bursts;
      EXPECT_TRUE(fires[i + 1]) << "at " << i;
      EXPECT_TRUE(fires[i + 2]) << "at " << i;
      EXPECT_TRUE(fires[i + 3]) << "at " << i;
    }
  }
  EXPECT_GT(observed_bursts, 0);
}

TEST(FaultInjector, BurstFiresDoNotConsumeProbabilityDraws) {
  // The burst-start positions of a bursty site must match the fire
  // positions of a burst-1 site with the same seed and probability: a
  // mid-burst fire never advances the probability stream.
  Injector single{0xabc};
  Injector bursty{0xabc};
  single.arm("site", {0.1, 1, 1.0});
  bursty.arm("site", {0.1, 5, 1.0});
  const int kQueries = 1000;
  std::vector<std::size_t> single_fires;
  for (int i = 0; i < kQueries; ++i) {
    if (single.should_fire("site")) {
      single_fires.push_back(static_cast<std::size_t>(i));
    }
  }
  std::vector<std::size_t> burst_starts;
  int burst_left = 0;
  for (int i = 0; i < kQueries; ++i) {
    const bool fired = bursty.should_fire("site");
    if (burst_left > 0) {
      EXPECT_TRUE(fired);
      --burst_left;
    } else if (fired) {
      burst_starts.push_back(static_cast<std::size_t>(i));
      burst_left = 4;
    }
  }
  ASSERT_FALSE(single_fires.empty());
  // Each burst start consumed exactly one draw, so the k-th burst start
  // fires on the k-th successful draw of the burst-1 stream. The index
  // differs (bursts skip draws for 4 queries), but the *draw sequence* is
  // shared: verify by replaying the single stream with the burst
  // schedule.
  Injector replay{0xabc};
  replay.arm("site", {0.1, 1, 1.0});
  std::vector<std::size_t> expected_starts;
  burst_left = 0;
  for (int i = 0; i < kQueries; ++i) {
    if (burst_left > 0) {
      --burst_left;
      continue;  // mid-burst: no draw consumed
    }
    if (replay.should_fire("site")) {
      expected_starts.push_back(static_cast<std::size_t>(i));
      burst_left = 4;
    }
  }
  EXPECT_EQ(burst_starts, expected_starts);
}

TEST(FaultInjector, SitesDrawFromIndependentStreams) {
  // Interleaving queries to another site must not perturb a site's
  // decisions: streams are keyed by (seed, site name), not query order.
  Injector alone{0x5eed};
  Injector shared{0x5eed};
  alone.arm("b", {0.2, 1, 1.0});
  shared.arm("a", {0.7, 3, 1.0});
  shared.arm("b", {0.2, 1, 1.0});
  std::vector<bool> alone_fires;
  std::vector<bool> shared_fires;
  for (int i = 0; i < 400; ++i) {
    alone_fires.push_back(alone.should_fire("b"));
    shared.should_fire("a");  // interleaved noise
    shared_fires.push_back(shared.should_fire("b"));
  }
  EXPECT_EQ(alone_fires, shared_fires);
}

TEST(FaultInjector, ReArmingResetsTheStream) {
  Injector injector{11};
  injector.arm("site", {0.4, 1, 1.0});
  const auto first = draw(injector, "site", 100);
  injector.arm("site", {0.4, 1, 1.0});
  EXPECT_EQ(draw(injector, "site", 100), first);
}

TEST(FaultInjector, DisarmStopsFiring) {
  Injector injector{3};
  injector.arm("site", {1.0, 1, 1.0});
  EXPECT_TRUE(injector.should_fire("site"));
  injector.disarm("site");
  EXPECT_FALSE(injector.any_armed());
  EXPECT_FALSE(injector.should_fire("site"));
}

TEST(FaultInjector, ArmRejectsInvalidSpecs) {
  Injector injector{1};
  EXPECT_THROW(injector.arm("site", {-0.1, 1, 1.0}), Error);
  EXPECT_THROW(injector.arm("site", {1.5, 1, 1.0}), Error);
  EXPECT_THROW(injector.arm("site", {0.5, 0, 1.0}), Error);
}

TEST(FaultInjector, PresetsArmTheDocumentedSites) {
  Injector injector{1};
  const auto armed = injector.arm_presets("smu_noise,frame_corrupt");
  EXPECT_EQ(armed, (std::vector<std::string>{"smu_noise", "frame_corrupt"}));
  EXPECT_TRUE(injector.armed("smu.spike"));
  EXPECT_TRUE(injector.armed("smu.dropout"));
  EXPECT_TRUE(injector.armed("wire.corrupt"));
  EXPECT_FALSE(injector.armed("smu.stuck"));
}

TEST(FaultInjector, UnknownPresetsAreSkippedNotFatal) {
  Injector injector{1};
  const auto armed = injector.arm_presets("bogus,smu_stuck,,also_bogus");
  EXPECT_EQ(armed, (std::vector<std::string>{"smu_stuck"}));
  EXPECT_TRUE(injector.armed("smu.stuck"));
}

TEST(FaultInjector, ArmsFromEnvironment) {
  ::setenv("ACSEL_FAULTS", "smu_delay", 1);
  Injector injector{1};
  const auto armed = injector.arm_from_env();
  ::unsetenv("ACSEL_FAULTS");
  EXPECT_EQ(armed, (std::vector<std::string>{"smu_delay"}));
  EXPECT_TRUE(injector.armed("smu.delay"));
  EXPECT_EQ(injector.magnitude("smu.delay"), 6.0);

  Injector unset{1};
  EXPECT_TRUE(unset.arm_from_env().empty());
}

TEST(FaultInjector, GlobalMacrosConsultTheGlobalInjector) {
  Injector::global().disarm_all();
  EXPECT_FALSE(ACSEL_FAULT_ARMED());
#ifndef ACSEL_FAULT_NO_INJECTION
  Injector::global().arm("macro.site", {1.0, 1, 1.0});
  EXPECT_TRUE(ACSEL_FAULT_ARMED());
  EXPECT_TRUE(ACSEL_FAULT_FIRE("macro.site"));
  Injector::global().disarm_all();
  EXPECT_FALSE(ACSEL_FAULT_ARMED());
#endif
}

}  // namespace
}  // namespace acsel::fault
