// Tests for the benchmark suite: the paper's kernel counts, input
// instantiation, weighting, and the headline behavioural contrasts the
// suite must exhibit on the simulated machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "hw/config_space.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::workloads {
namespace {

TEST(Benchmarks, PaperKernelCounts) {
  EXPECT_EQ(lulesh_benchmark().kernels.size(), 20u);  // §IV-B
  EXPECT_EQ(comd_benchmark().kernels.size(), 7u);
  EXPECT_EQ(smc_benchmark().kernels.size(), 8u);
  EXPECT_EQ(lu_benchmark().kernels.size(), 1u);
}

TEST(Suite, ThirtySixKernelsSixtyFiveInstances) {
  const Suite suite = Suite::standard();
  EXPECT_EQ(suite.kernel_count(), 36u);   // §IV-B: 36 kernels
  EXPECT_EQ(suite.size(), 65u);           // §IV-B: 65 benchmark/input combos
  EXPECT_EQ(suite.benchmarks().size(), 4u);
}

TEST(Suite, GroupsCoverPaperFigures) {
  const Suite suite = Suite::standard();
  const auto& groups = suite.benchmark_inputs();
  // The groups charted in Figs. 5/6/8/9 (plus LU Medium, which exists in
  // the 65-instance population but is not charted).
  for (const char* expected :
       {"LULESH Small", "LULESH Large", "CoMD LJ", "CoMD EAM",
        "SMC Default", "LU Small", "LU Large"}) {
    EXPECT_NE(std::find(groups.begin(), groups.end(), expected),
              groups.end())
        << expected;
  }
}

TEST(Suite, InstanceIdsUnique) {
  const Suite suite = Suite::standard();
  std::set<std::string> ids;
  for (const auto& instance : suite.instances()) {
    ids.insert(instance.id());
  }
  EXPECT_EQ(ids.size(), suite.size());
}

TEST(Suite, WeightsNormalizedPerGroup) {
  const Suite suite = Suite::standard();
  for (const auto& group : suite.benchmark_inputs()) {
    double sum = 0.0;
    for (const std::size_t i : suite.instances_of_group(group)) {
      sum += suite.instances()[i].weight;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << group;
  }
}

TEST(Suite, AllTraitsValid) {
  const Suite suite = Suite::standard();
  for (const auto& instance : suite.instances()) {
    EXPECT_NO_THROW(instance.traits.validate()) << instance.id();
  }
}

TEST(Suite, LookupById) {
  const Suite suite = Suite::standard();
  const auto& instance =
      suite.instance("LULESH-Small/CalcFBHourglassForce");
  EXPECT_EQ(instance.benchmark, "LULESH");
  EXPECT_EQ(instance.input, "Small");
  EXPECT_THROW(suite.instance("nope/nope"), Error);
}

TEST(Suite, BenchmarkInstanceCounts) {
  const Suite suite = Suite::standard();
  EXPECT_EQ(suite.instances_of_benchmark("LULESH").size(), 40u);  // 20 x 2
  EXPECT_EQ(suite.instances_of_benchmark("CoMD").size(), 14u);    // 7 x 2
  EXPECT_EQ(suite.instances_of_benchmark("SMC").size(), 8u);      // 8 x 1
  EXPECT_EQ(suite.instances_of_benchmark("LU").size(), 3u);       // 1 x 3
}

TEST(ApplyInput, ScalesWorkAndClampsLocality) {
  soc::KernelCharacteristics k;
  k.work_gflop = 2.0;
  k.cache_locality = 0.95;
  const InputSpec input{"Big", 3.0, +0.2, 0.0};
  const auto scaled = apply_input(k, input);
  EXPECT_DOUBLE_EQ(scaled.work_gflop, 6.0);
  EXPECT_DOUBLE_EQ(scaled.cache_locality, 1.0);  // clamped
}

TEST(ApplyInput, RejectsNonPositiveScale) {
  soc::KernelCharacteristics k;
  EXPECT_THROW(apply_input(k, InputSpec{"bad", 0.0, 0.0, 0.0}), Error);
}

TEST(Suite, EmptySuiteRejected) {
  EXPECT_THROW(Suite{std::vector<BenchmarkSpec>{}}, Error);
  BenchmarkSpec no_kernels;
  no_kernels.name = "empty";
  no_kernels.inputs = {{"x", 1.0, 0.0, 0.0}};
  EXPECT_THROW(Suite{{no_kernels}}, Error);
}

// ----- behavioural contrasts the paper's evaluation depends on ----------

class SuiteBehaviour : public ::testing::Test {
 protected:
  soc::Machine machine_;
  workloads::Suite suite_ = Suite::standard();
  hw::ConfigSpace space_;

  double best_time(const WorkloadInstance& instance, hw::Device device) {
    double best = 1e300;
    for (const std::size_t i : space_.indices_for(device)) {
      best = std::min(
          best, machine_.analytic(instance.traits, space_.at(i)).time_ms);
    }
    return best;
  }
};

TEST_F(SuiteBehaviour, LuIsDramaticallyGpuFriendly) {
  const auto& lu = suite_.instance("LU-Large/lud");
  const double cpu = best_time(lu, hw::Device::Cpu);
  const double gpu = best_time(lu, hw::Device::Gpu);
  EXPECT_GT(cpu / gpu, 6.0);  // the device gap behind Figs. 7 and 9
}

TEST_F(SuiteBehaviour, SomeKernelsPreferTheCpu) {
  // Accelerators "do not benefit all parallel code" (§II-A): the suite must
  // contain kernels whose best CPU configuration beats their best GPU one.
  std::size_t cpu_wins = 0;
  for (const auto& instance : suite_.instances()) {
    if (best_time(instance, hw::Device::Cpu) <
        best_time(instance, hw::Device::Gpu)) {
      ++cpu_wins;
    }
  }
  EXPECT_GE(cpu_wins, 5u);
  EXPECT_LE(cpu_wins, suite_.size() - 20);  // and the GPU wins plenty too
}

TEST_F(SuiteBehaviour, PerKernelPerformanceRangeSpansPaperBand) {
  // §III-B: "One kernel's best performance is 367 times that of its worst,
  // while another kernel spans a range of only 1.62". Check the suite
  // spans two orders of magnitude of best/worst ratios.
  double widest = 0.0;
  double narrowest = 1e300;
  for (const auto& instance : suite_.instances()) {
    double best = 1e300;
    double worst = 0.0;
    for (const auto& config : space_.all()) {
      const double t = machine_.analytic(instance.traits, config).time_ms;
      best = std::min(best, t);
      worst = std::max(worst, t);
    }
    const double range = worst / best;
    widest = std::max(widest, range);
    narrowest = std::min(narrowest, range);
  }
  EXPECT_GT(widest, 50.0);
  EXPECT_LT(narrowest, 8.0);
}

TEST_F(SuiteBehaviour, BestConfigPowerVariesWidelyAcrossKernels) {
  // §III-B: best-performing-configuration power spans ~19 W to ~55 W.
  // "Best-performing" is read as the frontier's top end: the cheapest
  // configuration achieving >= 95% of the kernel's best performance
  // (memory-bound kernels plateau, so many configurations tie at the top).
  double lo = 1e300;
  double hi = 0.0;
  for (const auto& instance : suite_.instances()) {
    double best_time_ms = 1e300;
    for (const auto& config : space_.all()) {
      best_time_ms = std::min(
          best_time_ms, machine_.analytic(instance.traits, config).time_ms);
    }
    double cheapest = 1e300;
    for (const auto& config : space_.all()) {
      const auto s = machine_.analytic(instance.traits, config);
      if (s.time_ms <= best_time_ms / 0.95) {
        cheapest = std::min(cheapest, s.total_power_w());
      }
    }
    lo = std::min(lo, cheapest);
    hi = std::max(hi, cheapest);
  }
  EXPECT_LT(lo, 30.0);
  EXPECT_GT(hi, 38.0);
  EXPECT_GT(hi / lo, 1.7);
}

TEST_F(SuiteBehaviour, KernelTimesSuitTheControlLoop) {
  // Sample-configuration runs must straddle several 5 ms control
  // intervals so frequency limiting can act within an invocation.
  const auto cpu_sample = space_.cpu_sample();
  for (const auto& instance : suite_.instances()) {
    const double t =
        machine_.analytic(instance.traits, cpu_sample).time_ms;
    EXPECT_GT(t, 2.0) << instance.id();
    EXPECT_LT(t, 5000.0) << instance.id();
  }
}

}  // namespace
}  // namespace acsel::workloads
