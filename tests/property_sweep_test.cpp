// Suite-wide property sweeps: invariants that must hold for every one of
// the 65 kernel instances — oracle structure, prediction sanity, and
// method-outcome physicality. One shared characterization/training pass
// keeps the sweep fast.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "eval/methods.h"
#include "eval/oracle.h"
#include "hw/config_space.h"
#include "soc/machine.h"
#include "workloads/suite.h"

namespace acsel {
namespace {

class SuiteSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    machine_ = new soc::Machine{soc::MachineSpec{}, 24601};
    suite_ = new workloads::Suite{workloads::Suite::standard()};
    characterizations_ = new std::vector<core::KernelCharacterization>{
        eval::characterize(*machine_, *suite_)};
    model_ =
        new core::TrainedModel{core::train(*characterizations_).model};
  }
  static void TearDownTestSuite() {
    delete model_;
    delete characterizations_;
    delete suite_;
    delete machine_;
  }
  static soc::Machine* machine_;
  static workloads::Suite* suite_;
  static std::vector<core::KernelCharacterization>* characterizations_;
  static core::TrainedModel* model_;
};

soc::Machine* SuiteSweep::machine_ = nullptr;
workloads::Suite* SuiteSweep::suite_ = nullptr;
std::vector<core::KernelCharacterization>* SuiteSweep::characterizations_ =
    nullptr;
core::TrainedModel* SuiteSweep::model_ = nullptr;

TEST_P(SuiteSweep, OracleFrontierIsWellFormed) {
  const auto& instance = suite_->instances()[GetParam()];
  const eval::Oracle oracle = eval::build_oracle(*machine_, instance);
  const hw::ConfigSpace space;
  ASSERT_GE(oracle.frontier.size(), 3u) << instance.id();
  // Strictly increasing in both axes along the frontier.
  const auto& points = oracle.frontier.points();
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].power_w, points[i - 1].power_w);
    EXPECT_GT(points[i].performance, points[i - 1].performance);
  }
  // The frontier's low-power end is always a CPU configuration on this
  // machine (the GPU plane cannot be fully powered off, Fig. 2).
  EXPECT_EQ(space.at(points.front().config_index).device, hw::Device::Cpu)
      << instance.id();
  // Power levels stay within the chip's physical envelope.
  EXPECT_GT(points.front().power_w, 8.0);
  EXPECT_LT(points.back().power_w, 100.0);
}

TEST_P(SuiteSweep, PredictionIsSaneForEveryKernel) {
  const auto& characterization = (*characterizations_)[GetParam()];
  const core::Prediction prediction =
      model_->predict(characterization.samples);
  EXPECT_LT(prediction.cluster, model_->cluster_count());
  EXPECT_GE(prediction.frontier.size(), 2u);
  for (const auto& estimate : prediction.per_config) {
    EXPECT_TRUE(std::isfinite(estimate.power_w));
    EXPECT_TRUE(std::isfinite(estimate.performance));
    EXPECT_GT(estimate.power_w, 0.0);
    EXPECT_LT(estimate.power_w, 200.0);
    EXPECT_GT(estimate.performance, 0.0);
  }
  // Predicted power at the measured sample configurations should be in
  // the right ballpark (the model saw these powers as features).
  const hw::ConfigSpace space;
  const double predicted_cpu_sample =
      prediction.per_config[space.cpu_sample_index()].power_w;
  const double measured_cpu_sample =
      characterization.samples.cpu.total_power_w();
  EXPECT_NEAR(predicted_cpu_sample / measured_cpu_sample, 1.0, 0.5)
      << characterization.instance_id;
}

TEST_P(SuiteSweep, MethodOutcomesRespectStructuralConstraints) {
  const auto& instance = suite_->instances()[GetParam()];
  const auto& characterization = (*characterizations_)[GetParam()];
  const eval::Oracle oracle = eval::build_oracle(*machine_, instance);
  const auto caps = oracle.constraints();
  const double cap = caps[caps.size() / 2];
  const core::Prediction prediction =
      model_->predict(characterization.samples);
  eval::MethodOptions fast;
  fast.warm_iterations = 2;

  for (const auto method : eval::all_methods()) {
    const auto outcome = eval::run_method(*machine_, instance, method, cap,
                                          &prediction, fast);
    EXPECT_GT(outcome.measured_power_w, 5.0) << to_string(method);
    EXPECT_LT(outcome.measured_power_w, 120.0) << to_string(method);
    EXPECT_GT(outcome.measured_performance, 0.0) << to_string(method);
    switch (method) {
      case eval::Method::CpuFL:
      case eval::Method::PackCap:
        EXPECT_EQ(outcome.final_config.device, hw::Device::Cpu);
        break;
      case eval::Method::GpuFL:
        EXPECT_EQ(outcome.final_config.device, hw::Device::Gpu);
        break;
      case eval::Method::Model:
      case eval::Method::ModelFL:
        break;  // free device choice
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllInstances, SuiteSweep,
                         ::testing::Range<std::size_t>(0, 65));

}  // namespace
}  // namespace acsel
