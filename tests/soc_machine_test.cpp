// Tests for the SMU sampler and the tick-based machine execution engine.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/config_space.h"
#include "soc/machine.h"
#include "soc/smu.h"
#include "util/error.h"

namespace acsel::soc {
namespace {

using hw::ConfigSpace;
using hw::Configuration;
using hw::Device;

KernelCharacteristics test_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 1.0;
  k.bytes_per_flop = 0.4;
  k.parallel_fraction = 0.95;
  k.vector_fraction = 0.4;
  k.gpu_efficiency = 0.5;
  k.launch_overhead_ms = 0.5;
  return k;
}

// ------------------------------------------------------------------ smu --

TEST(Smu, IntegratesEnergyExactlyWithoutNoise) {
  Smu smu{0.0, 10.0, Rng{1}};
  for (int i = 0; i < 100; ++i) {
    smu.sample(10.0, 20.0, 1.0);  // 30 W for 100 ms
  }
  EXPECT_NEAR(smu.total_energy_j(), 3.0, 1e-9);
  EXPECT_NEAR(smu.avg_cpu_w(), 10.0, 1e-9);
  EXPECT_NEAR(smu.avg_nbgpu_w(), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(smu.elapsed_ms(), 100.0);
  EXPECT_EQ(smu.sample_count(), 100u);
}

TEST(Smu, NoisyAverageConvergesToTruth) {
  Smu smu{0.05, 10.0, Rng{2}};
  for (int i = 0; i < 20000; ++i) {
    smu.sample(15.0, 10.0, 1.0);
  }
  EXPECT_NEAR(smu.avg_total_w(), 25.0, 0.1);
}

TEST(Smu, WindowViewTracksRecentSamplesOnly) {
  Smu smu{0.0, 10.0, Rng{3}};
  for (int i = 0; i < 50; ++i) {
    smu.sample(5.0, 5.0, 1.0);
  }
  for (int i = 0; i < 20; ++i) {
    smu.sample(20.0, 20.0, 1.0);
  }
  const PowerView view = smu.window_view();
  // The 10 ms window contains only the 40 W regime.
  EXPECT_NEAR(view.window_avg_w, 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(view.elapsed_ms, 70.0);
}

TEST(Smu, EmptyWindowIsZero) {
  Smu smu{0.0, 10.0, Rng{4}};
  EXPECT_DOUBLE_EQ(smu.window_view().window_avg_w, 0.0);
  EXPECT_DOUBLE_EQ(smu.avg_total_w(), 0.0);
}

TEST(Smu, RejectsInvalidSamples) {
  Smu smu{0.0, 10.0, Rng{5}};
  EXPECT_THROW(smu.sample(-1.0, 0.0, 1.0), Error);
  EXPECT_THROW(smu.sample(1.0, 1.0, 0.0), Error);
}

// -------------------------------------------------------------- machine --

TEST(Machine, RunMatchesAnalyticWithinNoise) {
  Machine machine;
  const ConfigSpace space;
  const auto k = test_kernel();
  const auto config = space.cpu_sample();
  const auto truth = machine.analytic(k, config);
  const auto result = machine.run(k, config);
  EXPECT_NEAR(result.time_ms / truth.time_ms, 1.0, 0.05);
  EXPECT_NEAR(result.avg_power_w() / truth.total_power_w(), 1.0, 0.05);
  EXPECT_EQ(result.final_config, config);
  EXPECT_EQ(result.config_switches, 0u);
}

TEST(Machine, DeterministicForSameSeed) {
  const auto k = test_kernel();
  const ConfigSpace space;
  Machine a{MachineSpec{}, 99};
  Machine b{MachineSpec{}, 99};
  const auto ra = a.run(k, space.cpu_sample());
  const auto rb = b.run(k, space.cpu_sample());
  EXPECT_DOUBLE_EQ(ra.time_ms, rb.time_ms);
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
}

TEST(Machine, RepeatedRunsVaryButOnlySlightly) {
  Machine machine;
  const ConfigSpace space;
  const auto k = test_kernel();
  const auto r1 = machine.run(k, space.cpu_sample());
  const auto r2 = machine.run(k, space.cpu_sample());
  EXPECT_NE(r1.time_ms, r2.time_ms);  // noise present
  EXPECT_NEAR(r1.time_ms / r2.time_ms, 1.0, 0.1);
}

TEST(Machine, EnergyEqualsAveragePowerTimesTime) {
  Machine machine;
  const ConfigSpace space;
  const auto result = machine.run(test_kernel(), space.gpu_sample());
  EXPECT_NEAR(result.energy_j,
              result.avg_power_w() * result.time_ms * 1e-3, 1e-9);
}

TEST(Machine, CountersAccumulateFullKernel) {
  Machine machine{MachineSpec{}, 7};
  const ConfigSpace space;
  const auto k = test_kernel();
  const auto config = space.cpu_sample();
  const auto result = machine.run(k, config);
  const auto expected =
      synthesize_counters(machine.spec(), k, config,
                          machine.analytic(k, config));
  // Tick accumulation should reproduce the per-invocation totals closely.
  EXPECT_NEAR(result.counters.instructions / expected.instructions, 1.0,
              0.02);
  EXPECT_NEAR(result.counters.dram_accesses / expected.dram_accesses, 1.0,
              0.02);
}

/// Governor that forces the CPU to the lowest P-state at the first
/// opportunity, for testing mid-run retargeting.
class DropToFloor : public Governor {
 public:
  std::optional<hw::Configuration> on_interval(
      const PowerView&, const hw::Configuration& current) override {
    if (current.cpu_pstate == 0) {
      return std::nullopt;
    }
    hw::Configuration next = current;
    next.cpu_pstate = 0;
    return next;
  }
};

TEST(Machine, GovernorRetargetsMidRun) {
  Machine machine;
  const ConfigSpace space;
  auto k = test_kernel();
  k.work_gflop = 3.0;  // long enough to straddle several control intervals
  DropToFloor governor;
  const auto result = machine.run(k, space.cpu_sample(), &governor);
  EXPECT_EQ(result.final_config.cpu_pstate, 0u);
  EXPECT_EQ(result.config_switches, 1u);
  // Slower than the un-governed run at the sample config.
  const auto ungoverned = machine.analytic(k, space.cpu_sample());
  EXPECT_GT(result.time_ms, ungoverned.time_ms);
}

/// Governor that illegally changes thread count; the machine must reject.
class IllegalGovernor : public Governor {
 public:
  std::optional<hw::Configuration> on_interval(
      const PowerView&, const hw::Configuration& current) override {
    hw::Configuration next = current;
    next.threads = 1;
    return next;
  }
};

TEST(Machine, RejectsNonDvfsGovernorChanges) {
  Machine machine;
  const ConfigSpace space;
  auto k = test_kernel();
  k.work_gflop = 3.0;
  IllegalGovernor governor;
  EXPECT_THROW(machine.run(k, space.cpu_sample(), &governor), Error);
}

TEST(Machine, ShortKernelsStillComplete) {
  Machine machine;
  const ConfigSpace space;
  auto k = test_kernel();
  k.work_gflop = 0.001;  // sub-tick kernel
  const auto result = machine.run(k, space.gpu_sample());
  EXPECT_GT(result.time_ms, 0.0);
  EXPECT_GT(result.avg_power_w(), 0.0);
}

TEST(Machine, PerformanceIsInverseTime) {
  ExecutionResult r;
  r.time_ms = 50.0;
  EXPECT_DOUBLE_EQ(r.performance(), 20.0);
}

}  // namespace
}  // namespace acsel::soc
