// Tests for Pareto frontier construction and frontier-order dissimilarity.
#include <gtest/gtest.h>

#include <vector>

#include "pareto/dissimilarity.h"
#include "pareto/frontier.h"
#include "util/error.h"
#include "util/rng.h"

namespace acsel::pareto {
namespace {

ParetoFrontier make(const std::vector<double>& power,
                    const std::vector<double>& perf) {
  return ParetoFrontier::build(power, perf);
}

TEST(Frontier, KeepsOnlyNonDominatedPoints) {
  // Index 1 dominates index 2 (less power, more perf). Index 3 dominates
  // nothing but is dominated by nothing.
  const std::vector<double> power{10.0, 12.0, 13.0, 20.0};
  const std::vector<double> perf{1.0, 3.0, 2.0, 4.0};
  const auto frontier = make(power, perf);
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_TRUE(frontier.contains(0));
  EXPECT_TRUE(frontier.contains(1));
  EXPECT_FALSE(frontier.contains(2));
  EXPECT_TRUE(frontier.contains(3));
}

TEST(Frontier, SortedByPowerAndPerformance) {
  Rng rng{21};
  std::vector<double> power(40);
  std::vector<double> perf(40);
  for (std::size_t i = 0; i < 40; ++i) {
    power[i] = rng.uniform(5.0, 50.0);
    perf[i] = rng.uniform(0.1, 10.0);
  }
  const auto frontier = make(power, perf);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier.points()[i].power_w,
              frontier.points()[i - 1].power_w);
    EXPECT_GT(frontier.points()[i].performance,
              frontier.points()[i - 1].performance);
  }
}

TEST(Frontier, NoFrontierPointDominatedByAnyInput) {
  Rng rng{22};
  std::vector<double> power(60);
  std::vector<double> perf(60);
  for (std::size_t i = 0; i < 60; ++i) {
    power[i] = rng.uniform(5.0, 50.0);
    perf[i] = rng.uniform(0.1, 10.0);
  }
  const auto frontier = make(power, perf);
  for (const auto& point : frontier.points()) {
    for (std::size_t j = 0; j < 60; ++j) {
      const bool dominates = power[j] <= point.power_w &&
                             perf[j] >= point.performance &&
                             (power[j] < point.power_w ||
                              perf[j] > point.performance);
      EXPECT_FALSE(dominates) << "frontier point dominated by input " << j;
    }
  }
}

TEST(Frontier, EqualPowerKeepsBestPerformance) {
  const std::vector<double> power{10.0, 10.0, 10.0};
  const std::vector<double> perf{1.0, 3.0, 2.0};
  const auto frontier = make(power, perf);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier.points()[0].config_index, 1u);
}

TEST(Frontier, ExactDuplicatesKeepLowestIndex) {
  const std::vector<double> power{10.0, 10.0};
  const std::vector<double> perf{2.0, 2.0};
  const auto frontier = make(power, perf);
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_EQ(frontier.points()[0].config_index, 0u);
}

TEST(Frontier, BestUnderWalksTheFrontier) {
  const std::vector<double> power{10.0, 15.0, 25.0};
  const std::vector<double> perf{1.0, 2.0, 3.0};
  const auto frontier = make(power, perf);
  EXPECT_FALSE(frontier.best_under(9.0).has_value());
  EXPECT_EQ(frontier.best_under(10.0)->config_index, 0u);
  EXPECT_EQ(frontier.best_under(16.0)->config_index, 1u);
  EXPECT_EQ(frontier.best_under(100.0)->config_index, 2u);
}

TEST(Frontier, EndpointAccessors) {
  const std::vector<double> power{10.0, 15.0, 25.0};
  const std::vector<double> perf{1.0, 2.0, 3.0};
  const auto frontier = make(power, perf);
  EXPECT_EQ(frontier.lowest_power().config_index, 0u);
  EXPECT_EQ(frontier.best_performance().config_index, 2u);
}

TEST(Frontier, PositionOf) {
  const std::vector<double> power{10.0, 15.0, 12.0};
  const std::vector<double> perf{1.0, 3.0, 0.5};
  const auto frontier = make(power, perf);  // 2 is dominated by 0
  EXPECT_EQ(frontier.position_of(0), 0u);
  EXPECT_EQ(frontier.position_of(1), 1u);
  EXPECT_FALSE(frontier.position_of(2).has_value());
}

TEST(Frontier, RejectsBadInput) {
  EXPECT_THROW(make({}, {}), Error);
  EXPECT_THROW(make({1.0}, {1.0, 2.0}), Error);
  EXPECT_THROW(make({0.0}, {1.0}), Error);
  EXPECT_THROW(make({1.0}, {-1.0}), Error);
}

TEST(Frontier, EmptyFrontierAccessorsThrow) {
  const ParetoFrontier frontier;
  EXPECT_THROW(frontier.best_under(10.0), Error);
  EXPECT_THROW(frontier.lowest_power(), Error);
}

// -------------------------------------------------------- dissimilarity --

TEST(Dissimilarity, IdenticalFrontiersAreZero) {
  const auto f = make({10.0, 15.0, 25.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(frontier_order_dissimilarity(f, f), 0.0);
  EXPECT_DOUBLE_EQ(frontier_membership_dissimilarity(f, f), 0.0);
  EXPECT_DOUBLE_EQ(frontier_dissimilarity(f, f), 0.0);
}

TEST(Dissimilarity, SameConfigsSameOrderIsZero) {
  // Different power levels but identical membership and ordering.
  const auto a = make({10.0, 15.0, 25.0}, {1.0, 2.0, 3.0});
  const auto b = make({11.0, 14.0, 30.0}, {0.5, 2.5, 9.0});
  EXPECT_DOUBLE_EQ(frontier_dissimilarity(a, b), 0.0);
}

TEST(Dissimilarity, ReversedSharedOrderMaxesOrderTerm) {
  // Configs 0,1,2 appear on both frontiers but in opposite order.
  const auto a = make({10.0, 15.0, 25.0}, {1.0, 2.0, 3.0});
  const std::vector<double> power_b{25.0, 15.0, 10.0};
  const std::vector<double> perf_b{3.0, 2.0, 1.0};
  const auto b = ParetoFrontier::build(power_b, perf_b);
  // b's frontier order: index 2 (10 W) < index 1 < index 0 — reversed.
  EXPECT_DOUBLE_EQ(frontier_order_dissimilarity(a, b), 1.0);
  EXPECT_DOUBLE_EQ(frontier_membership_dissimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(frontier_dissimilarity(a, b), 0.5);  // equal blend
}

TEST(Dissimilarity, FewSharedConfigsIsNeutralInOrderTerm) {
  // Frontiers overlapping in at most one config carry no order signal.
  const std::vector<double> power_a{10.0, 15.0, 30.0, 31.0};
  const std::vector<double> perf_a{1.0, 2.0, 0.1, 0.2};  // 2,3 dominated
  // b's frontier is {2, 3, 0}; only config 0 is shared with a's {0, 1}.
  const std::vector<double> power_b{30.0, 31.0, 10.0, 15.0};
  const std::vector<double> perf_b{1.0, 0.5, 0.05, 0.07};
  const auto a = ParetoFrontier::build(power_a, perf_a);
  const auto b = ParetoFrontier::build(power_b, perf_b);
  EXPECT_DOUBLE_EQ(frontier_order_dissimilarity(a, b), 0.5);
  // Membership: 1 shared of 4 distinct -> 0.75.
  EXPECT_DOUBLE_EQ(frontier_membership_dissimilarity(a, b), 0.75);
  EXPECT_DOUBLE_EQ(frontier_dissimilarity(a, b), 0.625);
}

TEST(Dissimilarity, DisjointMembershipIsMaximal) {
  const auto a = make({10.0, 15.0}, {1.0, 2.0});
  const std::vector<double> power_b{12.0, 16.0, 9.0, 14.0};
  const std::vector<double> perf_b{0.1, 0.2, 1.0, 2.0};  // 0,1 dominated
  const auto b = ParetoFrontier::build(power_b, perf_b);
  EXPECT_DOUBLE_EQ(frontier_membership_dissimilarity(a, b), 1.0);
}

TEST(Dissimilarity, WeightsAreRespected) {
  const auto a = make({10.0, 15.0, 25.0}, {1.0, 2.0, 3.0});
  const std::vector<double> power_b{25.0, 15.0, 10.0};
  const std::vector<double> perf_b{3.0, 2.0, 1.0};
  const auto b = ParetoFrontier::build(power_b, perf_b);  // reversed order
  DissimilarityOptions order_only;
  order_only.order_weight = 1.0;
  order_only.membership_weight = 0.0;
  EXPECT_DOUBLE_EQ(frontier_dissimilarity(a, b, order_only), 1.0);
  DissimilarityOptions member_only;
  member_only.order_weight = 0.0;
  member_only.membership_weight = 1.0;
  EXPECT_DOUBLE_EQ(frontier_dissimilarity(a, b, member_only), 0.0);
  DissimilarityOptions bad;
  bad.order_weight = 0.0;
  bad.membership_weight = 0.0;
  EXPECT_THROW(frontier_dissimilarity(a, b, bad), Error);
}

TEST(Dissimilarity, MatrixIsValidForPam) {
  Rng rng{31};
  std::vector<ParetoFrontier> fronts;
  for (int k = 0; k < 8; ++k) {
    std::vector<double> power(20);
    std::vector<double> perf(20);
    for (std::size_t i = 0; i < 20; ++i) {
      power[i] = rng.uniform(5.0, 50.0);
      perf[i] = rng.uniform(0.1, 10.0);
    }
    fronts.push_back(ParetoFrontier::build(power, perf));
  }
  const auto d = dissimilarity_matrix(fronts);
  ASSERT_EQ(d.rows(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
      EXPECT_GE(d(i, j), 0.0);
      EXPECT_LE(d(i, j), 1.0);
    }
  }
}

TEST(Dissimilarity, MatrixRejectsEmptyInput) {
  EXPECT_THROW(dissimilarity_matrix({}), Error);
}

}  // namespace
}  // namespace acsel::pareto
