// Tests for the util substrate: errors, RNG determinism and distribution
// sanity, string helpers, CSV round-trips, table rendering, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace acsel {
namespace {

// ---------------------------------------------------------------- error --

TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(ACSEL_CHECK(1 + 1 == 2)); }

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(ACSEL_CHECK(1 + 1 == 3), Error);
}

TEST(Error, CheckMessageContainsExpressionAndLocation) {
  try {
    ACSEL_CHECK_MSG(false, "extra context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("extra context"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng{0};
  // SplitMix64 seeding guarantees a non-degenerate state even for seed 0.
  EXPECT_NE(rng.next_u64(), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng{1};
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng{17};
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) {
    seen[rng.uniform_index(5)] = true;
  }
  for (const bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng{1};
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{19};
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng{23};
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng{1};
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent{29};
  Rng child = parent.split();
  // The child stream should not reproduce the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += parent.next_u64() == child.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{31};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng{37};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[static_cast<std::size_t>(i)] = i;
  }
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

// -------------------------------------------------------------- strings --

TEST(Strings, SplitBasic) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,c,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitEmptyStringYieldsOneField) {
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("configuration", "config"));
  EXPECT_FALSE(starts_with("conf", "config"));
}

TEST(Strings, FormatParseRoundTrip) {
  const double values[] = {0.0, 1.0, -2.5, 3.14159265358979,
                           1e-300, 1e300, 12.5};
  for (const double v : values) {
    EXPECT_DOUBLE_EQ(parse_double(format_double(v, 17)), v) << v;
  }
}

TEST(Strings, ParseDoubleRejectsGarbage) {
  EXPECT_THROW(parse_double("not-a-number"), Error);
  EXPECT_THROW(parse_double("1.5x"), Error);
  EXPECT_THROW(parse_double(""), Error);
}

TEST(Strings, ParseSizeBasic) {
  EXPECT_EQ(parse_size("42"), 42u);
  EXPECT_THROW(parse_size("-1"), Error);
  EXPECT_THROW(parse_size("abc"), Error);
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

// ------------------------------------------------------------------ csv --

TEST(Csv, WriteSimpleRows) {
  std::ostringstream os;
  CsvWriter writer{os};
  writer.header({"kernel", "power_w"});
  writer.row({"lulesh.hourglass", "24.2"});
  EXPECT_EQ(os.str(), "kernel,power_w\nlulesh.hourglass,24.2\n");
  EXPECT_EQ(writer.rows_written(), 1u);
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter writer{os};
  writer.row({"with,comma", "with\"quote", "plain"});
  EXPECT_EQ(os.str(), "\"with,comma\",\"with\"\"quote\",plain\n");
}

TEST(Csv, RowWidthMustMatchHeader) {
  std::ostringstream os;
  CsvWriter writer{os};
  writer.header({"a", "b"});
  EXPECT_THROW(writer.row({"only-one"}), Error);
}

TEST(Csv, ParseRoundTrip) {
  std::ostringstream os;
  CsvWriter writer{os};
  writer.header({"name", "value"});
  writer.row({"x,y", "1.5"});
  writer.row({"line\nbreak", "-2"});
  const CsvDocument doc = parse_csv(os.str());
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[1][0], "line\nbreak");
  EXPECT_EQ(doc.column("value"), 1u);
  EXPECT_THROW(doc.column("missing"), Error);
}

TEST(Csv, ParseHandlesCrLf) {
  const CsvDocument doc = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, ParseRejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), Error);
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("a\n\"unterminated\n"), Error);
}

TEST(Csv, ParseEmptyInput) {
  const CsvDocument doc = parse_csv("");
  EXPECT_TRUE(doc.header.empty());
  EXPECT_TRUE(doc.rows.empty());
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path.csv"), Error);
}

// ---------------------------------------------------------------- table --

TEST(Table, RendersAlignedColumns) {
  TextTable table;
  table.set_header({"Method", "% Under-limit"});
  table.add_row({"Model", "70"});
  table.add_row({"Model+FL", "88"});
  std::ostringstream os;
  table.print(os, "Comparison");
  const std::string text = os.str();
  EXPECT_NE(text.find("Comparison"), std::string::npos);
  EXPECT_NE(text.find("| Model    |"), std::string::npos);
  EXPECT_NE(text.find("| Model+FL |"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  TextTable table;
  table.set_header({"bench", "a", "b"});
  table.add_numeric_row("lulesh", {91.0, 1723.456}, 4);
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("91"), std::string::npos);
  EXPECT_NE(os.str().find("1723"), std::string::npos);
}

TEST(Table, RowWidthValidated) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"1", "2", "3"}), Error);
}

TEST(Table, EmptyTablePrintsNothing) {
  TextTable table;
  std::ostringstream os;
  table.print(os);
  EXPECT_TRUE(os.str().empty());
}

// ------------------------------------------------------------------ log --

TEST(Log, LevelThresholdRespected) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Off);
  ACSEL_LOG_WARN("this must not be evaluated: " << [] {
    []() { FAIL() << "log expression evaluated below threshold"; }();
    return 0;
  }());
  set_log_level(old);
}

TEST(Log, SetAndGetRoundTrip) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(old);
}

TEST(Log, FormatLineStampsUptimeAndLevel) {
  EXPECT_EQ(detail::format_log_line(LogLevel::Info, 12.345, "hello"),
            "[12.345s INFO] hello\n");
  EXPECT_EQ(detail::format_log_line(LogLevel::Warn, 0.0, "x"),
            "[0.000s WARN] x\n");
  EXPECT_EQ(detail::format_log_line(LogLevel::Debug, 1.0004, ""),
            "[1.000s DEBUG] \n");
}

TEST(Log, ParseLevelNamesCaseInsensitive) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

std::vector<std::string>& sink_lines() {
  static std::vector<std::string> lines;
  return lines;
}
void test_sink(const std::string& line) { sink_lines().push_back(line); }

TEST(Log, SinkReceivesCompleteFormattedLines) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::Info);
  sink_lines().clear();
  set_log_sink(&test_sink);
  ACSEL_LOG_INFO("captured " << 42);
  ACSEL_LOG_DEBUG("below threshold, never emitted");
  set_log_sink(nullptr);
  set_log_level(old);
  ASSERT_EQ(sink_lines().size(), 1u);
  const std::string& line = sink_lines().front();
  EXPECT_EQ(line.front(), '[');
  EXPECT_NE(line.find("s INFO] captured 42\n"), std::string::npos);
}

TEST(Log, ConsumeFlagAppliesLevelAndRejectsUnknown) {
  const LogLevel old = log_level();
  EXPECT_FALSE(consume_log_level_flag("--other=3"));
  EXPECT_FALSE(consume_log_level_flag("train"));
  EXPECT_TRUE(consume_log_level_flag("--log-level=debug"));
  EXPECT_EQ(log_level(), LogLevel::Debug);
  EXPECT_THROW(consume_log_level_flag("--log-level=loud"), Error);
  set_log_level(old);
}

}  // namespace
}  // namespace acsel
