// Tests for feature construction and characterization plumbing.
#include <gtest/gtest.h>

#include "core/characterization.h"
#include "core/features.h"
#include "eval/characterize.h"
#include "hw/config_space.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::core {
namespace {

class FeaturesTest : public ::testing::Test {
 protected:
  soc::Machine machine_{soc::MachineSpec{}, 11};
  workloads::Suite suite_ = workloads::Suite::standard();
  hw::ConfigSpace space_;

  SamplePair samples_for(const std::string& id) {
    return eval::characterize_instance(machine_, suite_.instance(id))
        .samples;
  }
};

TEST_F(FeaturesTest, PowerFeatureCountMatchesNames) {
  const auto samples = samples_for("LULESH-Small/CalcPressureForElems");
  const auto f = power_features(space_.cpu_sample(), samples);
  EXPECT_EQ(f.size(), power_feature_names().size());
}

TEST_F(FeaturesTest, PerfFeatureCountMatchesNames) {
  const auto f = perf_features(space_.gpu_sample());
  EXPECT_EQ(f.size(), perf_feature_names().size());
}

TEST_F(FeaturesTest, ClassificationFeatureCountMatchesNames) {
  const auto samples = samples_for("CoMD-LJ/ComputeForce");
  const auto f = classification_features(samples);
  EXPECT_EQ(f.size(), classification_feature_names().size());
}

TEST_F(FeaturesTest, FeaturesAreOrderOne) {
  const auto samples = samples_for("SMC-Default/ChemistryRates");
  for (const auto& config : space_.all()) {
    for (const double v : power_features(config, samples)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 5.0);
    }
    for (const double v : perf_features(config)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.5);
    }
  }
}

TEST_F(FeaturesTest, DeviceIndicatorAndParkedGpuFrequency) {
  const auto samples = samples_for("LU-Small/lud");
  const auto cpu_f = power_features(space_.cpu_sample(), samples);
  const auto gpu_f = power_features(space_.gpu_sample(), samples);
  EXPECT_EQ(cpu_f[0], 0.0);  // dev indicator
  EXPECT_EQ(gpu_f[0], 1.0);
  EXPECT_EQ(cpu_f[3], 0.0);  // parked GPU contributes no gpu_f signal
  EXPECT_GT(gpu_f[3], 0.0);
}

TEST_F(FeaturesTest, PerfFeaturesVaryOnlyWithinDevice) {
  // Same CPU config at two frequencies: only frequency-derived entries
  // change; the constant stays 1.
  hw::Configuration slow = space_.cpu_sample();
  slow.cpu_pstate = 0;
  const auto a = perf_features(space_.cpu_sample());
  const auto b = perf_features(slow);
  EXPECT_EQ(a[0], 1.0);
  EXPECT_EQ(b[0], 1.0);
  EXPECT_GT(a[1], b[1]);
  EXPECT_EQ(a[2], b[2]);  // same thread count
}

TEST_F(FeaturesTest, GpuFriendlyKernelHasHighPerfRatioFeature) {
  const auto lu = samples_for("LU-Large/lud");
  const auto halo = samples_for("CoMD-LJ/HaloExchange");
  const auto& names = classification_feature_names();
  std::size_t ratio_index = names.size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "gpu_cpu_perf_ratio") {
      ratio_index = i;
    }
  }
  ASSERT_LT(ratio_index, names.size());
  const auto lu_f = classification_features(lu);
  const auto halo_f = classification_features(halo);
  EXPECT_GT(lu_f[ratio_index], halo_f[ratio_index]);
}

TEST_F(FeaturesTest, ClassificationRejectsSwappedSamples) {
  auto samples = samples_for("LU-Small/lud");
  std::swap(samples.cpu, samples.gpu);
  EXPECT_THROW(classification_features(samples), Error);
}

// ------------------------------------------------------ characterization --

TEST_F(FeaturesTest, CharacterizationCoversEveryConfig) {
  const auto c = eval::characterize_instance(
      machine_, suite_.instance("LULESH-Small/UpdateVolumesForElems"));
  EXPECT_EQ(c.per_config.size(), space_.size());
  EXPECT_NO_THROW(c.validate(space_.size()));
  EXPECT_EQ(c.benchmark, "LULESH");
  EXPECT_EQ(c.group, "LULESH Small");
  for (std::size_t i = 0; i < space_.size(); ++i) {
    EXPECT_EQ(c.per_config[i].config, space_.at(i));
  }
}

TEST_F(FeaturesTest, CharacterizationFrontierIsPlausible) {
  const auto c = eval::characterize_instance(
      machine_, suite_.instance("LULESH-Large/CalcFBHourglassForce"));
  const auto frontier = c.frontier();
  EXPECT_GE(frontier.size(), 4u);
  // Fig. 2 shape: the lowest-power frontier point is a CPU configuration,
  // the highest-performance one is a GPU configuration.
  EXPECT_EQ(space_.at(frontier.lowest_power().config_index).device,
            hw::Device::Cpu);
  EXPECT_EQ(space_.at(frontier.best_performance().config_index).device,
            hw::Device::Gpu);
}

TEST_F(FeaturesTest, RepsReduceMeasurementScatter) {
  eval::CharacterizeOptions one;
  one.reps = 1;
  eval::CharacterizeOptions many;
  many.reps = 6;
  const auto& instance = suite_.instance("SMC-Default/DiffusionFluxX");
  const auto truth =
      machine_.analytic(instance.traits, space_.cpu_sample());
  const auto c =
      eval::characterize_instance(machine_, instance, many);
  const std::size_t i = space_.cpu_sample_index();
  EXPECT_NEAR(c.per_config[i].time_ms / truth.time_ms, 1.0, 0.02);
}

TEST_F(FeaturesTest, ValidateCatchesIncompleteData) {
  auto c = eval::characterize_instance(
      machine_, suite_.instance("LU-Small/lud"));
  c.per_config.pop_back();
  EXPECT_THROW(c.validate(space_.size()), Error);
}

}  // namespace
}  // namespace acsel::core
