// Tests for the obs metric registry: counter/gauge/histogram semantics,
// histogram merge, concurrent recording (exercised under TSan in CI),
// registry snapshot/reset, and the text/CSV/JSON exporters.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/error.h"

namespace acsel::obs {
namespace {

TEST(Histogram, MergeAddsCountsAndTakesMax) {
  Histogram a;
  Histogram b;
  a.record(1000);
  a.record(2000);
  b.record(2000);
  b.record(500000);
  a.merge(b);
  const Histogram::Snapshot snap = a.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.max_us, 500.0);
  // The merged cells are the sum of both histograms' cells.
  Histogram c;
  c.record(1000);
  c.record(2000);
  c.record(2000);
  c.record(500000);
  EXPECT_DOUBLE_EQ(snap.p50_us, c.snapshot().p50_us);
  EXPECT_DOUBLE_EQ(snap.p99_us, c.snapshot().p99_us);
}

TEST(Histogram, MergeOfEmptyIsIdentity) {
  Histogram a;
  a.record(4096);
  Histogram b;
  a.merge(b);
  EXPECT_EQ(a.snapshot().count, 1u);
  b.merge(a);
  EXPECT_EQ(b.snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(b.snapshot().max_us, a.snapshot().max_us);
}

TEST(Histogram, ConcurrentRecordAndMergeIsRaceFree) {
  // 4 writers record into shards while a collector repeatedly folds the
  // shards into a total — the pattern TSan checks for data races in CI.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<Histogram> shards(kThreads);
  Histogram total;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&shards, t] {
      for (int i = 0; i < kPerThread; ++i) {
        shards[static_cast<std::size_t>(t)].record(
            static_cast<std::uint64_t>(i * kThreads + t + 1));
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    for (const Histogram& shard : shards) {
      total.merge(shard);  // torn mid-run merges are fine; races are not
    }
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  Histogram final_total;
  for (const Histogram& shard : shards) {
    final_total.merge(shard);
  }
  EXPECT_EQ(final_total.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(final_total.snapshot().max_us,
                   static_cast<double>(kThreads * kPerThread) / 1e3);
}

TEST(Registry, ConcurrentRegistrationAndRecordingIsRaceFree) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry, t] {
      // Same names from every thread: registration must race-freely
      // resolve to the same cells.
      Counter& hits = registry.counter("hits");
      Histogram& lat = registry.histogram("latency");
      registry.gauge("depth").set(static_cast<double>(t));
      for (int i = 0; i < 10000; ++i) {
        hits.add();
        lat.record(static_cast<std::uint64_t>(i + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Sorted by name: depth, hits, latency.
  EXPECT_EQ(snapshot[0].name, "depth");
  EXPECT_EQ(snapshot[1].name, "hits");
  EXPECT_EQ(snapshot[1].count, 40000u);
  EXPECT_EQ(snapshot[2].name, "latency");
  EXPECT_EQ(snapshot[2].count, 40000u);
}

TEST(Registry, StableReferencesAndKinds) {
  Registry registry;
  Counter& c1 = registry.counter("a");
  registry.histogram("b");
  registry.gauge("c");
  Counter& c2 = registry.counter("a");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(registry.size(), 3u);
  // A name is bound to one kind forever.
  EXPECT_THROW(registry.gauge("a"), Error);
  EXPECT_THROW(registry.counter("b"), Error);
  EXPECT_THROW(registry.counter(""), Error);
}

TEST(Registry, ResetZeroesValuesButKeepsNames) {
  Registry registry;
  registry.counter("a").add(7);
  registry.gauge("g").set(2.5);
  registry.histogram("h").record(1 << 20);
  registry.reset();
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  for (const MetricSnapshot& metric : snapshot) {
    EXPECT_EQ(metric.count, 0u);
    EXPECT_DOUBLE_EQ(metric.value, 0.0);
    EXPECT_DOUBLE_EQ(metric.max_us, 0.0);
  }
}

TEST(Registry, SnapshotEqualityIsFieldwise) {
  Registry registry;
  registry.counter("a").add(3);
  registry.histogram("h").record(1000);
  const auto first = registry.snapshot();
  EXPECT_EQ(first, registry.snapshot());
  registry.counter("a").add();
  EXPECT_NE(first, registry.snapshot());
}

TEST(Exporters, CsvMatchesHeaderAndRowCount) {
  Registry registry;
  registry.counter("requests").add(5);
  registry.gauge("depth").set(1.5);
  std::ostringstream out;
  CsvWriter writer{out};
  writer.header(registry_csv_header());
  write_registry_csv(writer, registry.snapshot());
  const CsvDocument doc = parse_csv(out.str());
  EXPECT_EQ(doc.header, registry_csv_header());
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][doc.column("name")], "requests");
  EXPECT_EQ(doc.rows[1][doc.column("count")], "5");
  EXPECT_EQ(doc.rows[0][doc.column("kind")], "gauge");
}

TEST(Exporters, JsonParsesBackWithSameValues) {
  Registry registry;
  registry.counter("req \"quoted\"").add(9);
  registry.gauge("temp").set(-3.25);
  registry.histogram("lat").record(1000);
  registry.histogram("lat").record(3000);
  std::ostringstream out;
  write_registry_json(registry.snapshot(), out);

  const JsonValue doc = JsonValue::parse(out.str());
  const auto& metrics = doc.at("metrics").items();
  ASSERT_EQ(metrics.size(), 3u);
  // Registry order is by name: lat, req "quoted", temp.
  EXPECT_EQ(metrics[0].at("name").as_string(), "lat");
  EXPECT_EQ(metrics[0].at("kind").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(metrics[0].at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(metrics[0].at("max_us").as_number(), 3.0);
  EXPECT_EQ(metrics[1].at("name").as_string(), "req \"quoted\"");
  EXPECT_DOUBLE_EQ(metrics[1].at("count").as_number(), 9.0);
  EXPECT_EQ(metrics[2].at("name").as_string(), "temp");
  EXPECT_DOUBLE_EQ(metrics[2].at("value").as_number(), -3.25);
}

TEST(Exporters, TextTableListsEveryMetric) {
  Registry registry;
  registry.counter("hits").add(2);
  registry.histogram("lat").record(500);
  std::ostringstream out;
  print_registry(registry.snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("hits"), std::string::npos);
  EXPECT_NE(text.find("lat"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

}  // namespace
}  // namespace acsel::obs
