// Tests for the time-series store: per-tick observation of registry
// snapshots, histogram expansion, ring eviction at capacity, and the
// rollup/delta window queries the SLO engine and stats scrape read.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/series.h"

namespace acsel::obs {
namespace {

MetricSnapshot counter_snapshot(const char* name, std::uint64_t count) {
  MetricSnapshot metric;
  metric.name = name;
  metric.kind = MetricKind::Counter;
  metric.count = count;
  return metric;
}

MetricSnapshot gauge_snapshot(const char* name, double value) {
  MetricSnapshot metric;
  metric.name = name;
  metric.kind = MetricKind::Gauge;
  metric.value = value;
  return metric;
}

TEST(Series, AppendsAndReportsLatest) {
  Series series{"s", 4};
  EXPECT_FALSE(series.latest().has_value());
  series.append(1, 10.0);
  series.append(2, 20.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.latest().value(), 20.0);
  EXPECT_EQ(series.at_tick(1).value(), 10.0);
  EXPECT_FALSE(series.at_tick(3).has_value());
}

TEST(Series, RingEvictsOldestAtCapacity) {
  Series series{"s", 3};
  for (std::uint64_t t = 1; t <= 5; ++t) {
    series.append(t, static_cast<double>(t));
  }
  EXPECT_EQ(series.size(), 3u);
  const std::vector<SeriesPoint> points = series.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points.front().tick, 3u);  // 1 and 2 overwritten
  EXPECT_EQ(points.back().tick, 5u);
  EXPECT_FALSE(series.at_tick(1).has_value());
}

TEST(Series, RollupAggregatesOnlyTheWindow) {
  Series series{"s", 16};
  for (std::uint64_t t = 1; t <= 10; ++t) {
    series.append(t, static_cast<double>(t));
  }
  // Window (10 - 4, 10] = ticks 7..10.
  const SeriesRollup rollup = series.rollup(4, 10);
  EXPECT_EQ(rollup.points, 4u);
  EXPECT_EQ(rollup.sum, 7.0 + 8.0 + 9.0 + 10.0);
  EXPECT_EQ(rollup.min, 7.0);
  EXPECT_EQ(rollup.max, 10.0);
  EXPECT_EQ(rollup.avg, rollup.sum / 4.0);
}

TEST(Series, DeltaIsNewestMinusOldestInWindow) {
  Series series{"s", 16};
  series.append(1, 100.0);
  series.append(2, 130.0);
  series.append(3, 190.0);
  EXPECT_EQ(series.delta(2, 3), 60.0);   // ticks 2..3
  EXPECT_EQ(series.delta(10, 3), 90.0);  // whole retained history
  EXPECT_EQ(series.delta(1, 3), 0.0);    // one point: no delta
}

TEST(SeriesStore, ObserveAdvancesTickAndRecordsScalars) {
  SeriesStore store{8};
  EXPECT_EQ(store.ticks(), 0u);
  std::vector<MetricSnapshot> snapshot;
  snapshot.push_back(counter_snapshot("c", 5));
  snapshot.push_back(gauge_snapshot("g", 2.5));
  EXPECT_EQ(store.observe(snapshot), 1u);
  snapshot[0].count = 9;
  snapshot[1].value = 3.5;
  EXPECT_EQ(store.observe(snapshot), 2u);
  EXPECT_EQ(store.ticks(), 2u);
  EXPECT_EQ(store.latest("c").value(), 9.0);
  EXPECT_EQ(store.at_tick("c", 1).value(), 5.0);
  EXPECT_EQ(store.latest("g").value(), 3.5);
  EXPECT_EQ(store.delta("c", 8), 4.0);
}

TEST(SeriesStore, ExpandsHistogramsIntoScalarSeries) {
  SeriesStore store{8};
  MetricSnapshot histogram;
  histogram.name = "lat";
  histogram.kind = MetricKind::Histogram;
  histogram.count = 100;
  histogram.p50_us = 10.0;
  histogram.p99_us = 90.0;
  histogram.max_us = 120.0;
  store.observe({histogram});
  const std::vector<std::string> names = store.names();
  EXPECT_EQ(names, (std::vector<std::string>{"lat.count", "lat.max_us",
                                             "lat.p50_us", "lat.p99_us"}));
  EXPECT_EQ(store.latest("lat.count").value(), 100.0);
  EXPECT_EQ(store.latest("lat.p99_us").value(), 90.0);
  EXPECT_EQ(store.latest("lat.max_us").value(), 120.0);
}

TEST(SeriesStore, LateAppearingMetricStartsAtCurrentTick) {
  SeriesStore store{8};
  store.observe({counter_snapshot("a", 1)});
  store.observe({counter_snapshot("a", 2), counter_snapshot("b", 7)});
  EXPECT_FALSE(store.at_tick("b", 1).has_value());
  EXPECT_EQ(store.at_tick("b", 2).value(), 7.0);
}

TEST(SeriesStore, UnknownSeriesQueriesAreEmptyNotFatal) {
  SeriesStore store{8};
  EXPECT_FALSE(store.latest("nope").has_value());
  EXPECT_EQ(store.rollup("nope", 4).points, 0u);
  EXPECT_EQ(store.delta("nope", 4), 0.0);
  EXPECT_TRUE(store.points("nope").empty());
}

TEST(SeriesStore, ReadsFromLiveRegistrySnapshot) {
  Registry registry;
  Counter& hits = registry.counter("hits");
  SeriesStore store{8};
  hits.add(3);
  store.observe(registry.snapshot());
  hits.add(4);
  store.observe(registry.snapshot());
  EXPECT_EQ(store.delta("hits", 8), 4.0);
  EXPECT_EQ(store.latest("hits").value(), 7.0);
}

}  // namespace
}  // namespace acsel::obs
