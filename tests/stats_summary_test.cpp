// Tests for descriptive statistics and cross-validation fold construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/crossval.h"
#include "stats/summary.h"
#include "util/error.h"
#include "util/rng.h"

namespace acsel::stats {
namespace {

TEST(Summary, BasicMoments) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, SingleValueHasZeroStddev) {
  const std::vector<double> v{3.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, EmptyThrows) {
  EXPECT_THROW(summarize({}), Error);
  EXPECT_THROW(mean({}), Error);
  EXPECT_THROW(median({}), Error);
}

TEST(WeightedMean, MatchesHandComputation) {
  const std::vector<double> v{1.0, 10.0};
  const std::vector<double> w{9.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(v, w), 1.9);
}

TEST(WeightedMean, UniformWeightsEqualMean) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(v, w), mean(v));
}

TEST(WeightedMean, RejectsBadWeights) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(weighted_mean(v, std::vector<double>{-1.0, 1.0}), Error);
  EXPECT_THROW(weighted_mean(v, std::vector<double>{0.0, 0.0}), Error);
  EXPECT_THROW(weighted_mean(v, std::vector<double>{1.0}), Error);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(GeometricMean, HandChecked) {
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{1.0, 4.0}), 2.0);
  EXPECT_THROW(geometric_mean(std::vector<double>{1.0, 0.0}), Error);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, ConstantInputThrows) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> c{5.0, 5.0, 5.0};
  EXPECT_THROW(pearson(x, c), Error);
}

TEST(MinMaxNormalize, MapsToUnitInterval) {
  const auto out = min_max_normalize(std::vector<double>{10.0, 20.0, 15.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(MinMaxNormalize, ConstantInputMapsToZero) {
  const auto out = min_max_normalize(std::vector<double>{7.0, 7.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

// ------------------------------------------------------------- crossval --

TEST(LeaveOneGroupOut, OneFoldPerBenchmark) {
  const std::vector<std::string> groups{"lulesh", "lulesh", "comd",
                                        "smc",    "comd",   "lu"};
  const auto folds = leave_one_group_out(groups);
  ASSERT_EQ(folds.size(), 4u);  // four distinct benchmarks
  // Fold 0 holds out "lulesh" (first appearance order).
  EXPECT_EQ(folds[0].test, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(folds[0].train, (std::vector<std::size_t>{2, 3, 4, 5}));
  // Every fold partitions all items.
  for (const auto& fold : folds) {
    std::set<std::size_t> all(fold.train.begin(), fold.train.end());
    all.insert(fold.test.begin(), fold.test.end());
    EXPECT_EQ(all.size(), groups.size());
    EXPECT_FALSE(fold.test.empty());
    EXPECT_FALSE(fold.train.empty());
  }
}

TEST(LeaveOneGroupOut, TestItemsShareGroupAndNeverTrain) {
  const std::vector<std::string> groups{"a", "b", "a", "c", "b"};
  const auto folds = leave_one_group_out(groups);
  for (const auto& fold : folds) {
    const std::string& g = groups[fold.test.front()];
    for (const std::size_t t : fold.test) {
      EXPECT_EQ(groups[t], g);
    }
    for (const std::size_t t : fold.train) {
      EXPECT_NE(groups[t], g);
    }
  }
}

TEST(LeaveOneGroupOut, SingleGroupThrows) {
  EXPECT_THROW(leave_one_group_out({"only", "only"}), Error);
  EXPECT_THROW(leave_one_group_out({}), Error);
}

TEST(KFold, PartitionsAllItems) {
  Rng rng{10};
  const auto folds = k_fold(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<std::size_t> seen;
  for (const auto& fold : folds) {
    seen.insert(seen.end(), fold.test.begin(), fold.test.end());
    EXPECT_EQ(fold.train.size() + fold.test.size(), 23u);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 23u);
  for (std::size_t i = 0; i < 23; ++i) {
    EXPECT_EQ(seen[i], i);
  }
}

TEST(KFold, FoldSizesDifferByAtMostOne) {
  Rng rng{11};
  const auto folds = k_fold(10, 3, rng);
  std::size_t lo = 10;
  std::size_t hi = 0;
  for (const auto& fold : folds) {
    lo = std::min(lo, fold.test.size());
    hi = std::max(hi, fold.test.size());
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(KFold, RejectsInvalidK) {
  Rng rng{12};
  EXPECT_THROW(k_fold(5, 1, rng), Error);
  EXPECT_THROW(k_fold(5, 6, rng), Error);
}

}  // namespace
}  // namespace acsel::stats
