// Tests for the exec subsystem: the non-blocking Executor contract
// (inline executor, zero-thread pool, bounded-queue declines, work
// stealing via try_run_one), TaskGroup joining / exception propagation /
// cooperative cancellation, parallel_for / parallel_map coverage and
// ordering, nested parallelism on a saturated pool, the pool's obs
// accounting invariant, and the thread-count plumbing (env + flag).
// The multi-thread tests double as the TSan workload for the subsystem.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/parallel_for.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace acsel::exec {
namespace {

TEST(InlineExecutor, DeclinesEverythingAndIsSerial) {
  Executor& executor = inline_executor();
  EXPECT_EQ(executor.concurrency(), 1u);
  bool ran = false;
  EXPECT_FALSE(executor.try_submit([&] { ran = true; }));
  EXPECT_FALSE(ran) << "a declined task must not run inside try_submit";
  EXPECT_FALSE(executor.try_run_one());
}

TEST(ThreadPool, ZeroThreadsBehavesLikeInlineExecutor) {
  ThreadPool pool{0};
  EXPECT_EQ(pool.thread_count(), 0u);
  EXPECT_EQ(pool.concurrency(), 1u);
  EXPECT_FALSE(pool.try_submit([] {}));
  EXPECT_FALSE(pool.try_run_one());
  // TaskGroup on a worker-less pool degrades to serial inline execution,
  // in spawn order.
  std::vector<int> order;
  TaskGroup group{pool};
  for (int i = 0; i < 4; ++i) {
    group.spawn([&order, i] { order.push_back(i); });
  }
  group.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, RunsSubmittedTasksOnWorkers) {
  ThreadPool pool{2};
  EXPECT_EQ(pool.thread_count(), 2u);
  EXPECT_EQ(pool.concurrency(), 2u);
  std::atomic<int> ran{0};
  TaskGroup group{pool};
  for (int i = 0; i < 64; ++i) {
    group.spawn([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, FullQueueDeclinesWithoutBlocking) {
  ThreadPool pool{1, /*queue_capacity=*/2};
  EXPECT_EQ(pool.queue_capacity(), 2u);

  // Park the single worker on a gate so the queue can be filled behind it.
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ASSERT_TRUE(pool.try_submit([&started, gate] {
    started.set_value();
    gate.wait();
  }));
  started.get_future().wait();

  // Worker is busy: two submissions fill the queue, the third declines.
  std::atomic<int> ran{0};
  const auto count = [&ran] { ran.fetch_add(1); };
  ASSERT_TRUE(pool.try_submit(count));
  ASSERT_TRUE(pool.try_submit(count));
  EXPECT_EQ(pool.queue_depth(), 2u);
  EXPECT_FALSE(pool.try_submit(count)) << "full queue must decline";

  // A waiter can steal queued work instead of sleeping.
  EXPECT_TRUE(pool.try_run_one());
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.queue_depth(), 1u);

  release.set_value();
  // Destruction drains the remaining queued task before joining.
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{1};
    for (int i = 0; i < 16; ++i) {
      pool.try_submit([&ran] { ran.fetch_add(1); });
    }
  }
  // Every accepted task ran before the workers joined.
  EXPECT_GT(ran.load(), 0);
}

TEST(ThreadPool, ObsCountersBalance) {
  auto& registry = obs::Registry::global();
  const std::uint64_t submitted0 =
      registry.counter("exec.pool.submitted").value();
  const std::uint64_t executed0 =
      registry.counter("exec.pool.executed").value();
  const std::uint64_t helped0 = registry.counter("exec.pool.helped").value();
  const std::uint64_t declined0 =
      registry.counter("exec.pool.declined").value();

  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  {
    ThreadPool pool{2, /*queue_capacity=*/8};
    TaskGroup group{pool};
    for (int i = 0; i < kTasks; ++i) {
      group.spawn([&ran] { ran.fetch_add(1); });
    }
    group.wait();
  }
  EXPECT_EQ(ran.load(), kTasks);

  // Every spawn was either accepted or declined, and every accepted task
  // was run by a worker or stolen by a helper — nothing lost, nothing
  // double-counted.
  const std::uint64_t submitted =
      registry.counter("exec.pool.submitted").value() - submitted0;
  const std::uint64_t executed =
      registry.counter("exec.pool.executed").value() - executed0;
  const std::uint64_t helped =
      registry.counter("exec.pool.helped").value() - helped0;
  const std::uint64_t declined =
      registry.counter("exec.pool.declined").value() - declined0;
  EXPECT_EQ(submitted + declined, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(executed + helped, submitted);
}

TEST(TaskGroup, WaitRethrowsFirstTaskException) {
  ThreadPool pool{2};
  TaskGroup group{pool};
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.spawn([&ran] { ran.fetch_add(1); });
  }
  group.spawn([] { throw std::runtime_error{"task failed"}; });
  try {
    group.wait();
    FAIL() << "wait() must rethrow the task exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  EXPECT_TRUE(group.cancelled())
      << "a task exception cancels the rest of the group";
}

TEST(TaskGroup, ExceptionCancelsTasksSpawnedAfterIt) {
  // On the serial executor everything runs inline at spawn time, so the
  // sequence is deterministic: the throwing task cancels the group and the
  // tasks spawned after it must be no-ops.
  TaskGroup group{inline_executor()};
  bool before = false;
  bool after = false;
  group.spawn([&before] { before = true; });
  group.spawn([] { throw std::runtime_error{"boom"}; });
  group.spawn([&after] { after = true; });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_TRUE(before);
  EXPECT_FALSE(after) << "tasks spawned after the failure must not run";
}

TEST(TaskGroup, CooperativeCancellationStopsPolledTasks) {
  ThreadPool pool{2};
  TaskGroup group{pool};
  std::atomic<int> iterations{0};
  for (int i = 0; i < 2; ++i) {
    group.spawn([&group, &iterations] {
      while (!group.cancelled()) {
        iterations.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }
  // Without cancellation the tasks above never finish; request_cancel is
  // the only thing that lets wait() return.
  group.request_cancel();
  group.wait();
  EXPECT_TRUE(group.cancelled());
}

TEST(TaskGroup, SecondWaitIsIdempotent) {
  ThreadPool pool{2};
  TaskGroup group{pool};
  std::atomic<int> ran{0};
  group.spawn([&ran] { ran.fetch_add(1); });
  group.wait();
  group.wait();  // nothing pending, no exception to re-throw
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(pool, kN,
               [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroAndOneIterationEdgeCases) {
  ThreadPool pool{4};
  int calls = 0;
  parallel_for(pool, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(pool, 1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool{4};
  EXPECT_THROW(parallel_for(pool, 256,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error{"index 37"};
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  ThreadPool pool{8};
  const auto squares = parallel_map(
      pool, 500, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 500u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMap, SupportsNonDefaultConstructibleResults) {
  struct Tagged {
    explicit Tagged(std::size_t i) : tag(i) {}
    std::size_t tag;
  };
  ThreadPool pool{4};
  const auto tags =
      parallel_map(pool, 64, [](std::size_t i) { return Tagged{i}; });
  ASSERT_EQ(tags.size(), 64u);
  for (std::size_t i = 0; i < tags.size(); ++i) {
    EXPECT_EQ(tags[i].tag, i);
  }
}

TEST(ParallelMap, InlineExecutorMatchesThreadPool) {
  const auto fn = [](std::size_t i) {
    return static_cast<double>(i) * 1.5 + 1.0;
  };
  const auto serial = parallel_map(inline_executor(), 128, fn);
  ThreadPool pool{8};
  const auto parallel = parallel_map(pool, 128, fn);
  EXPECT_EQ(serial, parallel);
}

TEST(NestedParallelism, SaturatedPoolDoesNotDeadlock) {
  // Every outer task runs an inner parallel_map on the *same* pool. With
  // blocking submission or sleeping waiters this wedges once the outer
  // tasks occupy all workers; the help-first contract keeps it live.
  ThreadPool pool{2, /*queue_capacity=*/4};
  const auto totals = parallel_map(pool, 16, [&pool](std::size_t outer) {
    const auto inner = parallel_map(pool, 32, [outer](std::size_t i) {
      return outer * 1000 + i;
    });
    std::size_t sum = 0;
    for (const std::size_t v : inner) {
      sum += v;
    }
    return sum;
  });
  ASSERT_EQ(totals.size(), 16u);
  for (std::size_t outer = 0; outer < totals.size(); ++outer) {
    EXPECT_EQ(totals[outer], outer * 1000 * 32 + 32 * 31 / 2);
  }
}

TEST(Stress, ConcurrentGroupsOnOnePool) {
  // TSan workload: several threads drive independent TaskGroups against
  // one shared pool, mixing accepted, declined and stolen tasks.
  ThreadPool pool{4, /*queue_capacity=*/16};
  std::atomic<int> total{0};
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&pool, &total] {
      for (int round = 0; round < 20; ++round) {
        TaskGroup group{pool};
        for (int i = 0; i < 25; ++i) {
          group.spawn([&total] {
            total.fetch_add(1, std::memory_order_relaxed);
          });
        }
        group.wait();
      }
    });
  }
  for (std::thread& driver : drivers) {
    driver.join();
  }
  EXPECT_EQ(total.load(), 4 * 20 * 25);
}

class ThreadCountTest : public ::testing::Test {
 protected:
  // Every path below mutates the process-wide default; restore "hardware"
  // so test order cannot matter.
  void TearDown() override {
    set_default_threads(0);
    ::unsetenv("ACSEL_THREADS");
  }
};

TEST_F(ThreadCountTest, DefaultIsHardwareConcurrency) {
  EXPECT_GE(hardware_threads(), 1u);
  set_default_threads(0);
  EXPECT_EQ(default_threads(), hardware_threads());
}

TEST_F(ThreadCountTest, SetDefaultOverridesAndZeroRestores) {
  set_default_threads(3);
  EXPECT_EQ(default_threads(), 3u);
  set_default_threads(0);
  EXPECT_EQ(default_threads(), hardware_threads());
}

TEST_F(ThreadCountTest, EnvVariableAppliesWhenValid) {
  ::setenv("ACSEL_THREADS", "5", 1);
  init_threads_from_env();
  EXPECT_EQ(default_threads(), 5u);
}

TEST_F(ThreadCountTest, InvalidEnvValueIsIgnored) {
  set_default_threads(2);
  for (const char* bad : {"", "0", "-1", "abc", "4x", "1.5"}) {
    ::setenv("ACSEL_THREADS", bad, 1);
    init_threads_from_env();
    EXPECT_EQ(default_threads(), 2u) << "ACSEL_THREADS=" << bad;
  }
}

TEST_F(ThreadCountTest, ThreadsFlagParses) {
  EXPECT_TRUE(consume_threads_flag("--threads=7"));
  EXPECT_EQ(default_threads(), 7u);
  EXPECT_FALSE(consume_threads_flag("--seed=7"));
  EXPECT_FALSE(consume_threads_flag("--thread=7"));
  EXPECT_EQ(default_threads(), 7u) << "unrelated flags must not change it";
}

TEST_F(ThreadCountTest, ThreadsFlagRejectsBadCounts) {
  for (const char* bad :
       {"--threads=", "--threads=0", "--threads=-2", "--threads=abc",
        "--threads=2x"}) {
    EXPECT_THROW(consume_threads_flag(bad), Error) << bad;
  }
}

}  // namespace
}  // namespace acsel::exec
