// NMR voting semantics: strict majority wins, the median-by-predicted-
// power fallback breaks ties deterministically under any reply ordering,
// and failure replies never outvote an Ok reply.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fleet/voter.h"

namespace {

using namespace acsel;
using fleet::ReplicaReply;
using fleet::Voter;
using fleet::VoteVerdict;

ReplicaReply ok_reply(std::size_t replica, std::uint32_t config,
                      double power_w) {
  ReplicaReply reply;
  reply.replica = replica;
  reply.response.status = serve::ResponseStatus::Ok;
  reply.response.config_index = config;
  reply.response.predicted_power_w = power_w;
  reply.response.model_version = 1;
  return reply;
}

ReplicaReply failed_reply(std::size_t replica, serve::ResponseStatus status) {
  ReplicaReply reply;
  reply.replica = replica;
  reply.response.status = status;
  return reply;
}

TEST(FleetVoter, UnanimousAgreement) {
  const VoteVerdict verdict = Voter::vote(
      {ok_reply(0, 7, 20.0), ok_reply(1, 7, 20.0), ok_reply(2, 7, 20.0)});
  EXPECT_EQ(verdict.response.status, serve::ResponseStatus::Ok);
  EXPECT_EQ(verdict.response.config_index, 7u);
  EXPECT_EQ(verdict.ok_replies, 3u);
  EXPECT_EQ(verdict.agreeing, 3u);
  EXPECT_FALSE(verdict.disagreement);
  EXPECT_FALSE(verdict.median_fallback);
}

TEST(FleetVoter, MajorityOutvotesOneFaultyReplica) {
  // The CoreGuard scenario: one replica serves a stale/corrupt model and
  // names a different configuration; the pair outvotes it.
  const VoteVerdict verdict = Voter::vote(
      {ok_reply(0, 4, 18.0), ok_reply(1, 12, 55.0), ok_reply(2, 4, 18.0)});
  EXPECT_EQ(verdict.response.config_index, 4u);
  EXPECT_TRUE(verdict.disagreement);
  EXPECT_FALSE(verdict.median_fallback);
  EXPECT_EQ(verdict.agreeing, 2u);
}

TEST(FleetVoter, ThreeWayTieFallsBackToMedianPower) {
  // No majority: three distinct configurations. The median reply by
  // predicted power wins — the outlier (55 W) can never be published.
  const VoteVerdict verdict = Voter::vote(
      {ok_reply(0, 3, 14.0), ok_reply(1, 9, 22.0), ok_reply(2, 12, 55.0)});
  EXPECT_TRUE(verdict.median_fallback);
  EXPECT_TRUE(verdict.disagreement);
  EXPECT_EQ(verdict.response.config_index, 9u);
  EXPECT_EQ(verdict.response.predicted_power_w, 22.0);
}

TEST(FleetVoter, VerdictIsInvariantUnderReplyPermutation) {
  // Determinism under hedging: replies arrive in arbitrary order, the
  // verdict must not depend on it. Exercise both the majority path and
  // the tie path over all 6 permutations of 3 replies.
  const std::vector<ReplicaReply> majority = {
      ok_reply(0, 4, 18.0), ok_reply(1, 12, 55.0), ok_reply(2, 4, 18.5)};
  const std::vector<ReplicaReply> tie = {
      ok_reply(0, 3, 14.0), ok_reply(1, 9, 22.0), ok_reply(2, 12, 55.0)};
  for (const auto& base : {majority, tie}) {
    const VoteVerdict reference = Voter::vote(base);
    std::vector<std::size_t> order = {0, 1, 2};
    do {
      std::vector<ReplicaReply> permuted;
      for (const std::size_t i : order) {
        permuted.push_back(base[i]);
      }
      const VoteVerdict verdict = Voter::vote(permuted);
      EXPECT_EQ(verdict.response.config_index,
                reference.response.config_index);
      EXPECT_EQ(verdict.response.predicted_power_w,
                reference.response.predicted_power_w);
      EXPECT_EQ(verdict.median_fallback, reference.median_fallback);
      EXPECT_EQ(verdict.disagreement, reference.disagreement);
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

TEST(FleetVoter, EqualPowerTieBreaksByConfigThenReplica) {
  // Two replies at identical predicted power: lower config index wins
  // the median tie deterministically.
  const VoteVerdict verdict =
      Voter::vote({ok_reply(1, 8, 20.0), ok_reply(0, 5, 20.0)});
  EXPECT_TRUE(verdict.median_fallback);
  EXPECT_EQ(verdict.response.config_index, 5u);
}

TEST(FleetVoter, TwoReplicaSplitUsesLowerMedian) {
  // Even count: the lower median (by power) is the published reply, so a
  // two-replica disagreement picks the cheaper configuration.
  const VoteVerdict verdict =
      Voter::vote({ok_reply(0, 10, 30.0), ok_reply(1, 2, 16.0)});
  EXPECT_TRUE(verdict.median_fallback);
  EXPECT_EQ(verdict.response.config_index, 2u);
}

TEST(FleetVoter, FailureRepliesNeverOutvoteOk) {
  // Two replicas error out, one answers: the single Ok reply is
  // published (availability over redundancy — the caller can still see
  // ok_replies == 1 and treat it as degraded).
  const VoteVerdict verdict = Voter::vote(
      {failed_reply(0, serve::ResponseStatus::InternalError),
       ok_reply(1, 6, 21.0),
       failed_reply(2, serve::ResponseStatus::DeadlineExceeded)});
  EXPECT_EQ(verdict.response.status, serve::ResponseStatus::Ok);
  EXPECT_EQ(verdict.response.config_index, 6u);
  EXPECT_EQ(verdict.ok_replies, 1u);
}

TEST(FleetVoter, AllFailedSurfacesFirstFailure) {
  const VoteVerdict verdict = Voter::vote(
      {failed_reply(1, serve::ResponseStatus::DeadlineExceeded),
       failed_reply(0, serve::ResponseStatus::Shed)});
  // Sorted by replica index: replica 0's status surfaces.
  EXPECT_EQ(verdict.response.status, serve::ResponseStatus::Shed);
  EXPECT_EQ(verdict.ok_replies, 0u);
}

TEST(FleetVoter, EmptyRoundIsInternalError) {
  const VoteVerdict verdict = Voter::vote({});
  EXPECT_EQ(verdict.response.status, serve::ResponseStatus::InternalError);
}

}  // namespace
