// Tests for the analytic performance/power models and counter synthesis:
// the qualitative shapes the paper reports must hold on the simulated APU.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hw/config_space.h"
#include "soc/counters.h"
#include "soc/kernel.h"
#include "soc/perf_model.h"
#include "soc/power_model.h"
#include "util/error.h"

namespace acsel::soc {
namespace {

using hw::ConfigSpace;
using hw::Configuration;
using hw::CoreMapping;
using hw::Device;

KernelCharacteristics memory_bound_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 0.4;
  k.bytes_per_flop = 1.6;
  k.parallel_fraction = 0.97;
  k.vector_fraction = 0.3;
  k.branch_divergence = 0.1;
  k.gpu_efficiency = 0.5;
  k.launch_overhead_ms = 0.6;
  k.cache_locality = 0.3;
  return k;
}

KernelCharacteristics compute_bound_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 2.0;
  k.bytes_per_flop = 0.05;
  k.parallel_fraction = 0.99;
  k.vector_fraction = 0.7;
  k.branch_divergence = 0.05;
  k.gpu_efficiency = 0.7;
  k.launch_overhead_ms = 0.4;
  k.cache_locality = 0.8;
  return k;
}

KernelCharacteristics serial_divergent_kernel() {
  KernelCharacteristics k;
  k.work_gflop = 0.5;
  k.bytes_per_flop = 0.3;
  k.parallel_fraction = 0.55;
  k.vector_fraction = 0.05;
  k.branch_divergence = 0.85;
  k.gpu_efficiency = 0.25;
  k.launch_overhead_ms = 1.5;
  k.cache_locality = 0.5;
  k.irregularity = 0.8;
  return k;
}

Configuration cpu_config(std::size_t pstate, int threads,
                         CoreMapping mapping = CoreMapping::Compact) {
  Configuration c;
  c.device = Device::Cpu;
  c.cpu_pstate = pstate;
  c.threads = threads;
  c.mapping = mapping;
  return c;
}

Configuration gpu_config(std::size_t gpu_pstate, std::size_t cpu_pstate) {
  Configuration c;
  c.device = Device::Gpu;
  c.gpu_pstate = gpu_pstate;
  c.cpu_pstate = cpu_pstate;
  return c;
}

const MachineSpec kSpec{};

// ------------------------------------------------------------- validate --

TEST(Kernel, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(KernelCharacteristics{}.validate());
}

TEST(Kernel, ValidateRejectsOutOfRange) {
  KernelCharacteristics k;
  k.parallel_fraction = 1.2;
  EXPECT_THROW(k.validate(), Error);
  k = KernelCharacteristics{};
  k.work_gflop = 0.0;
  EXPECT_THROW(k.validate(), Error);
  k = KernelCharacteristics{};
  k.bytes_per_flop = -0.1;
  EXPECT_THROW(k.validate(), Error);
}

// --------------------------------------------------------- perf scaling --

TEST(PerfModel, CpuFrequencyHelpsComputeBoundKernels) {
  const auto k = compute_bound_kernel();
  const auto slow = evaluate_steady_state(kSpec, k, cpu_config(0, 4));
  const auto fast = evaluate_steady_state(kSpec, k, cpu_config(5, 4));
  // Compute-bound: performance should scale nearly with frequency.
  const double speedup = slow.time_ms / fast.time_ms;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 3.7 / 1.4 + 0.1);
}

TEST(PerfModel, CpuFrequencyBarelyHelpsMemoryBoundKernels) {
  const auto k = memory_bound_kernel();
  const auto slow = evaluate_steady_state(kSpec, k, cpu_config(0, 4));
  const auto fast = evaluate_steady_state(kSpec, k, cpu_config(5, 4));
  const double speedup = slow.time_ms / fast.time_ms;
  EXPECT_LT(speedup, 1.4);  // far below the 2.64x frequency ratio
}

TEST(PerfModel, ThreadScalingMonotonic) {
  const auto k = compute_bound_kernel();
  double prev = evaluate_steady_state(kSpec, k, cpu_config(3, 1)).time_ms;
  for (int threads = 2; threads <= 4; ++threads) {
    const double t =
        evaluate_steady_state(kSpec, k, cpu_config(3, threads)).time_ms;
    EXPECT_LT(t, prev) << threads << " threads";
    prev = t;
  }
}

TEST(PerfModel, AmdahlLimitsSerialKernelScaling) {
  const auto k = serial_divergent_kernel();  // parallel fraction 0.55
  const double t1 =
      evaluate_steady_state(kSpec, k, cpu_config(3, 1)).time_ms;
  const double t4 =
      evaluate_steady_state(kSpec, k, cpu_config(3, 4)).time_ms;
  EXPECT_LT(t1 / t4, 1.0 / (0.45 + 0.55 / 4.0) + 0.1);
}

TEST(PerfModel, ScatterBeatsCompactForFpuHeavyTwoThreads) {
  auto k = compute_bound_kernel();
  k.fpu_intensity = 1.0;
  const auto compact = evaluate_steady_state(
      kSpec, k, cpu_config(3, 2, CoreMapping::Compact));
  const auto scatter = evaluate_steady_state(
      kSpec, k, cpu_config(3, 2, CoreMapping::Scatter));
  EXPECT_LT(scatter.time_ms, compact.time_ms);
}

TEST(PerfModel, MappingIrrelevantForMemoryBoundTwoThreads) {
  auto k = memory_bound_kernel();
  k.fpu_intensity = 1.0;
  const auto compact = evaluate_steady_state(
      kSpec, k, cpu_config(3, 2, CoreMapping::Compact));
  const auto scatter = evaluate_steady_state(
      kSpec, k, cpu_config(3, 2, CoreMapping::Scatter));
  // Bandwidth-limited either way: same roofline.
  EXPECT_NEAR(scatter.time_ms / compact.time_ms, 1.0, 0.05);
}

TEST(PerfModel, GpuPStateQuantizesGpuPerformance) {
  const auto k = compute_bound_kernel();
  const double t0 = evaluate_steady_state(kSpec, k, gpu_config(0, 5)).time_ms;
  const double t1 = evaluate_steady_state(kSpec, k, gpu_config(1, 5)).time_ms;
  const double t2 = evaluate_steady_state(kSpec, k, gpu_config(2, 5)).time_ms;
  EXPECT_GT(t0, t1);
  EXPECT_GT(t1, t2);
}

TEST(PerfModel, HostCpuFrequencyAffectsGpuRuns) {
  // Paper Table I: GPU configurations vary in CPU frequency because launch
  // overhead runs in the driver on the CPU.
  const auto k = memory_bound_kernel();
  const double slow_host =
      evaluate_steady_state(kSpec, k, gpu_config(2, 0)).time_ms;
  const double fast_host =
      evaluate_steady_state(kSpec, k, gpu_config(2, 5)).time_ms;
  EXPECT_GT(slow_host, fast_host);
}

TEST(PerfModel, GpuWinsBigOnGpuFriendlyKernels) {
  const auto k = compute_bound_kernel();
  const double best_cpu =
      evaluate_steady_state(kSpec, k, cpu_config(5, 4)).time_ms;
  const double gpu =
      evaluate_steady_state(kSpec, k, gpu_config(2, 5)).time_ms;
  EXPECT_GT(best_cpu / gpu, 3.0);
}

TEST(PerfModel, CpuCompetitiveOnDivergentSerialKernels) {
  const auto k = serial_divergent_kernel();
  const double best_cpu =
      evaluate_steady_state(kSpec, k, cpu_config(5, 4)).time_ms;
  const double gpu =
      evaluate_steady_state(kSpec, k, gpu_config(2, 5)).time_ms;
  EXPECT_LT(best_cpu, gpu);  // the CPU should win here
}

TEST(PerfModel, MemoryBoundGpuGainsLittleFromTopPState) {
  // Paper Table I: CalcFBHourGlass "does not benefit from running the GPU
  // at its highest frequency".
  const auto k = memory_bound_kernel();
  const double t1 = evaluate_steady_state(kSpec, k, gpu_config(1, 5)).time_ms;
  const double t2 = evaluate_steady_state(kSpec, k, gpu_config(2, 5)).time_ms;
  EXPECT_LT(t1 / t2, 1.12);  // under 12% gain for the 26% clock increase
}

// ----------------------------------------------------------- power model --

TEST(PowerModel, MoreThreadsMorePower) {
  const auto k = memory_bound_kernel();
  double prev = 0.0;
  for (int threads = 1; threads <= 4; ++threads) {
    const auto s = evaluate_steady_state(kSpec, k, cpu_config(2, threads));
    EXPECT_GT(s.total_power_w(), prev);
    prev = s.total_power_w();
  }
}

TEST(PowerModel, HigherCpuPStateMorePower) {
  const auto k = compute_bound_kernel();
  double prev = 0.0;
  for (std::size_t p = 0; p < hw::kCpuPStateCount; ++p) {
    const auto s = evaluate_steady_state(kSpec, k, cpu_config(p, 4));
    EXPECT_GT(s.total_power_w(), prev);
    prev = s.total_power_w();
  }
}

TEST(PowerModel, VoltageMakesPowerSuperlinearInFrequency) {
  const auto k = compute_bound_kernel();
  const auto lo = evaluate_steady_state(kSpec, k, cpu_config(0, 4));
  const auto hi = evaluate_steady_state(kSpec, k, cpu_config(5, 4));
  const double power_ratio = hi.total_power_w() / lo.total_power_w();
  const double freq_ratio = 3.7 / 1.4;
  EXPECT_GT(power_ratio, freq_ratio * 0.8);  // V^2 scaling bites
}

TEST(PowerModel, CpuReachesLowerPowerThanGpu) {
  // Paper Fig. 2: "the CPU is able to reach lower power limits".
  const auto k = memory_bound_kernel();
  const ConfigSpace space;
  double min_cpu = 1e9;
  double min_gpu = 1e9;
  for (const auto& config : space.all()) {
    const double w =
        evaluate_steady_state(kSpec, k, config).total_power_w();
    (config.device == Device::Cpu ? min_cpu : min_gpu) =
        std::min(config.device == Device::Cpu ? min_cpu : min_gpu, w);
  }
  EXPECT_LT(min_cpu, min_gpu);
}

TEST(PowerModel, TableIPowerBracketsRoughlyHold) {
  // Paper Table I levels: lightest CPU config ~12.5 W, heaviest GPU
  // frontier config ~30 W. Within a factor-ish band on the simulator.
  const auto k = memory_bound_kernel();
  const auto lightest = evaluate_steady_state(kSpec, k, cpu_config(0, 1));
  EXPECT_GT(lightest.total_power_w(), 8.0);
  EXPECT_LT(lightest.total_power_w(), 18.0);
  const auto gpu_high = evaluate_steady_state(kSpec, k, gpu_config(1, 5));
  EXPECT_GT(gpu_high.total_power_w(), 20.0);
  EXPECT_LT(gpu_high.total_power_w(), 40.0);
}

TEST(PowerModel, MemoryBoundGpuPowerRisesSlowlyWithClock) {
  // The activity factor must fall as a memory-bound kernel stalls more at
  // higher GPU clocks (paper Table I: 24.2 W -> 25.2 W for 311 -> 649 MHz).
  const auto k = memory_bound_kernel();
  const auto lo = evaluate_steady_state(kSpec, k, gpu_config(0, 0));
  const auto hi = evaluate_steady_state(kSpec, k, gpu_config(1, 0));
  const double ratio = hi.total_power_w() / lo.total_power_w();
  EXPECT_LT(ratio, 1.45);
  EXPECT_GT(ratio, 1.0);
}

TEST(PowerModel, IdleBelowAnyActiveConfig) {
  const auto k = memory_bound_kernel();
  const double idle = idle_power(kSpec).total();
  const ConfigSpace space;
  for (const auto& config : space.all()) {
    EXPECT_LT(idle,
              evaluate_steady_state(kSpec, k, config).total_power_w());
  }
}

TEST(PowerModel, KernelPowerVarianceAcrossKernels) {
  // §III-B: "one kernel uses 19 watts, while another uses 55" at their
  // best-performing configurations. Check the simulator spans a wide band.
  const auto heavy = compute_bound_kernel();
  const auto light = serial_divergent_kernel();
  const double heavy_w =
      evaluate_steady_state(kSpec, heavy, gpu_config(2, 5)).total_power_w();
  const double light_w =
      evaluate_steady_state(kSpec, light, cpu_config(1, 1)).total_power_w();
  EXPECT_GT(heavy_w / light_w, 2.0);
}

// ------------------------------------------------------------- counters --

TEST(Counters, NormalizedFeatureCountMatchesNames) {
  const CounterBlock block;
  EXPECT_EQ(block.normalized().size(), CounterBlock::feature_names().size());
}

TEST(Counters, ZeroBlockNormalizesSafely) {
  const CounterBlock block;
  for (const double v : block.normalized()) {
    EXPECT_EQ(v, 0.0);
  }
}

TEST(Counters, MemoryBoundKernelHasHighStallAndDram) {
  const auto mem = memory_bound_kernel();
  const auto comp = compute_bound_kernel();
  const auto cfg = cpu_config(5, 4);
  const auto mem_state = evaluate_steady_state(kSpec, mem, cfg);
  const auto comp_state = evaluate_steady_state(kSpec, comp, cfg);
  const auto mem_c = synthesize_counters(kSpec, mem, cfg, mem_state);
  const auto comp_c = synthesize_counters(kSpec, comp, cfg, comp_state);
  const auto mem_f = mem_c.normalized();
  const auto comp_f = comp_c.normalized();
  const auto& names = CounterBlock::feature_names();
  const auto index_of = [&](const std::string& name) {
    return static_cast<std::size_t>(
        std::find(names.begin(), names.end(), name) - names.begin());
  };
  EXPECT_GT(mem_f[index_of("stall_frac")], comp_f[index_of("stall_frac")]);
  EXPECT_GT(mem_f[index_of("dram_per_kinst")],
            comp_f[index_of("dram_per_kinst")]);
  EXPECT_GT(comp_f[index_of("vector_rate")], mem_f[index_of("vector_rate")]);
}

TEST(Counters, GpuRunsShowDriverOnlyCpuActivity) {
  const auto k = compute_bound_kernel();
  const auto cpu_cfg = cpu_config(5, 4);
  const auto gpu_cfg = gpu_config(2, 5);
  const auto cpu_state = evaluate_steady_state(kSpec, k, cpu_cfg);
  const auto gpu_state = evaluate_steady_state(kSpec, k, gpu_cfg);
  const auto on_cpu = synthesize_counters(kSpec, k, cpu_cfg, cpu_state);
  const auto on_gpu = synthesize_counters(kSpec, k, gpu_cfg, gpu_state);
  EXPECT_LT(on_gpu.instructions, 0.05 * on_cpu.instructions);
  EXPECT_EQ(on_gpu.vector_insts, 0.0);
  // The northbridge PMU still sees the kernel's DRAM traffic.
  EXPECT_GT(on_gpu.dram_accesses, 0.1 * on_cpu.dram_accesses);
}

TEST(Counters, ScaleAndAccumulate) {
  CounterBlock a;
  a.instructions = 10.0;
  a.branches = 2.0;
  CounterBlock b = 2.0 * a;
  EXPECT_DOUBLE_EQ(b.instructions, 20.0);
  b += a;
  EXPECT_DOUBLE_EQ(b.instructions, 30.0);
  EXPECT_DOUBLE_EQ(b.branches, 6.0);
}

TEST(Counters, CyclesConsistentWithTimeAndFrequency) {
  const auto k = memory_bound_kernel();
  const auto cfg = cpu_config(2, 3);
  const auto state = evaluate_steady_state(kSpec, k, cfg);
  const auto c = synthesize_counters(kSpec, k, cfg, state);
  const double expected =
      state.time_ms * 1e-3 * cfg.cpu_freq_ghz() * 1e9 * 3;
  EXPECT_NEAR(c.core_cycles / expected, 1.0, 1e-9);
  EXPECT_NEAR(c.reference_cycles / (state.time_ms * 1e-3 * 100e6), 1.0,
              1e-9);
}

// Property sweep: every (kernel archetype, configuration) pair produces
// physically sane outputs.
class ModelProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ModelProperty, SteadyStateSane) {
  const ConfigSpace space;
  const auto& config = space.at(GetParam());
  for (const auto& kernel :
       {memory_bound_kernel(), compute_bound_kernel(),
        serial_divergent_kernel()}) {
    const auto s = evaluate_steady_state(kSpec, kernel, config);
    EXPECT_GT(s.time_ms, 0.0);
    EXPECT_LT(s.time_ms, 60000.0);
    EXPECT_GT(s.total_power_w(), 5.0);
    EXPECT_LT(s.total_power_w(), 120.0);  // within chip TDP territory
    EXPECT_GE(s.compute_utilization, 0.0);
    EXPECT_LE(s.compute_utilization, 1.0);
    EXPECT_GE(s.stall_fraction, 0.0);
    EXPECT_LE(s.stall_fraction, 1.0);
    EXPECT_GE(s.dram_gbs, 0.0);
    EXPECT_LT(s.dram_gbs, 30.0);

    const auto counters = synthesize_counters(kSpec, kernel, config, s);
    EXPECT_GE(counters.instructions, 0.0);
    EXPECT_GE(counters.stalled_cycles, 0.0);
    EXPECT_LE(counters.stalled_cycles, counters.core_cycles * (1 + 1e-9));
    for (const double f : counters.normalized()) {
      EXPECT_TRUE(std::isfinite(f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ModelProperty,
                         ::testing::Range<std::size_t>(0, 54));

}  // namespace
}  // namespace acsel::soc
