// Tests for the obs JSON parser and escaper: grammar coverage, escape
// handling (incl. surrogate pairs), strictness on malformed input, and
// the escape -> parse round-trip the trace/metrics exporters rely on.
#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"
#include "util/error.h"

namespace acsel::obs {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5").as_number(), -12.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5e3").as_number(), 2500.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1E-2").as_number(), 0.01);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue doc = JsonValue::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
  EXPECT_EQ(doc.type(), JsonValue::Type::Object);
  const JsonValue& a = doc.at("a");
  ASSERT_EQ(a.items().size(), 3u);
  EXPECT_DOUBLE_EQ(a.items()[0].as_number(), 1.0);
  EXPECT_EQ(a.items()[2].at("b").as_string(), "c");
  EXPECT_TRUE(doc.at("d").at("e").is_null());
  EXPECT_TRUE(doc.at("f").as_bool());
}

TEST(Json, MembersPreserveDocumentOrder) {
  const JsonValue doc = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(Json, FindReturnsNullptrWhenAbsent) {
  const JsonValue doc = JsonValue::parse(R"({"a": 1})");
  EXPECT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.find("b"), nullptr);
  EXPECT_THROW(doc.at("b"), Error);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(JsonValue::parse(R"("a\"b\\c\/d\n\t")").as_string(),
            "a\"b\\c/d\n\t");
  // \u0041 = 'A'; surrogate pair D83D DE00 = U+1F600 (4-byte UTF-8).
  EXPECT_EQ(JsonValue::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "\"unterminated", "{\"a\" 1}", "01", "1.",
        "tru", "nul", "+1", "\"\\q\"", "\"\\ud800\"", "[1] trailing",
        "{\"a\": 1,}", "--1", "\"\x01\""}) {
    EXPECT_THROW(JsonValue::parse(bad), Error) << "input: " << bad;
  }
}

TEST(Json, AccessorsThrowOnTypeMismatch) {
  const JsonValue num = JsonValue::parse("1");
  EXPECT_THROW(num.as_bool(), Error);
  EXPECT_THROW(num.as_string(), Error);
  EXPECT_THROW(num.items(), Error);
  EXPECT_THROW(num.members(), Error);
  EXPECT_THROW(num.at("k"), Error);
}

TEST(Json, EscapeRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
  // Built with appends: GCC 12's -Wrestrict false-positives on
  // `const char* + std::string&&` chains (PR 105651).
  std::string doc = "\"";
  doc += json_escape(nasty);
  doc += "\"";
  EXPECT_EQ(JsonValue::parse(doc).as_string(), nasty);
}

}  // namespace
}  // namespace acsel::obs
