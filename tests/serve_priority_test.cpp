// Overload-control tests: the bounded queue's class-based admission
// limits (shed Low first, drain strictly FIFO), the server shedding Low
// before High under a sustained flood with per-class conservation, and
// the client's token-bucket retry budget keeping a shed wave from
// amplifying into a retry storm.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

#include "core/trainer.h"
#include "eval/characterize.h"
#include "serve/client.h"
#include "serve/codec.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "soc/machine.h"
#include "workloads/suite.h"

namespace acsel::serve {
namespace {

// ---- queue admission ---------------------------------------------------

TEST(PriorityQueueAdmission, LowerLimitsShedWhileCapacityRemains) {
  BoundedQueue<int> queue{10};
  // Fill to a Low-class limit of 5: the 6th Low push sheds even though
  // half the queue is still free...
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.try_push(i, 5));
  }
  EXPECT_FALSE(queue.try_push(99, 5));
  // ...a Normal-class limit of 8 still admits...
  EXPECT_TRUE(queue.try_push(5, 8));
  EXPECT_TRUE(queue.try_push(6, 8));
  EXPECT_TRUE(queue.try_push(7, 8));
  EXPECT_FALSE(queue.try_push(99, 8));
  // ...and the full-capacity limit admits to the brim.
  EXPECT_TRUE(queue.try_push(8, 10));
  EXPECT_TRUE(queue.try_push(9, 10));
  EXPECT_FALSE(queue.try_push(99, 10));
  EXPECT_EQ(queue.size(), 10u);

  // The drain is strictly FIFO: admission classes never reorder or
  // starve items already accepted.
  for (int expected = 0; expected < 10; ++expected) {
    int out = -1;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, expected);
  }
}

TEST(PriorityQueueAdmission, LimitAboveCapacityClampsToCapacity) {
  BoundedQueue<int> queue{2};
  EXPECT_TRUE(queue.try_push(0, 100));
  EXPECT_TRUE(queue.try_push(1, 100));
  EXPECT_FALSE(queue.try_push(2, 100));
}

// ---- server flood ------------------------------------------------------

class ServePriorityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 4242};
    const auto suite = workloads::Suite::standard();
    characterizations_ = new std::vector<core::KernelCharacterization>{};
    for (const auto& instance : suite.instances()) {
      characterizations_->push_back(
          eval::characterize_instance(machine, instance));
      if (characterizations_->size() == 8) {
        break;
      }
    }
    core::TrainerOptions options;
    options.clusters = 3;
    model_ = core::make_predictor(
        core::train(*characterizations_, options).model);
  }

  static void TearDownTestSuite() {
    model_.reset();
    delete characterizations_;
  }

  static SelectRequest make_request(std::uint64_t id, Priority priority) {
    SelectRequest request;
    request.request_id = id;
    request.priority = priority;
    request.samples =
        (*characterizations_)[id % characterizations_->size()].samples;
    request.cap_w = 26.0;
    return request;
  }

  static std::vector<core::KernelCharacterization>* characterizations_;
  static core::PredictorPtr model_;
};

std::vector<core::KernelCharacterization>*
    ServePriorityTest::characterizations_ = nullptr;
core::PredictorPtr ServePriorityTest::model_;

TEST_F(ServePriorityTest, SustainedFloodShedsLowStrictlyBeforeHigh) {
  ModelRegistry registry;
  registry.publish(model_);
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 20;  // Low admits to 10, Normal to 16
  options.max_batch = 1;
  Server server{registry, options};

  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kPerClass = 200;
  std::array<std::atomic<std::uint64_t>, kPriorityClasses> ok_seen{};
  std::array<std::atomic<std::uint64_t>, kPriorityClasses> shed_seen{};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::pair<Priority, std::future<SelectResponse>>> futures;
      for (std::uint64_t i = 0; i < kPerClass; ++i) {
        // Interleave the classes so every burst carries all three.
        for (const Priority priority :
             {Priority::High, Priority::Normal, Priority::Low}) {
          futures.emplace_back(
              priority, server.submit(make_request(c * kPerClass + i,
                                                   priority)));
        }
      }
      for (auto& [priority, future] : futures) {
        const SelectResponse response = future.get();
        const auto index = static_cast<std::size_t>(priority);
        if (response.status == ResponseStatus::Shed) {
          ++shed_seen[index];
        } else if (response.status == ResponseStatus::Ok) {
          ++ok_seen[index];
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }

  // Per-class conservation: every submission resolved Ok or Shed, and
  // the server's per-class shed counters agree with what clients saw.
  const auto snapshot = server.metrics_snapshot();
  std::uint64_t total_ok = 0;
  for (std::size_t p = 0; p < kPriorityClasses; ++p) {
    EXPECT_EQ(ok_seen[p] + shed_seen[p], kClients * kPerClass)
        << "class " << p;
    EXPECT_EQ(snapshot.shed_by_priority[p], shed_seen[p]) << "class " << p;
    total_ok += ok_seen[p];
  }
  EXPECT_EQ(snapshot.completed, total_ok);
  EXPECT_EQ(snapshot.submitted, kClients * kPerClass * kPriorityClasses);

  // The ordering contract: under sustained pressure Low sheds strictly
  // more than High (Low gives up at half the queue, High rides to the
  // brim), and Normal sits between them.
  const std::uint64_t high = shed_seen[0];
  const std::uint64_t normal = shed_seen[1];
  const std::uint64_t low = shed_seen[2];
  EXPECT_GT(low, 0u);
  EXPECT_GT(low, high);
  EXPECT_GE(low, normal);
  EXPECT_GE(normal, high);
}

// ---- client retry budget -----------------------------------------------

/// A transport that always sheds: decodes the request only to echo its
/// id back in a Shed response — the retryable failure shape.
std::vector<std::uint8_t> shedding_transport(
    std::span<const std::uint8_t> frame) {
  const Decoded decoded = decode_frame(frame);
  SelectResponse response;
  response.request_id =
      decoded.status == DecodeStatus::Ok ? decoded.request.request_id : 0;
  response.status = ResponseStatus::Shed;
  std::vector<std::uint8_t> bytes;
  encode_response(response, bytes);
  return bytes;
}

TEST(ClientRetryBudget, TokenBucketBoundsRetriesUnderAShedStorm) {
  ClientOptions options;
  options.max_attempts = 4;
  options.retry_budget_ratio = 0.1;
  options.retry_budget_initial = 2.0;
  options.sleep = [](std::chrono::microseconds) {};
  Client client{shedding_transport, options};

  constexpr std::uint64_t kCalls = 100;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    SelectRequest request;
    request.request_id = i;
    // The budget never converts a failure into a hang: a dry bucket
    // returns the last failure immediately.
    EXPECT_EQ(client.select(request).status, ResponseStatus::Shed);
  }
  EXPECT_EQ(client.calls(), kCalls);
  // The bucket bound: initial tokens plus the per-call deposits. Without
  // the budget this storm would retry (max_attempts - 1) * kCalls = 300
  // times.
  const double bound = options.retry_budget_initial +
                       options.retry_budget_ratio *
                           static_cast<double>(client.calls());
  EXPECT_LE(static_cast<double>(client.retries()), bound + 1e-9);
  EXPECT_GT(client.retry_budget_exhausted(), 0u);
}

TEST(ClientRetryBudget, NonPositiveRatioDisablesTheBudget) {
  ClientOptions options;
  options.max_attempts = 3;
  options.retry_budget_ratio = 0.0;
  options.sleep = [](std::chrono::microseconds) {};
  Client client{shedding_transport, options};

  constexpr std::uint64_t kCalls = 20;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    SelectRequest request;
    request.request_id = i;
    EXPECT_EQ(client.select(request).status, ResponseStatus::Shed);
  }
  // Retries bounded by max_attempts only; the bucket never reports dry.
  EXPECT_EQ(client.retries(),
            (static_cast<std::uint64_t>(options.max_attempts) - 1) * kCalls);
  EXPECT_EQ(client.retry_budget_exhausted(), 0u);
}

TEST(ClientRetryBudget, ExhaustionIsExportedAsAGlobalCounter) {
  const auto counter_value = []() -> std::uint64_t {
    for (const auto& metric : obs::Registry::global().snapshot()) {
      if (metric.name == "serve.client.retry_budget_exhausted") {
        return metric.count;
      }
    }
    return 0;
  };
  const std::uint64_t before = counter_value();

  ClientOptions options;
  options.max_attempts = 4;
  options.retry_budget_ratio = 0.01;
  options.retry_budget_initial = 0.0;
  options.sleep = [](std::chrono::microseconds) {};
  Client client{shedding_transport, options};
  SelectRequest request;
  request.request_id = 1;
  (void)client.select(request);

  EXPECT_GT(client.retry_budget_exhausted(), 0u);
  EXPECT_GE(counter_value() - before, client.retry_budget_exhausted());
}

}  // namespace
}  // namespace acsel::serve
