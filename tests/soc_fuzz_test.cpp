// Randomized robustness sweep of the simulator: uniformly random (but
// valid) kernel characteristics across the whole trait space, checked
// against physical invariants at every configuration. This is the
// failure-injection net under everything the model pipeline consumes.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/config_space.h"
#include "soc/counters.h"
#include "soc/hybrid.h"
#include "soc/machine.h"
#include "util/rng.h"

namespace acsel::soc {
namespace {

KernelCharacteristics random_kernel(Rng& rng) {
  KernelCharacteristics k;
  k.work_gflop = rng.uniform(0.01, 8.0);
  k.bytes_per_flop = rng.uniform(0.0, 3.0);
  k.parallel_fraction = rng.uniform(0.0, 1.0);
  k.vector_fraction = rng.uniform(0.0, 1.0);
  k.branch_divergence = rng.uniform(0.0, 1.0);
  k.gpu_efficiency = rng.uniform(0.0, 1.0);
  k.launch_overhead_ms = rng.uniform(0.0, 3.0);
  k.cache_locality = rng.uniform(0.0, 1.0);
  k.tlb_pressure = rng.uniform(0.0, 1.0);
  k.irregularity = rng.uniform(0.0, 1.0);
  k.fpu_intensity = rng.uniform(0.0, 1.0);
  return k;
}

class FuzzKernel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzKernel, SteadyStateInvariantsAtEveryConfig) {
  Rng rng{GetParam()};
  const KernelCharacteristics k = random_kernel(rng);
  const hw::ConfigSpace space;
  const MachineSpec spec;
  for (const auto& config : space.all()) {
    const SteadyState s = evaluate_steady_state(spec, k, config);
    ASSERT_TRUE(std::isfinite(s.time_ms));
    ASSERT_GT(s.time_ms, 0.0);
    ASSERT_TRUE(std::isfinite(s.total_power_w()));
    ASSERT_GT(s.total_power_w(), 5.0);
    ASSERT_LT(s.total_power_w(), 150.0);
    ASSERT_GE(s.compute_utilization, 0.0);
    ASSERT_LE(s.compute_utilization, 1.0);
    ASSERT_GE(s.stall_fraction, 0.0);
    ASSERT_LE(s.stall_fraction, 1.0);
    ASSERT_GE(s.dram_gbs, 0.0);
    ASSERT_LE(s.dram_gbs, spec.gpu_bw_gbs + 1e-9);
    const CounterBlock counters = synthesize_counters(spec, k, config, s);
    ASSERT_GE(counters.instructions, 0.0);
    ASSERT_LE(counters.stalled_cycles,
              counters.core_cycles * (1.0 + 1e-9));
    for (const double f : counters.normalized()) {
      ASSERT_TRUE(std::isfinite(f));
      ASSERT_GE(f, 0.0);
    }
  }
}

TEST_P(FuzzKernel, MachineRunTerminatesAndMatchesAnalytic) {
  Rng rng{GetParam() + 1000};
  const KernelCharacteristics k = random_kernel(rng);
  Machine machine{MachineSpec{}, GetParam()};
  const hw::ConfigSpace space;
  const auto& config =
      space.at(static_cast<std::size_t>(rng.uniform_index(space.size())));
  const auto truth = machine.analytic(k, config);
  const auto run = machine.run(k, config);
  ASSERT_GT(run.time_ms, 0.0);
  // Thermal leakage can lift measured power a little above the cold
  // analytic value; time matches within noise + tick quantization.
  EXPECT_NEAR(run.time_ms / truth.time_ms, 1.0, 0.08);
  EXPECT_NEAR(run.avg_power_w() / truth.total_power_w(), 1.0, 0.10);
}

TEST_P(FuzzKernel, HybridInvariantsAcrossSplits) {
  Rng rng{GetParam() + 2000};
  const KernelCharacteristics k = random_kernel(rng);
  const MachineSpec spec;
  for (const double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const HybridState hybrid = evaluate_hybrid(spec, k, f);
    ASSERT_TRUE(std::isfinite(hybrid.time_ms));
    ASSERT_GT(hybrid.time_ms, 0.0);
    ASSERT_GT(hybrid.total_power_w(), 5.0);
    ASSERT_LT(hybrid.total_power_w(), 150.0);
    ASSERT_GE(hybrid.imbalance, 0.0);
    ASSERT_LE(hybrid.imbalance, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernel,
                         ::testing::Range<std::uint64_t>(3000, 3040));

}  // namespace
}  // namespace acsel::soc
