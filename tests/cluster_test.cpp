// Tests for the cluster power-management layer: nodes, allocation
// policies, and the assembled cluster loop.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "cluster/cluster.h"
#include "core/trainer.h"
#include "eval/characterize.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    soc::Machine machine{soc::MachineSpec{}, 777};
    suite_ = new workloads::Suite{workloads::Suite::standard()};
    const auto training = eval::characterize(machine, *suite_);
    model_ = core::make_predictor(core::train(training).model);
  }
  static void TearDownTestSuite() {
    model_.reset();
    delete suite_;
  }
  static workloads::Suite* suite_;
  static core::PredictorPtr model_;

  Node::Work work(const std::string& id) {
    const auto& instance = suite_->instance(id);
    return Node::Work{
        core::KernelKey{instance.kernel, instance.benchmark, 0}, instance};
  }

  /// A GPU-friendly node and a CPU-friendly node: heterogeneity the
  /// marginal-gain policy can exploit.
  std::vector<Node> two_nodes(double cap_each) {
    std::vector<Node> nodes;
    nodes.emplace_back("gpu-friendly", 11, model_,
                       std::vector<Node::Work>{work("LU-Large/lud")},
                       cap_each);
    nodes.emplace_back(
        "cpu-friendly", 13, model_,
        std::vector<Node::Work>{work("CoMD-LJ/HaloExchange"),
                                work("CoMD-LJ/RedistributeAtoms")},
        cap_each);
    return nodes;
  }
};

workloads::Suite* ClusterTest::suite_ = nullptr;
core::PredictorPtr ClusterTest::model_;

// ------------------------------------------------------------------ node --

TEST_F(ClusterTest, NodeStepRunsAllKernelsAndReportsTelemetry) {
  std::vector<Node> nodes = two_nodes(30.0);
  Node& node = nodes[1];
  const NodeTelemetry first = node.step();
  EXPECT_GT(first.timestep_ms, 0.0);
  EXPECT_GT(first.energy_j, 0.0);
  EXPECT_TRUE(first.sampling);  // first step runs CPU samples
  const NodeTelemetry second = node.step();
  EXPECT_TRUE(second.sampling);  // second step runs GPU samples
  const NodeTelemetry third = node.step();
  EXPECT_FALSE(third.sampling);  // now everything is scheduled
}

TEST_F(ClusterTest, NodePredictedLatencyDecreasesWithBudget) {
  std::vector<Node> nodes = two_nodes(30.0);
  Node& node = nodes[0];
  node.step();
  node.step();  // predictions now retained
  const double tight = node.predicted_timestep_ms(14.0);
  const double mid = node.predicted_timestep_ms(25.0);
  const double loose = node.predicted_timestep_ms(60.0);
  EXPECT_GE(tight, mid);
  EXPECT_GE(mid, loose);
  EXPECT_GT(node.predicted_min_cap_w(), 5.0);
}

TEST_F(ClusterTest, NodeCapChangesScheduling) {
  std::vector<Node> nodes = two_nodes(40.0);
  Node& node = nodes[0];
  node.step();
  node.step();
  const double fast = node.step().timestep_ms;
  node.set_cap(14.0);
  const double slow = node.step().timestep_ms;
  EXPECT_GT(slow, fast);
}

// ------------------------------------------------------------- allocate --

NodeView flat_view(double demand, double latency_at_any_cap = 100.0) {
  NodeView view;
  view.recent_power_w = demand;
  view.predicted_latency_ms = [latency_at_any_cap](double) {
    return latency_at_any_cap;
  };
  return view;
}

TEST(Allocate, UniformSplitsEvenly) {
  const std::vector<NodeView> nodes{flat_view(10.0), flat_view(30.0),
                                    flat_view(20.0)};
  const auto caps = allocate(AllocationPolicy::Uniform, 90.0, nodes);
  ASSERT_EQ(caps.size(), 3u);
  for (const double cap : caps) {
    EXPECT_DOUBLE_EQ(cap, 30.0);
  }
}

TEST(Allocate, DemandProportionalFavorsHungryNodes) {
  const std::vector<NodeView> nodes{flat_view(10.0), flat_view(40.0)};
  const auto caps =
      allocate(AllocationPolicy::DemandProportional, 60.0, nodes);
  EXPECT_LT(caps[0], caps[1]);
  EXPECT_LE(caps[0] + caps[1], 60.0 + 1e-9);
}

TEST(Allocate, BudgetNeverExceeded) {
  for (const auto policy :
       {AllocationPolicy::Uniform, AllocationPolicy::DemandProportional}) {
    const std::vector<NodeView> nodes{flat_view(5.0), flat_view(50.0),
                                      flat_view(25.0)};
    const auto caps = allocate(policy, 70.0, nodes);
    EXPECT_LE(std::accumulate(caps.begin(), caps.end(), 0.0), 70.0 + 1e-9)
        << to_string(policy);
  }
}

TEST(Allocate, MarginalGainShiftsPowerToTheSteeperCurve) {
  // Node 0 gains a lot from extra power; node 1 is flat (saturated).
  NodeView steep;
  steep.recent_power_w = 20.0;
  steep.predicted_latency_ms = [](double cap) { return 4000.0 / cap; };
  NodeView flat = flat_view(20.0, 100.0);
  const auto caps = allocate(AllocationPolicy::MarginalGain, 60.0,
                             {steep, flat});
  EXPECT_GT(caps[0], caps[1]);
  EXPECT_NEAR(caps[0] + caps[1], 60.0, 1e-9);
}

TEST(Allocate, MarginalGainRespectsMinCap) {
  NodeView steep;
  steep.predicted_latency_ms = [](double cap) { return 4000.0 / cap; };
  NodeView flat = flat_view(20.0, 100.0);
  flat.min_cap_w = 25.0;  // the flat node cannot go below 25 W
  const auto caps = allocate(AllocationPolicy::MarginalGain, 60.0,
                             {steep, flat});
  EXPECT_GE(caps[1], 25.0 - 1e-9);
}

TEST(Allocate, ValidatesInputs) {
  EXPECT_THROW(allocate(AllocationPolicy::Uniform, 10.0, {}), Error);
  const std::vector<NodeView> nodes{flat_view(1.0)};
  EXPECT_THROW(allocate(AllocationPolicy::Uniform, 0.0, nodes), Error);
  // Marginal gain demands latency predictors.
  NodeView no_predictor;
  EXPECT_THROW(
      allocate(AllocationPolicy::MarginalGain, 10.0, {no_predictor}),
      Error);
}

TEST(Allocate, PolicyNames) {
  EXPECT_STREQ(to_string(AllocationPolicy::Uniform), "uniform");
  EXPECT_STREQ(to_string(AllocationPolicy::MarginalGain), "marginal-gain");
}

// -------------------------------------------------------------- cluster --

TEST_F(ClusterTest, ClusterRespectsGlobalBudget) {
  ClusterOptions options;
  options.global_budget_w = 50.0;
  options.policy = AllocationPolicy::Uniform;
  Cluster cluster{two_nodes(25.0), options};
  const auto report = cluster.run(4);
  const double cap_total =
      std::accumulate(report.caps_w.begin(), report.caps_w.end(), 0.0);
  EXPECT_LE(cap_total, 50.0 + 1e-9);
  EXPECT_GT(report.throughput, 0.0);
}

TEST_F(ClusterTest, MarginalGainBeatsUniformOnHeterogeneousNodes) {
  // The GPU-friendly node converts watts to performance far better than
  // the CPU-bound node; frontier-driven reallocation should exploit that.
  ClusterOptions uniform;
  uniform.global_budget_w = 46.0;
  uniform.policy = AllocationPolicy::Uniform;
  Cluster a{two_nodes(23.0), uniform};

  ClusterOptions marginal = uniform;
  marginal.policy = AllocationPolicy::MarginalGain;
  Cluster b{two_nodes(23.0), marginal};

  // Warm both clusters past the sampling phase, then compare.
  a.run(3);
  b.run(3);
  const double uniform_throughput = a.run(2).throughput;
  const double marginal_throughput = b.run(2).throughput;
  EXPECT_GT(marginal_throughput, uniform_throughput * 1.05);
}

TEST_F(ClusterTest, BudgetCutPropagatesToNodes) {
  ClusterOptions options;
  options.global_budget_w = 60.0;
  Cluster cluster{two_nodes(30.0), options};
  cluster.run(3);
  cluster.set_global_budget(32.0);
  const auto report = cluster.step();
  const double cap_total =
      std::accumulate(report.caps_w.begin(), report.caps_w.end(), 0.0);
  EXPECT_LE(cap_total, 32.0 + 1e-9);
}

TEST_F(ClusterTest, NodeAccessorsAndValidation) {
  ClusterOptions options;
  Cluster cluster{two_nodes(30.0), options};
  EXPECT_EQ(cluster.size(), 2u);
  EXPECT_EQ(cluster.node(0).name(), "gpu-friendly");
  EXPECT_THROW(cluster.node(2), Error);
  EXPECT_THROW(cluster.set_global_budget(0.0), Error);
  EXPECT_THROW(Cluster(std::vector<Node>{}, options), Error);
}

}  // namespace
}  // namespace acsel::cluster
