// Datacenter-soak tests: the traffic generator's determinism contract
// (same options -> bitwise-identical arrivals), its modeled shapes
// (diurnal curve, burst overlay, Zipf + drift kernel mix, priority
// split), and a miniature end-to-end soak through SoakDriver — scripted
// power emergency included — holding the zero-loss and per-priority
// conservation contracts.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "dc/soak.h"
#include "dc/traffic.h"

namespace acsel::dc {
namespace {

bool same_arrival(const Arrival& a, const Arrival& b) {
  return a.request_id == b.request_id && a.kernel == b.kernel &&
         a.priority == b.priority && a.goal == b.goal && a.cap_w == b.cap_w;
}

TrafficOptions flat_options() {
  TrafficOptions options;
  options.diurnal_amplitude = 0.0;  // flat curve isolates the other knobs
  options.burst_enter = 0.0;        // chain never self-starts
  options.burst_exit = 0.0;         // a forced burst never self-stops
  return options;
}

TEST(Traffic, SameOptionsReplayIdenticalArrivals) {
  TrafficOptions options;
  options.drift_per_tick = 0.5;
  TrafficGenerator a{options};
  TrafficGenerator b{options};
  for (int t = 0; t < 6; ++t) {
    const std::vector<Arrival> from_a = a.tick();
    const std::vector<Arrival> from_b = b.tick();
    ASSERT_EQ(from_a.size(), from_b.size()) << "tick " << t;
    for (std::size_t i = 0; i < from_a.size(); ++i) {
      EXPECT_TRUE(same_arrival(from_a[i], from_b[i]))
          << "tick " << t << " arrival " << i;
    }
  }
  EXPECT_EQ(a.ticks(), 6u);
}

TEST(Traffic, DiurnalCurvePeaksAndTroughs) {
  TrafficOptions options;
  options.base_qps = 200.0;
  options.diurnal_amplitude = 0.5;
  options.diurnal_period_ticks = 96;
  const TrafficGenerator gen{options};
  // sin peaks a quarter period in, troughs at three quarters.
  EXPECT_NEAR(gen.diurnal_qps(24), 300.0, 1e-9);
  EXPECT_NEAR(gen.diurnal_qps(72), 100.0, 1e-9);
  EXPECT_NEAR(gen.diurnal_qps(0), 200.0, 1e-9);
  EXPECT_GT(gen.diurnal_qps(24), gen.diurnal_qps(72));
}

TEST(Traffic, OfferedLoadTracksTheConfiguredRate) {
  TrafficOptions options = flat_options();
  options.base_qps = 2000.0;
  options.tick_seconds = 0.05;  // lambda = 100 per tick
  TrafficGenerator gen{options};
  std::uint64_t offered = 0;
  constexpr int kTicks = 50;
  for (int t = 0; t < kTicks; ++t) {
    offered += gen.tick().size();
  }
  const double expected = options.base_qps * options.tick_seconds * kTicks;
  EXPECT_GT(static_cast<double>(offered), 0.9 * expected);
  EXPECT_LT(static_cast<double>(offered), 1.1 * expected);
}

TEST(Traffic, ForcedBurstMultipliesTheOfferedLoad) {
  TrafficOptions options = flat_options();
  options.base_qps = 2000.0;
  options.tick_seconds = 0.05;
  options.burst_multiplier = 2.5;
  TrafficGenerator gen{options};
  std::uint64_t calm = 0;
  for (int t = 0; t < 10; ++t) {
    calm += gen.tick().size();
  }
  EXPECT_FALSE(gen.bursting());

  gen.force_burst(true);
  std::uint64_t bursting = 0;
  for (int t = 0; t < 10; ++t) {
    bursting += gen.tick().size();
    EXPECT_TRUE(gen.bursting());  // exit probability is pinned to 0
  }
  // 2.5x the rate: well clear of Poisson noise over ~1000 arrivals.
  EXPECT_GT(static_cast<double>(bursting),
            1.8 * static_cast<double>(calm));
}

TEST(Traffic, DriftRotatesTheHotKernel) {
  TrafficOptions options = flat_options();
  options.base_qps = 2000.0;
  options.tick_seconds = 0.05;
  options.kernels = 16;
  options.zipf_exponent = 3.0;  // rank 0 dominates: argmax == rotation
  options.drift_per_tick = 1.0;
  TrafficGenerator gen{options};

  const auto hot_kernel = [&gen] {
    std::map<std::size_t, std::uint64_t> counts;
    for (const Arrival& arrival : gen.tick()) {
      ++counts[arrival.kernel];
    }
    std::size_t hot = 0;
    std::uint64_t best = 0;
    for (const auto& [kernel, count] : counts) {
      if (count > best) {
        best = count;
        hot = kernel;
      }
    }
    return hot;
  };

  const std::size_t early = hot_kernel();
  for (int t = 0; t < 7; ++t) {
    (void)gen.tick();
  }
  const std::size_t late = hot_kernel();
  // Eight ticks of drift at 1 kernel/tick: the hot set has migrated.
  EXPECT_NE(early, late);
}

TEST(Traffic, PriorityMixMatchesTheConfiguredFractions) {
  TrafficOptions options = flat_options();
  options.base_qps = 4000.0;
  options.tick_seconds = 0.05;
  options.high_fraction = 0.2;
  options.low_fraction = 0.3;
  TrafficGenerator gen{options};
  std::array<std::uint64_t, serve::kPriorityClasses> by_class{};
  std::uint64_t total = 0;
  for (int t = 0; t < 30; ++t) {
    for (const Arrival& arrival : gen.tick()) {
      ++by_class[static_cast<std::size_t>(arrival.priority)];
      ++total;
    }
  }
  ASSERT_GT(total, 2000u);
  const double high =
      static_cast<double>(by_class[0]) / static_cast<double>(total);
  const double low =
      static_cast<double>(by_class[2]) / static_cast<double>(total);
  EXPECT_NEAR(high, 0.2, 0.05);
  EXPECT_NEAR(low, 0.3, 0.05);
}

// ---- end-to-end mini-soak ----------------------------------------------

TEST(Soak, MiniSoakHoldsTheConservationContracts) {
  WorldOptions world_options;
  world_options.kernels = 12;
  world_options.max_training = 24;
  world_options.max_bases = 4;
  const World world = make_world(world_options);
  ASSERT_EQ(world.pool.size(), 12u);
  ASSERT_EQ(world.truth_of.size(), 12u);
  ASSERT_NE(world.model, nullptr);

  SoakOptions options;
  options.ticks = 40;
  options.traffic.base_qps = 120.0;
  options.traffic.kernels = world_options.kernels;
  options.fleet.shards = 2;
  options.fleet.replicas = 2;
  options.fleet.budget.global_budget_w =
      2.0 * options.fleet.budget.nominal_cap_w;
  options.adapt = soak_adapt_defaults();
  options.measure_every = 8;
  options.script = {
      {10, ScenarioEvent::Kind::BurstOn, 0.0},
      {14, ScenarioEvent::Kind::BurstOff, 0.0},
      {16, ScenarioEvent::Kind::BudgetCut, 0.4},
      {24, ScenarioEvent::Kind::BudgetRestore, 0.0},
  };
  SoakDriver driver{options, world};
  const SoakReport report = driver.run();

  // The zero-loss contract, in aggregate and per class.
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.offered, report.fleet.routed);
  for (std::size_t p = 0; p < serve::kPriorityClasses; ++p) {
    EXPECT_EQ(report.fleet.routed_by_priority[p],
              report.fleet.delivered_by_priority[p] +
                  report.fleet.shed_by_priority[p])
        << "class " << p;
  }

  // The scripted emergency engaged the brownout and it fully unwound.
  EXPECT_TRUE(report.brownout_seen);
  EXPECT_GE(report.brownout_depth, 2u);
  EXPECT_GE(report.brownout_events, 1u);
  ASSERT_EQ(report.timeline.size(), 40u);
  EXPECT_EQ(report.timeline.back().brownout_stage, 0u);

  // The timeline is internally consistent with the cumulative stats.
  std::array<std::uint64_t, serve::kPriorityClasses> routed{};
  for (const TickSample& sample : report.timeline) {
    for (std::size_t p = 0; p < serve::kPriorityClasses; ++p) {
      routed[p] += sample.routed[p];
    }
  }
  for (std::size_t p = 0; p < serve::kPriorityClasses; ++p) {
    EXPECT_EQ(routed[p], report.fleet.routed_by_priority[p]) << "class " << p;
  }
  EXPECT_NEAR(report.sim_seconds, 40 * 0.05, 1e-9);

  // Replay determinism: the same options over the same world reproduce
  // the same headline counters.
  SoakDriver replay{options, world};
  const SoakReport again = replay.run();
  EXPECT_EQ(again.offered, report.offered);
  EXPECT_EQ(again.fleet.delivered, report.fleet.delivered);
  EXPECT_EQ(again.fleet.shed, report.fleet.shed);
}

}  // namespace
}  // namespace acsel::dc
