// Tests for Kendall rank correlation, the frontier-order similarity measure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/kendall.h"
#include "util/error.h"
#include "util/rng.h"

namespace acsel::stats {
namespace {

TEST(KendallTauA, IdenticalOrderIsOne) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(kendall_tau_a(x, x), 1.0);
}

TEST(KendallTauA, ReversedOrderIsMinusOne) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(kendall_tau_a(x, y), -1.0);
}

TEST(KendallTauA, HandComputedExample) {
  // Pairs: (1,2): C, (1,3): C, (2,3): D -> tau = (2-1)/3.
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1, 3, 2};
  EXPECT_NEAR(kendall_tau_a(x, y), 1.0 / 3.0, 1e-12);
}

TEST(KendallTauA, TiesCountedAsNeither) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{1, 1, 2, 3};  // one tied pair in y
  // Pairs: 6 total, 5 concordant, 0 discordant, 1 tie -> tau_a = 5/6.
  EXPECT_NEAR(kendall_tau_a(x, y), 5.0 / 6.0, 1e-12);
}

TEST(KendallTauA, InvarianceUnderMonotoneTransform) {
  const std::vector<double> x{0.3, 1.4, 2.4, 3.7};
  const std::vector<double> y{12.5, 13.7, 24.2, 29.8};
  std::vector<double> x2(x.size());
  std::transform(x.begin(), x.end(), x2.begin(),
                 [](double v) { return v * v * v + 7.0; });
  EXPECT_DOUBLE_EQ(kendall_tau_a(x, y), kendall_tau_a(x2, y));
}

TEST(KendallTauA, RejectsBadInput) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(kendall_tau_a(one, one), Error);
  EXPECT_THROW(kendall_tau_a(two, one), Error);
}

TEST(KendallTauB, MatchesTauAWithoutTies) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 1, 4, 3, 5};
  EXPECT_NEAR(kendall_tau_b(x, y), kendall_tau_a(x, y), 1e-12);
}

TEST(KendallTauB, TieCorrectionRaisesMagnitude) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{1, 1, 2, 3};
  EXPECT_GT(kendall_tau_b(x, y), kendall_tau_a(x, y));
  EXPECT_NEAR(kendall_tau_b(x, y), 5.0 / std::sqrt(6.0 * 5.0), 1e-12);
}

TEST(KendallTauB, ConstantInputThrows) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{5, 5, 5};
  EXPECT_THROW(kendall_tau_b(x, c), Error);
}

TEST(KendallFast, MatchesNaiveOnRandomPermutations) {
  Rng rng{99};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(50);
    std::vector<double> x(n);
    std::vector<double> y(n);
    std::iota(x.begin(), x.end(), 0.0);
    std::iota(y.begin(), y.end(), 0.0);
    rng.shuffle(x);
    rng.shuffle(y);
    EXPECT_NEAR(kendall_tau_fast(x, y), kendall_tau_a(x, y), 1e-12);
  }
}

TEST(KendallFast, FallsBackOnTies) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{1, 1, 2, 3};
  EXPECT_DOUBLE_EQ(kendall_tau_fast(x, y), kendall_tau_a(x, y));
}

TEST(KendallDistance, ZeroForIdenticalOrders) {
  const std::vector<std::size_t> a{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(kendall_distance(a, a), 0.0);
}

TEST(KendallDistance, OneForReversedOrders) {
  const std::vector<std::size_t> a{0, 1, 2, 3};
  const std::vector<std::size_t> b{3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(kendall_distance(a, b), 1.0);
}

TEST(KendallDistance, SingleAdjacentSwap) {
  const std::vector<std::size_t> a{0, 1, 2, 3};
  const std::vector<std::size_t> b{1, 0, 2, 3};
  EXPECT_DOUBLE_EQ(kendall_distance(a, b), 1.0 / 6.0);
}

TEST(KendallDistance, SymmetricInArguments) {
  Rng rng{5};
  std::vector<std::size_t> a(10);
  std::vector<std::size_t> b(10);
  std::iota(a.begin(), a.end(), std::size_t{0});
  std::iota(b.begin(), b.end(), std::size_t{0});
  rng.shuffle(a);
  rng.shuffle(b);
  EXPECT_DOUBLE_EQ(kendall_distance(a, b), kendall_distance(b, a));
}

TEST(KendallDistance, EquivalentToTauOfRanks) {
  // d = (1 - tau)/2 for permutations without ties.
  Rng rng{6};
  std::vector<std::size_t> a(12);
  std::vector<std::size_t> b(12);
  std::iota(a.begin(), a.end(), std::size_t{0});
  std::iota(b.begin(), b.end(), std::size_t{0});
  rng.shuffle(a);
  rng.shuffle(b);
  // Rank of item i within each order.
  std::vector<double> rank_a(12);
  std::vector<double> rank_b(12);
  for (std::size_t pos = 0; pos < 12; ++pos) {
    rank_a[a[pos]] = static_cast<double>(pos);
    rank_b[b[pos]] = static_cast<double>(pos);
  }
  const double tau = kendall_tau_a(rank_a, rank_b);
  EXPECT_NEAR(kendall_distance(a, b), (1.0 - tau) / 2.0, 1e-12);
}

TEST(KendallDistance, RejectsNonPermutations) {
  const std::vector<std::size_t> a{0, 1, 5};  // 5 out of range
  const std::vector<std::size_t> b{0, 1, 2};
  EXPECT_THROW(kendall_distance(a, b), Error);
  EXPECT_THROW(kendall_distance(b, a), Error);
}

// Property sweep: tau bounds and antisymmetry over random data.
class KendallProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KendallProperty, TauWithinBoundsAndAntisymmetric) {
  Rng rng{GetParam()};
  const std::size_t n = 3 + rng.uniform_index(40);
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-10.0, 10.0);
    y[i] = rng.uniform(-10.0, 10.0);
  }
  const double tau = kendall_tau_a(x, y);
  EXPECT_GE(tau, -1.0);
  EXPECT_LE(tau, 1.0);
  // Reversing y's comparisons by negation flips the sign exactly
  // (continuous values: ties have probability zero).
  std::vector<double> neg_y(n);
  std::transform(y.begin(), y.end(), neg_y.begin(),
                 [](double v) { return -v; });
  EXPECT_NEAR(kendall_tau_a(x, neg_y), -tau, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallProperty,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace acsel::stats
