// Tests for two-application co-scheduling (soc truth + core optimizer)
// and the energy-budget scheduler goal.
#include <gtest/gtest.h>

#include "core/coscheduler.h"
#include "core/scheduler.h"
#include "core/trainer.h"
#include "eval/characterize.h"
#include "hw/config_space.h"
#include "soc/coschedule.h"
#include "soc/machine.h"
#include "soc/power_model.h"
#include "util/error.h"
#include "workloads/suite.h"

namespace acsel {
namespace {

using hw::ConfigSpace;
using hw::Configuration;
using hw::Device;

const soc::MachineSpec kSpec{};

Configuration cpu_cfg(std::size_t pstate, int threads) {
  Configuration c;
  c.device = Device::Cpu;
  c.cpu_pstate = pstate;
  c.threads = threads;
  return c;
}

Configuration gpu_cfg(std::size_t gpu_pstate, std::size_t host_pstate) {
  Configuration c;
  c.device = Device::Gpu;
  c.gpu_pstate = gpu_pstate;
  c.cpu_pstate = host_pstate;
  return c;
}

soc::KernelCharacteristics cpu_friendly() {
  soc::KernelCharacteristics k;
  k.work_gflop = 0.6;
  k.bytes_per_flop = 0.4;
  k.parallel_fraction = 0.9;
  k.vector_fraction = 0.2;
  k.branch_divergence = 0.5;
  k.gpu_efficiency = 0.12;
  return k;
}

soc::KernelCharacteristics gpu_friendly() {
  soc::KernelCharacteristics k;
  k.work_gflop = 2.0;
  k.bytes_per_flop = 0.05;
  k.parallel_fraction = 0.995;
  k.vector_fraction = 0.15;
  k.gpu_efficiency = 0.8;
  return k;
}

soc::KernelCharacteristics streaming() {
  soc::KernelCharacteristics k;
  k.work_gflop = 0.4;
  k.bytes_per_flop = 2.4;
  k.parallel_fraction = 0.98;
  k.cache_locality = 0.25;
  return k;
}

// ------------------------------------------------------------ soc truth --

TEST(CoSchedule, ValidatesPlacement) {
  EXPECT_THROW(soc::evaluate_coschedule(kSpec, cpu_friendly(),
                                        gpu_cfg(2, 5),  // wrong device
                                        gpu_friendly(), gpu_cfg(2, 5)),
               Error);
  EXPECT_THROW(soc::evaluate_coschedule(kSpec, cpu_friendly(),
                                        cpu_cfg(3, 4),  // no free core
                                        gpu_friendly(), gpu_cfg(2, 5)),
               Error);
}

TEST(CoSchedule, CoRunIsNeverFasterThanSolo) {
  const auto cpu_solo =
      evaluate_steady_state(kSpec, cpu_friendly(), cpu_cfg(3, 3));
  const auto gpu_solo =
      evaluate_steady_state(kSpec, gpu_friendly(), gpu_cfg(2, 3));
  const auto co = soc::evaluate_coschedule(
      kSpec, cpu_friendly(), cpu_cfg(3, 3), gpu_friendly(), gpu_cfg(2, 3));
  EXPECT_GE(co.cpu_kernel_time_ms, cpu_solo.time_ms - 1e-9);
  EXPECT_GE(co.gpu_kernel_time_ms, gpu_solo.time_ms - 1e-9);
}

TEST(CoSchedule, ComputeBoundPairRunsUncontended) {
  // Two compute-bound kernels do not saturate the controller: co-run
  // latencies equal the solo ones.
  auto a = cpu_friendly();
  a.bytes_per_flop = 0.05;
  const auto b = gpu_friendly();
  const auto co =
      soc::evaluate_coschedule(kSpec, a, cpu_cfg(3, 3), b, gpu_cfg(2, 3));
  EXPECT_LT(co.bandwidth_demand, 1.0);
  const auto a_solo = evaluate_steady_state(kSpec, a, cpu_cfg(3, 3));
  const auto b_solo = evaluate_steady_state(kSpec, b, gpu_cfg(2, 3));
  EXPECT_NEAR(co.cpu_kernel_time_ms, a_solo.time_ms, 1e-9);
  EXPECT_NEAR(co.gpu_kernel_time_ms, b_solo.time_ms, 1e-9);
}

TEST(CoSchedule, TwoStreamingKernelsContend) {
  auto gpu_stream = streaming();
  gpu_stream.gpu_efficiency = 0.6;
  const auto co = soc::evaluate_coschedule(
      kSpec, streaming(), cpu_cfg(5, 3), gpu_stream, gpu_cfg(2, 5));
  EXPECT_GT(co.bandwidth_demand, 1.0);
  const auto cpu_solo =
      evaluate_steady_state(kSpec, streaming(), cpu_cfg(5, 3));
  EXPECT_GT(co.cpu_kernel_time_ms, cpu_solo.time_ms * 1.05);
}

TEST(CoSchedule, PowerBetweenMaxAndSumOfSolos) {
  const auto a = cpu_friendly();
  const auto b = gpu_friendly();
  const auto a_solo = evaluate_steady_state(kSpec, a, cpu_cfg(3, 3));
  const auto b_solo = evaluate_steady_state(kSpec, b, gpu_cfg(2, 3));
  const auto co =
      soc::evaluate_coschedule(kSpec, a, cpu_cfg(3, 3), b, gpu_cfg(2, 3));
  EXPECT_GT(co.total_power_w(),
            std::max(a_solo.total_power_w(), b_solo.total_power_w()));
  // The sum double-counts base power and idle devices.
  EXPECT_LT(co.total_power_w(),
            a_solo.total_power_w() + b_solo.total_power_w());
}

TEST(CoSchedule, SharedVoltagePlaneSetByFastestCu) {
  // Raising only the GPU kernel's host frequency raises the whole CPU
  // plane's voltage, so the CPU kernel's plane power rises too (§IV-A).
  const auto slow_host = soc::evaluate_coschedule(
      kSpec, cpu_friendly(), cpu_cfg(0, 3), gpu_friendly(), gpu_cfg(2, 0));
  const auto fast_host = soc::evaluate_coschedule(
      kSpec, cpu_friendly(), cpu_cfg(0, 3), gpu_friendly(), gpu_cfg(2, 5));
  EXPECT_GT(fast_host.cpu_power_w, slow_host.cpu_power_w * 1.2);
}

TEST(CoSchedule, ThroughputAddsBothKernels) {
  const auto co = soc::evaluate_coschedule(
      kSpec, cpu_friendly(), cpu_cfg(3, 3), gpu_friendly(), gpu_cfg(2, 3));
  EXPECT_NEAR(co.throughput(),
              1000.0 / co.cpu_kernel_time_ms +
                  1000.0 / co.gpu_kernel_time_ms,
              1e-9);
}

// -------------------------------------------------------- core optimizer --

class CoSelectTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new soc::Machine{soc::MachineSpec{}, 606};
    suite_ = new workloads::Suite{workloads::Suite::standard()};
    characterizations_ = new std::vector<core::KernelCharacterization>{
        eval::characterize(*machine_, *suite_)};
    model_ =
        new core::TrainedModel{core::train(*characterizations_).model};
  }
  static void TearDownTestSuite() {
    delete model_;
    delete characterizations_;
    delete suite_;
    delete machine_;
  }
  static soc::Machine* machine_;
  static workloads::Suite* suite_;
  static std::vector<core::KernelCharacterization>* characterizations_;
  static core::TrainedModel* model_;

  core::Prediction predict(const std::string& id) {
    for (const auto& c : *characterizations_) {
      if (c.instance_id == id) {
        return model_->predict(c.samples);
      }
    }
    throw Error{"no characterization: " + id};
  }

  core::CoSchedulerOptions options() {
    core::CoSchedulerOptions o;
    o.idle_power_w = soc::idle_power(machine_->spec()).total();
    return o;
  }
};

soc::Machine* CoSelectTest::machine_ = nullptr;
workloads::Suite* CoSelectTest::suite_ = nullptr;
std::vector<core::KernelCharacterization>* CoSelectTest::characterizations_ =
    nullptr;
core::TrainedModel* CoSelectTest::model_ = nullptr;

TEST_F(CoSelectTest, PlacesGpuFriendlyKernelOnTheGpu) {
  const auto lu = predict("LU-Large/lud");            // GPU-dominant
  const auto halo = predict("CoMD-LJ/HaloExchange");  // GPU-hostile
  const auto choice = core::co_select(lu, halo, 45.0, options());
  EXPECT_TRUE(choice.feasible);
  // LU is the first kernel: it must land on the GPU (first_on_cpu false).
  EXPECT_FALSE(choice.first_on_cpu);
  const ConfigSpace space;
  EXPECT_EQ(space.at(choice.cpu_config_index).device, Device::Cpu);
  EXPECT_EQ(space.at(choice.gpu_config_index).device, Device::Gpu);
  EXPECT_LE(choice.predicted_power_w, 45.0);
}

TEST_F(CoSelectTest, CpuKernelLeavesACoreForTheDriver) {
  const auto a = predict("SMC-Default/ChemistryRates");
  const auto b = predict("LULESH-Large/CalcFBHourglassForce");
  const auto choice = core::co_select(a, b, 50.0, options());
  const ConfigSpace space;
  EXPECT_LE(space.at(choice.cpu_config_index).threads, 3);
}

TEST_F(CoSelectTest, TightCapReportsInfeasible) {
  const auto a = predict("LU-Large/lud");
  const auto b = predict("SMC-Default/ChemistryRates");
  const auto choice = core::co_select(a, b, 12.0, options());
  EXPECT_FALSE(choice.feasible);
  EXPECT_GT(choice.predicted_power_w, 12.0);
}

TEST_F(CoSelectTest, HigherCapNeverLowersPredictedThroughput) {
  const auto a = predict("CoMD-EAM/ComputeForce");
  const auto b = predict("LULESH-Large/CalcKinematicsForElems");
  double prev = 0.0;
  for (const double cap : {25.0, 35.0, 50.0, 80.0}) {
    const auto choice = core::co_select(a, b, cap, options());
    if (choice.feasible) {
      EXPECT_GE(choice.predicted_throughput, prev - 1e-9) << cap;
      prev = choice.predicted_throughput;
    }
  }
  EXPECT_GT(prev, 0.0);
}

TEST_F(CoSelectTest, PredictedPowerTracksCoScheduleTruth) {
  const auto lu = predict("LU-Large/lud");
  const auto halo = predict("CoMD-LJ/HaloExchange");
  const auto choice = core::co_select(lu, halo, 45.0, options());
  const ConfigSpace space;
  const auto& cpu_kernel = suite_->instance("CoMD-LJ/HaloExchange").traits;
  const auto& gpu_kernel = suite_->instance("LU-Large/lud").traits;
  const auto truth = soc::evaluate_coschedule(
      machine_->spec(), cpu_kernel, space.at(choice.cpu_config_index),
      gpu_kernel, space.at(choice.gpu_config_index));
  EXPECT_NEAR(choice.predicted_power_w / truth.total_power_w(), 1.0, 0.35);
}

TEST_F(CoSelectTest, ValidatesInputs) {
  const auto a = predict("LU-Small/lud");
  EXPECT_THROW(core::co_select(a, a, 0.0, options()), Error);
  core::CoSchedulerOptions bad = options();
  bad.max_cpu_threads = hw::kCpuCores;
  EXPECT_THROW(core::co_select(a, a, 30.0, bad), Error);
}

// ------------------------------------------------------- energy budget --

core::Prediction synthetic_prediction() {
  core::Prediction prediction;
  // (power, perf): energies 10, 7.5, 8.33 J.
  const double power[] = {10.0, 15.0, 25.0};
  const double perf[] = {1.0, 2.0, 3.0};
  for (std::size_t i = 0; i < 3; ++i) {
    core::ClusterModel::Estimate e;
    e.power_w = power[i];
    e.performance = perf[i];
    prediction.per_config.push_back(e);
  }
  prediction.frontier = pareto::ParetoFrontier::build(
      std::vector<double>{power, power + 3},
      std::vector<double>{perf, perf + 3});
  return prediction;
}

TEST(EnergyBudget, PicksFastestWithinBudget) {
  const auto prediction = synthetic_prediction();
  const core::Scheduler scheduler{prediction};
  // 9 J: configs 1 (7.5 J) and 2 (8.33 J) fit; config 2 is faster.
  const auto nine = scheduler.select_under_energy(9.0);
  EXPECT_TRUE(nine.predicted_feasible);
  EXPECT_EQ(nine.config_index, 2u);
  // 8 J: only config 1 fits.
  const auto eight = scheduler.select_under_energy(8.0);
  EXPECT_EQ(eight.config_index, 1u);
}

TEST(EnergyBudget, InfeasibleBudgetFallsBackToMinEnergy) {
  const auto prediction = synthetic_prediction();
  const core::Scheduler scheduler{prediction};
  const auto choice = scheduler.select_under_energy(5.0);
  EXPECT_FALSE(choice.predicted_feasible);
  EXPECT_EQ(choice.config_index, 1u);  // the 7.5 J minimum-energy point
  EXPECT_THROW(scheduler.select_under_energy(0.0), Error);
}

}  // namespace
}  // namespace acsel
