// BudgetBalancer edge cases and brownout staging: the allocation must
// keep every cap non-negative and never hand out more watts than the
// facility has — including the degenerate windows a real emergency
// produces (every shard dead, zero demand, a budget slashed below the
// sum of per-shard floors) — and the brownout state machine must
// escalate immediately, recover one stage per rebalance, and count
// emergencies exactly once.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/budget.h"

namespace acsel::fleet {
namespace {

constexpr std::size_t kShards = 4;

BudgetOptions options_with(cluster::AllocationPolicy policy) {
  BudgetOptions options;
  options.policy = policy;
  return options;
}

double cap_sum(const BudgetBalancer& balancer) {
  double sum = 0.0;
  for (std::uint32_t s = 0; s < balancer.size(); ++s) {
    sum += balancer.shard(s).cap_w;
  }
  return sum;
}

void expect_caps_sane(const BudgetBalancer& balancer) {
  for (std::uint32_t s = 0; s < balancer.size(); ++s) {
    EXPECT_GE(balancer.shard(s).cap_w, 0.0);
  }
  EXPECT_LE(cap_sum(balancer), balancer.global_budget_w() + 1e-9);
}

class BudgetPolicyTest
    : public ::testing::TestWithParam<cluster::AllocationPolicy> {};

TEST_P(BudgetPolicyTest, AllShardsDeadStillSumsToBudget) {
  BudgetBalancer balancer{kShards, options_with(GetParam())};
  const std::vector<std::uint64_t> demand(kShards, 0);
  const std::vector<bool> dead(kShards, true);
  balancer.rebalance(demand, dead);
  expect_caps_sane(balancer);
  EXPECT_NEAR(cap_sum(balancer), balancer.global_budget_w(), 1e-6);
}

TEST_P(BudgetPolicyTest, ZeroDemandWindowSplitsEvenly) {
  BudgetBalancer balancer{kShards, options_with(GetParam())};
  const std::vector<std::uint64_t> demand(kShards, 0);
  const std::vector<bool> dead(kShards, false);
  balancer.rebalance(demand, dead);
  expect_caps_sane(balancer);
  EXPECT_NEAR(cap_sum(balancer), balancer.global_budget_w(), 1e-6);
  // No demand signal: no shard has a claim over another.
  for (std::uint32_t s = 1; s < kShards; ++s) {
    EXPECT_NEAR(balancer.shard(s).cap_w, balancer.shard(0).cap_w, 1e-6);
  }
}

TEST_P(BudgetPolicyTest, BudgetBelowFloorSumVoidsTheFloors) {
  BudgetBalancer balancer{kShards, options_with(GetParam())};
  // 4 shards x 10 W floor = 40 W of floors; 20 W of facility. A
  // floor-respecting split would allocate 40 W that do not exist.
  const double floor_sum = static_cast<double>(kShards) *
                           options_with(GetParam()).allocator.floor_w;
  balancer.set_emergency_budget(0.5 * floor_sum);
  const std::vector<std::uint64_t> demand = {10, 20, 30, 40};
  const std::vector<bool> dead(kShards, false);
  balancer.rebalance(demand, dead);
  expect_caps_sane(balancer);
  EXPECT_NEAR(cap_sum(balancer), 0.5 * floor_sum, 1e-9);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_NEAR(balancer.shard(s).cap_w,
                0.5 * floor_sum / static_cast<double>(kShards), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, BudgetPolicyTest,
    ::testing::Values(cluster::AllocationPolicy::Uniform,
                      cluster::AllocationPolicy::DemandProportional,
                      cluster::AllocationPolicy::MarginalGain),
    [](const ::testing::TestParamInfo<cluster::AllocationPolicy>& param) {
      switch (param.param) {
        case cluster::AllocationPolicy::Uniform:
          return std::string{"Uniform"};
        case cluster::AllocationPolicy::DemandProportional:
          return std::string{"DemandProportional"};
        case cluster::AllocationPolicy::MarginalGain:
          return std::string{"MarginalGain"};
      }
      return std::string{"Unknown"};
    });

// ---- brownout staging --------------------------------------------------

TEST(BudgetBrownout, EscalatesImmediatelyAndRecoversOneStagePerRebalance) {
  BudgetBalancer balancer{kShards, BudgetOptions{}};
  const std::vector<std::uint64_t> demand(kShards, 5);
  const std::vector<bool> dead(kShards, false);
  EXPECT_EQ(balancer.stage(), BrownoutStage::None);

  // 40% of base < floor pressure (0.55): one rebalance jumps straight to
  // the deepest stage — the watts are already gone.
  balancer.set_emergency_budget(0.4 * balancer.base_budget_w());
  EXPECT_NEAR(balancer.pressure(), 0.4, 1e-12);
  balancer.rebalance(demand, dead);
  EXPECT_EQ(balancer.stage(), BrownoutStage::ForceLowPower);
  EXPECT_EQ(balancer.brownout_events(), 1u);

  // Budget restored: the stages unwind one per rebalance.
  balancer.clear_emergency();
  EXPECT_NEAR(balancer.pressure(), 1.0, 1e-12);
  balancer.rebalance(demand, dead);
  EXPECT_EQ(balancer.stage(), BrownoutStage::ShedLowPriority);
  balancer.rebalance(demand, dead);
  EXPECT_EQ(balancer.stage(), BrownoutStage::DropHedges);
  balancer.rebalance(demand, dead);
  EXPECT_EQ(balancer.stage(), BrownoutStage::None);
  // One emergency, one event — the staged recovery is not new events.
  EXPECT_EQ(balancer.brownout_events(), 1u);
}

TEST(BudgetBrownout, PartialPressureEntersThePartialStages) {
  BudgetBalancer balancer{kShards, BudgetOptions{}};
  const std::vector<std::uint64_t> demand(kShards, 5);
  const std::vector<bool> dead(kShards, false);

  balancer.set_emergency_budget(0.8 * balancer.base_budget_w());
  balancer.rebalance(demand, dead);  // 0.8 < hedge (0.85), >= shed (0.70)
  EXPECT_EQ(balancer.stage(), BrownoutStage::DropHedges);

  balancer.set_emergency_budget(0.6 * balancer.base_budget_w());
  balancer.rebalance(demand, dead);  // 0.6 < shed, >= floor (0.55)
  EXPECT_EQ(balancer.stage(), BrownoutStage::ShedLowPriority);
  EXPECT_EQ(balancer.brownout_events(), 1u);  // one continuous emergency
}

TEST(BudgetBrownout, DeliberateReprovisioningIsNotAnEmergency) {
  BudgetBalancer balancer{kShards, BudgetOptions{}};
  const std::vector<std::uint64_t> demand(kShards, 5);
  const std::vector<bool> dead(kShards, false);

  // set_global_budget moves the base too: pressure stays 1.0, so even a
  // drastic re-provisioning browns nothing out.
  balancer.set_global_budget(0.3 * balancer.base_budget_w());
  EXPECT_NEAR(balancer.pressure(), 1.0, 1e-12);
  balancer.rebalance(demand, dead);
  EXPECT_EQ(balancer.stage(), BrownoutStage::None);
  EXPECT_EQ(balancer.brownout_events(), 0u);

  // And an emergency afterwards is judged against the new base.
  balancer.set_emergency_budget(0.5 * balancer.base_budget_w());
  balancer.rebalance(demand, dead);
  EXPECT_EQ(balancer.stage(), BrownoutStage::ForceLowPower);
  EXPECT_EQ(balancer.brownout_events(), 1u);
}

TEST(BudgetBrownout, LatencyScaleIsNormalizedAndMonotone) {
  BudgetBalancer balancer{1, BudgetOptions{}};
  EXPECT_NEAR(balancer.latency_scale_at(BudgetOptions{}.nominal_cap_w), 1.0,
              1e-12);
  // Less power never serves faster.
  double previous = balancer.latency_scale_at(40.0);
  for (double cap = 38.0; cap >= 8.0; cap -= 2.0) {
    const double scale = balancer.latency_scale_at(cap);
    EXPECT_GE(scale, previous - 1e-12);
    previous = scale;
  }
}

}  // namespace
}  // namespace acsel::fleet
