// Tests for the SLO engine: per-tick good/bad classification for the
// three SLI kinds, multi-window burn-rate fire/clear semantics, alert
// annotations (fleet context + histogram exemplars), and live state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/slo.h"
#include "util/error.h"

namespace acsel::obs {
namespace {

MetricSnapshot counter_snapshot(const std::string& name, std::uint64_t count) {
  MetricSnapshot metric;
  metric.name = name;
  metric.kind = MetricKind::Counter;
  metric.count = count;
  return metric;
}

MetricSnapshot gauge_snapshot(const std::string& name, double value) {
  MetricSnapshot metric;
  metric.name = name;
  metric.kind = MetricKind::Gauge;
  metric.value = value;
  return metric;
}

/// Small windows and a threshold of 1x make the arithmetic visible:
/// with error_budget 0.5, a window is "hot" once half its ticks are bad.
BurnRateOptions test_burn() {
  BurnRateOptions burn;
  burn.fast_window = 2;
  burn.slow_window = 4;
  burn.burn_threshold = 1.0;
  return burn;
}

Slo ratio_slo() {
  Slo slo;
  slo.name = "delivered";
  slo.kind = SloKind::RatioAtLeast;
  slo.numerator = "ok";
  slo.denominator = "total";
  slo.objective = 0.9;
  slo.error_budget = 0.5;
  return slo;
}

/// Observes one tick of cumulative ok/total counters.
void observe_ratio(SeriesStore& store, std::uint64_t ok, std::uint64_t total) {
  store.observe({counter_snapshot("ok", ok), counter_snapshot("total", total)});
}

TEST(SloEngine, GoodTicksNeverFire) {
  SeriesStore store{16};
  SloEngine engine{test_burn()};
  engine.add(ratio_slo());
  std::uint64_t ok = 0;
  for (int t = 0; t < 10; ++t) {
    ok += 100;
    observe_ratio(store, ok, ok);
    EXPECT_TRUE(engine.evaluate(store).empty());
  }
  EXPECT_TRUE(engine.alerts().empty());
  ASSERT_EQ(engine.states().size(), 1u);
  EXPECT_EQ(engine.states()[0].sli, 1.0);
  EXPECT_FALSE(engine.states()[0].firing);
}

TEST(SloEngine, ZeroTrafficTicksAreVacuouslyGood) {
  SeriesStore store{16};
  SloEngine engine{test_burn()};
  engine.add(ratio_slo());
  for (int t = 0; t < 8; ++t) {
    observe_ratio(store, 0, 0);  // counters never move
    EXPECT_TRUE(engine.evaluate(store).empty());
  }
  EXPECT_EQ(engine.states()[0].sli, 1.0);
}

TEST(SloEngine, FiresOnlyWhenBothWindowsBurn) {
  SeriesStore store{16};
  SloEngine engine{test_burn()};
  engine.add(ratio_slo());
  std::uint64_t ok = 0;
  std::uint64_t total = 0;
  // Two good ticks, then bad ticks (half the requests delivered). The
  // fast window (2) is hot after 2 bad ticks, but the slow window (4)
  // still holds the good history: fires on the 2nd bad tick, when both
  // windows reach bad fraction 1/2 = budget * threshold.
  for (int t = 0; t < 2; ++t) {
    ok += 100;
    total += 100;
    observe_ratio(store, ok, total);
    EXPECT_TRUE(engine.evaluate(store).empty());
  }
  ok += 50;
  total += 100;
  observe_ratio(store, ok, total);
  EXPECT_TRUE(engine.evaluate(store).empty());  // fast hot, slow 1/3
  ok += 50;
  total += 100;
  observe_ratio(store, ok, total);
  const std::vector<Alert> fired = engine.evaluate(store);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].slo, "delivered");
  EXPECT_EQ(fired[0].fired_tick, 4u);
  EXPECT_TRUE(fired[0].active());
  EXPECT_GE(fired[0].fast_burn, 1.0);
  EXPECT_GE(fired[0].slow_burn, 1.0);
  EXPECT_EQ(fired[0].worst_value, 0.5);
  EXPECT_TRUE(engine.states()[0].firing);
  ASSERT_EQ(engine.active_alerts().size(), 1u);
}

TEST(SloEngine, FastWindowRecoveryClearsTheAlert) {
  SeriesStore store{16};
  SloEngine engine{test_burn()};
  engine.add(ratio_slo());
  std::uint64_t ok = 0;
  std::uint64_t total = 0;
  for (int t = 0; t < 4; ++t) {  // burn until it fires
    ok += 50;
    total += 100;
    observe_ratio(store, ok, total);
    engine.evaluate(store);
  }
  ASSERT_EQ(engine.active_alerts().size(), 1u);
  // Two healthy ticks empty the fast window of bad bits.
  for (int t = 0; t < 2; ++t) {
    ok += 100;
    total += 100;
    observe_ratio(store, ok, total);
    engine.evaluate(store);
  }
  EXPECT_TRUE(engine.active_alerts().empty());
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].cleared_tick, 6u);
  EXPECT_FALSE(engine.states()[0].firing);
}

TEST(SloEngine, ValueBelowFiresWhenValueMeetsObjective) {
  SeriesStore store{16};
  SloEngine engine{test_burn()};
  Slo slo;
  slo.name = "p99";
  slo.kind = SloKind::ValueBelow;
  slo.numerator = "p99_us";
  slo.objective = 1000.0;
  slo.error_budget = 0.5;
  engine.add(slo);
  std::vector<Alert> fired;
  for (int t = 0; t < 4; ++t) {
    store.observe({gauge_snapshot("p99_us", 1000.0)});  // >= objective: bad
    for (const Alert& alert : engine.evaluate(store)) {
      fired.push_back(alert);
    }
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].slo, "p99");
  EXPECT_EQ(fired[0].worst_value, 1000.0);
}

TEST(SloEngine, ValueAtMostToleratesTheBoundary) {
  SeriesStore store{16};
  SloEngine engine{test_burn()};
  Slo slo;
  slo.name = "cap";
  slo.kind = SloKind::ValueAtMost;
  slo.numerator = "exceedance";
  slo.objective = 0.05;
  slo.error_budget = 0.5;
  engine.add(slo);
  for (int t = 0; t < 8; ++t) {
    store.observe({gauge_snapshot("exceedance", 0.05)});  // == objective: ok
    EXPECT_TRUE(engine.evaluate(store).empty());
  }
  for (int t = 0; t < 4; ++t) {
    store.observe({gauge_snapshot("exceedance", 0.06)});  // > objective: bad
  }
  // Catch up the engine (one evaluate per observe is the contract, but
  // the final state only needs the last windows).
  std::vector<Alert> fired = engine.evaluate(store);
  for (int t = 0; t < 3; ++t) {
    for (const Alert& alert : engine.evaluate(store)) {
      fired.push_back(alert);
    }
  }
  EXPECT_EQ(fired.size(), 1u);
}

TEST(SloEngine, AlertsCarryFleetAnnotationsAndExemplars) {
  SeriesStore store{16};
  SloEngine engine{test_burn()};
  Slo slo = ratio_slo();
  slo.exemplar_metric = "latency";
  engine.add(slo);

  Registry registry;
  Histogram& latency = registry.histogram("latency");
  latency.record(5'000'000, 0xabcdef12u);  // traced: becomes an exemplar
  latency.record(1'000, 0);                // untraced: never an exemplar

  std::uint64_t ok = 0;
  std::uint64_t total = 0;
  double transitions = 0.0;
  std::vector<Alert> fired;
  for (int t = 0; t < 4; ++t) {
    const bool good = t < 2;  // healthy history, then a burn
    ok += good ? 100 : 50;
    total += 100;
    transitions += 1.0;  // the fleet is reconfiguring while we burn
    store.observe({counter_snapshot("ok", ok), counter_snapshot("total", total),
                   gauge_snapshot("fleet.membership_transitions", transitions)});
    for (const Alert& alert : engine.evaluate(store, &registry)) {
      fired.push_back(alert);
    }
  }
  ASSERT_EQ(fired.size(), 1u);
  // Delta of the transitions gauge over the slow window: ticks 1..4 of
  // a gauge stepping 1.0/tick.
  EXPECT_EQ(fired[0].membership_transitions, 3.0);
  ASSERT_EQ(fired[0].exemplar_trace_ids.size(), 1u);
  EXPECT_EQ(fired[0].exemplar_trace_ids[0], 0xabcdef12u);
}

TEST(SloEngine, SlowWindowMemoryRefiresAFlappingCondition) {
  SeriesStore store{32};
  SloEngine engine{test_burn()};
  engine.add(ratio_slo());
  std::uint64_t ok = 0;
  std::uint64_t total = 0;
  auto tick = [&](bool good) {
    ok += good ? 100 : 50;
    total += 100;
    observe_ratio(store, ok, total);
    return engine.evaluate(store).size();
  };
  std::size_t fires = 0;
  fires += tick(false);  // cold-start windows hold only bad ticks: fires
  fires += tick(false);
  EXPECT_EQ(fires, 1u);
  fires += tick(true);
  fires += tick(true);  // clears (fast window all good)
  EXPECT_TRUE(engine.active_alerts().empty());
  // The slow window still remembers 2 bad of its last 4 ticks, so two
  // more bad ticks re-fire immediately.
  fires += tick(false);
  fires += tick(false);
  EXPECT_EQ(fires, 2u);
  EXPECT_EQ(engine.alerts().size(), 2u);
}

TEST(SloEngine, RejectsMisconfiguredSlos) {
  SloEngine engine;
  Slo nameless;
  nameless.numerator = "x";
  EXPECT_THROW(engine.add(nameless), Error);
  Slo ratio_without_denominator;
  ratio_without_denominator.name = "r";
  ratio_without_denominator.kind = SloKind::RatioAtLeast;
  ratio_without_denominator.numerator = "x";
  EXPECT_THROW(engine.add(ratio_without_denominator), Error);
  Slo zero_budget;
  zero_budget.name = "z";
  zero_budget.kind = SloKind::ValueBelow;
  zero_budget.numerator = "x";
  zero_budget.error_budget = 0.0;
  EXPECT_THROW(engine.add(zero_budget), Error);
}

}  // namespace
}  // namespace acsel::obs
