// Tests for the configuration space: P-state tables, canonical form,
// enumeration, sample configurations, and limiter stepping.
#include <gtest/gtest.h>

#include <set>

#include "hw/config.h"
#include "hw/config_space.h"
#include "hw/pstate.h"
#include "util/error.h"

namespace acsel::hw {
namespace {

TEST(PStates, CpuTableMatchesPaper) {
  const auto table = cpu_pstates();
  ASSERT_EQ(table.size(), kCpuPStateCount);
  EXPECT_DOUBLE_EQ(table.front().freq_ghz, 1.4);  // §IV-A: 1.4 to 3.7 GHz
  EXPECT_DOUBLE_EQ(table.back().freq_ghz, 3.7);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GT(table[i].freq_ghz, table[i - 1].freq_ghz);
    EXPECT_GT(table[i].voltage, table[i - 1].voltage);
  }
}

TEST(PStates, GpuTableMatchesPaper) {
  const auto table = gpu_pstates();
  ASSERT_EQ(table.size(), kGpuPStateCount);  // §IV-A: 311, 649, 819 MHz
  EXPECT_DOUBLE_EQ(table[0].freq_mhz, 311.0);
  EXPECT_DOUBLE_EQ(table[1].freq_mhz, 649.0);
  EXPECT_DOUBLE_EQ(table[2].freq_mhz, 819.0);
}

TEST(PStates, Names) {
  EXPECT_EQ(cpu_pstate_name(0), "1.4 GHz");
  EXPECT_EQ(cpu_pstate_name(5), "3.7 GHz");
  EXPECT_EQ(gpu_pstate_name(0), "311 MHz");
  EXPECT_THROW(cpu_pstate_name(6), Error);
  EXPECT_THROW(gpu_pstate_name(3), Error);
}

TEST(PStates, Topology) {
  EXPECT_EQ(kCpuCores, 4);       // two dual-core PileDriver modules
  EXPECT_EQ(kCpuModules, 2);
  EXPECT_EQ(kGpuCores, 384);     // §IV-A
}

TEST(Config, ActiveModulesCompact) {
  Configuration c;
  c.device = Device::Cpu;
  c.mapping = CoreMapping::Compact;
  c.threads = 1;
  EXPECT_EQ(c.active_modules(), 1);
  EXPECT_FALSE(c.has_shared_module());
  c.threads = 2;
  EXPECT_EQ(c.active_modules(), 1);
  EXPECT_TRUE(c.has_shared_module());
  c.threads = 3;
  EXPECT_EQ(c.active_modules(), 2);
  c.threads = 4;
  EXPECT_EQ(c.active_modules(), 2);
  EXPECT_TRUE(c.has_shared_module());
}

TEST(Config, ActiveModulesScatter) {
  Configuration c;
  c.device = Device::Cpu;
  c.mapping = CoreMapping::Scatter;
  c.threads = 2;
  EXPECT_EQ(c.active_modules(), 2);
  EXPECT_FALSE(c.has_shared_module());  // one thread per module
  c.threads = 3;
  EXPECT_EQ(c.active_modules(), 2);
  EXPECT_TRUE(c.has_shared_module());   // third thread doubles up
}

TEST(Config, ValidationRejectsNonCanonicalForms) {
  Configuration c;
  c.device = Device::Cpu;
  c.threads = 1;
  c.mapping = CoreMapping::Scatter;  // indistinct from compact at 1 thread
  EXPECT_THROW(c.validate(), Error);

  Configuration g;
  g.device = Device::Gpu;
  g.threads = 2;  // GPU device uses exactly one host thread
  EXPECT_THROW(g.validate(), Error);

  Configuration parked;
  parked.device = Device::Cpu;
  parked.gpu_pstate = 1;  // CPU device keeps GPU at minimum
  EXPECT_THROW(parked.validate(), Error);
}

TEST(Config, ToStringIsHumanReadable) {
  Configuration c;
  c.device = Device::Cpu;
  c.cpu_pstate = 2;
  c.threads = 3;
  c.mapping = CoreMapping::Scatter;
  EXPECT_EQ(c.to_string(), "CPU 2.4 GHz x3 scatter (GPU 311 MHz)");

  Configuration g;
  g.device = Device::Gpu;
  g.cpu_pstate = 5;
  g.gpu_pstate = 2;
  EXPECT_EQ(g.to_string(), "GPU 819 MHz (host CPU 3.7 GHz)");
}

TEST(ConfigSpace, SizeAndUniqueness) {
  const ConfigSpace space;
  EXPECT_EQ(space.size(), kConfigCount);
  EXPECT_EQ(space.size(), 54u);
  std::set<std::string> seen;
  for (const auto& config : space.all()) {
    EXPECT_NO_THROW(config.validate());
    seen.insert(config.to_string());
  }
  EXPECT_EQ(seen.size(), space.size()) << "all configurations distinct";
}

TEST(ConfigSpace, IndexOfRoundTrips) {
  const ConfigSpace space;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto found = space.index_of(space.at(i));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, i);
  }
}

TEST(ConfigSpace, IndexOfMissingConfig) {
  const ConfigSpace space;
  Configuration odd;
  odd.device = Device::Cpu;
  odd.cpu_pstate = 0;
  odd.threads = 1;
  odd.mapping = CoreMapping::Scatter;  // non-canonical, never enumerated
  EXPECT_FALSE(space.index_of(odd).has_value());
}

TEST(ConfigSpace, AtOutOfRangeThrows) {
  const ConfigSpace space;
  EXPECT_THROW(space.at(space.size()), Error);
}

TEST(ConfigSpace, DeviceBlocks) {
  const ConfigSpace space;
  const auto cpu = space.indices_for(Device::Cpu);
  const auto gpu = space.indices_for(Device::Gpu);
  EXPECT_EQ(cpu.size(), 36u);  // 6 P-states x 6 placements
  EXPECT_EQ(gpu.size(), 18u);  // 3 GPU P-states x 6 host P-states
  EXPECT_EQ(cpu.size() + gpu.size(), space.size());
}

TEST(ConfigSpace, SampleConfigsMatchTableII) {
  const ConfigSpace space;
  const Configuration cpu = space.cpu_sample();
  EXPECT_EQ(cpu.device, Device::Cpu);
  EXPECT_DOUBLE_EQ(cpu.cpu_freq_ghz(), 3.7);
  EXPECT_EQ(cpu.threads, 4);
  EXPECT_DOUBLE_EQ(cpu.gpu_freq_mhz(), 311.0);

  const Configuration gpu = space.gpu_sample();
  EXPECT_EQ(gpu.device, Device::Gpu);
  EXPECT_DOUBLE_EQ(gpu.cpu_freq_ghz(), 3.7);
  EXPECT_EQ(gpu.threads, 1);
  EXPECT_DOUBLE_EQ(gpu.gpu_freq_mhz(), 819.0);

  EXPECT_EQ(space.at(space.cpu_sample_index()), cpu);
  EXPECT_EQ(space.at(space.gpu_sample_index()), gpu);
}

TEST(ConfigSpace, StepDownStopsAtFloor) {
  const ConfigSpace space;
  Configuration c = space.cpu_sample();
  int steps = 0;
  while (auto next = ConfigSpace::step_down(c, Device::Cpu)) {
    c = *next;
    ++steps;
  }
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(c.cpu_pstate, 0u);
  EXPECT_FALSE(ConfigSpace::step_down(c, Device::Cpu).has_value());
}

TEST(ConfigSpace, StepUpStopsAtCeiling) {
  const ConfigSpace space;
  Configuration c = space.gpu_sample();
  EXPECT_FALSE(ConfigSpace::step_up(c, Device::Gpu).has_value());
  c.gpu_pstate = 0;
  const auto up = ConfigSpace::step_up(c, Device::Gpu);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->gpu_pstate, 1u);
}

TEST(ConfigSpace, StepPreservesOtherFields) {
  const ConfigSpace space;
  const Configuration c = space.gpu_sample();
  const auto down = ConfigSpace::step_down(c, Device::Gpu);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->device, c.device);
  EXPECT_EQ(down->threads, c.threads);
  EXPECT_EQ(down->cpu_pstate, c.cpu_pstate);
  EXPECT_EQ(down->gpu_pstate, c.gpu_pstate - 1);
}

}  // namespace
}  // namespace acsel::hw
