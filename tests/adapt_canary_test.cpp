// End-to-end tests of the adapt loop against the simulated SoC: a
// mid-run workload shift (the soc.kernel_shift fault) makes the offline
// model stale, drift fires, a background retrain produces a candidate,
// the canary gates it, and promotion recovers selection quality — all
// deterministic under a fixed seed. Also covers the serve integration:
// wire feedback, shadow evaluation on served requests, stats scrapes,
// and the guarantee that serving never blocks on a retrain.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapt/canary.h"
#include "adapt/controller.h"
#include "core/runtime.h"
#include "core/scheduler.h"
#include "core/trainer.h"
#include "eval/characterize.h"
#include "exec/executor.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "serve/codec.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "soc/machine.h"
#include "workloads/suite.h"

namespace acsel {
namespace {

constexpr double kCapW = 20.0;
constexpr double kShiftMagnitude = 2.5;

/// Characterizes the first `count` suite instances on clones of
/// `machine`. With the shift armed every run behaves as the shifted
/// kernel, so the result is ground truth for the post-shift world.
std::vector<core::KernelCharacterization> characterize_some(
    const soc::Machine& machine, const workloads::Suite& suite,
    std::size_t count, bool shifted) {
  if (shifted) {
    fault::Injector::global().arm("soc.kernel_shift",
                                  {1.0, 1, kShiftMagnitude});
  }
  std::vector<core::KernelCharacterization> result;
  for (std::size_t i = 0; i < count && i < suite.size(); ++i) {
    soc::Machine clone = machine.clone(i);
    result.push_back(
        eval::characterize_instance(clone, suite.instances()[i]));
  }
  fault::Injector::global().disarm_all();
  return result;
}

class AdaptCanaryTest : public ::testing::Test {
 public:
  static void SetUpTestSuite() {
    const soc::Machine machine{soc::MachineSpec{}, 4242};
    const auto suite = workloads::Suite::standard();
    clean_ = new std::vector<core::KernelCharacterization>{
        characterize_some(machine, suite, 12, false)};
    shifted_ = new std::vector<core::KernelCharacterization>{
        characterize_some(machine, suite, 12, true)};
    clean_model_ = core::make_predictor(core::train(*clean_).model);
    shifted_model_ = core::make_predictor(core::train(*shifted_).model);
  }
  static void TearDownTestSuite() {
    shifted_model_.reset();
    clean_model_.reset();
    delete shifted_;
    delete clean_;
  }
  void TearDown() override { fault::Injector::global().disarm_all(); }

  /// One serving-loop observation mid-shift: the model predicts and
  /// selects from the kernel's *retained* (pre-shift) profile, but the
  /// measurement comes back from the world `truth` describes. Before the
  /// shift `profile` and `truth` are the same characterization.
  static adapt::Feedback feedback_for(
      const core::Predictor& model,
      const core::KernelCharacterization& profile,
      const core::KernelCharacterization& truth) {
    const core::Prediction prediction = model.predict(profile.samples);
    const core::Scheduler::Choice choice =
        core::Scheduler{prediction}.select_goal(
            core::SchedulingGoal::MaxPerformance, kCapW);
    adapt::Feedback feedback;
    feedback.samples = profile.samples;
    feedback.predicted_power_w = choice.predicted_power_w;
    feedback.predicted_performance = choice.predicted_performance;
    feedback.measured_power_w = truth.powers()[choice.config_index];
    feedback.measured_performance = truth.performances()[choice.config_index];
    feedback.cap_w = kCapW;
    feedback.label = truth;
    return feedback;
  }

  /// Mean capped selection error of `model` over `truths`.
  static double mean_error(
      const core::Predictor& model,
      const std::vector<core::KernelCharacterization>& truths) {
    double sum = 0.0;
    for (const auto& truth : truths) {
      sum += adapt::selection_quality(model, truth, kCapW,
                                      core::SchedulingGoal::MaxPerformance, {})
                 .error;
    }
    return sum / static_cast<double>(truths.size());
  }

  static std::vector<core::KernelCharacterization>* clean_;
  static std::vector<core::KernelCharacterization>* shifted_;
  static core::PredictorPtr clean_model_;
  static core::PredictorPtr shifted_model_;
};

std::vector<core::KernelCharacterization>* AdaptCanaryTest::clean_ = nullptr;
std::vector<core::KernelCharacterization>* AdaptCanaryTest::shifted_ = nullptr;
core::PredictorPtr AdaptCanaryTest::clean_model_;
core::PredictorPtr AdaptCanaryTest::shifted_model_;

TEST_F(AdaptCanaryTest, TheShiftActuallyDegradesTheCleanModel) {
  // Sanity anchor for everything below: the clean model selects well in
  // the clean world and markedly worse in the shifted one.
  const double clean_on_clean = mean_error(*clean_model_, *clean_);
  const double clean_on_shifted = mean_error(*clean_model_, *shifted_);
  const double shifted_on_shifted = mean_error(*shifted_model_, *shifted_);
  EXPECT_GT(clean_on_shifted, clean_on_clean);
  EXPECT_LT(shifted_on_shifted, clean_on_shifted);
}

TEST_F(AdaptCanaryTest, CanaryRejectsCorruptAcceptsGoodCandidate) {
  obs::Registry metrics;
  serve::ModelRegistry registry;
  registry.publish(clean_model_);

  adapt::AdaptOptions options;
  options.metrics = &metrics;
  options.drift.threshold = 1e9;  // keep the loop's own retrains out
  options.canary.shadow_fraction = 1.0;
  options.canary.min_evals = 12;
  adapt::AdaptController controller{registry, exec::inline_executor(), *clean_,
                                    options};

  // A corrupt candidate (default model: predict throws) is rejected on
  // the very first scored observation, whatever its numbers elsewhere.
  controller.begin_canary(std::make_shared<const core::TrainedModel>());
  controller.observe(
      feedback_for(*clean_model_, clean_->front(), shifted_->front()));
  serve::AdaptStats stats = controller.adapt_stats();
  EXPECT_FALSE(stats.canary_active);
  EXPECT_EQ(stats.canary_rejected, 1u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(registry.current().version, 1u);

  // A candidate retrained on the shifted world beats the stale incumbent
  // by margin on shifted traffic and is promoted.
  controller.begin_canary(shifted_model_);
  for (std::size_t i = 0; i < shifted_->size(); ++i) {
    controller.observe(
        feedback_for(*clean_model_, (*clean_)[i], (*shifted_)[i]));
  }
  stats = controller.adapt_stats();
  EXPECT_FALSE(stats.canary_active);
  EXPECT_EQ(stats.canary_accepted, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.canary_evals, 13u);  // 1 corrupt-round eval + 12 here
  EXPECT_EQ(registry.current().version, 2u);
}

/// The full loop under an injected workload shift, small enough windows
/// to converge quickly. Returns the final adapt stats plus the promoted
/// model's serialization — the determinism test compares two runs.
struct LoopOutcome {
  serve::AdaptStats stats;
  std::vector<std::uint64_t> versions;
  std::string final_model;
  double recovered_error = 1.0;
  int rounds_to_promotion = -1;
};

LoopOutcome run_shift_loop(
    const std::vector<core::KernelCharacterization>& clean,
    const std::vector<core::KernelCharacterization>& shifted,
    const core::PredictorPtr& clean_model, exec::Executor& executor) {
  obs::Registry metrics;
  serve::ModelRegistry registry{{.retain_limit = 4}};
  registry.publish(clean_model);

  adapt::AdaptOptions options;
  options.metrics = &metrics;
  // CUSUM rather than Page-Hinkley: after a rejected canary resets the
  // detectors, the still-unexplained bias must be able to re-fire them
  // (PH would absorb a bias present from the first post-reset sample),
  // so every reset buys the loop another retrain with a fuller
  // reservoir. The delta absorbs the incumbent's calibration error on
  // its own training distribution.
  options.drift.method = adapt::DriftDetector::Method::Cusum;
  options.drift.threshold = 2.0;
  options.drift.delta = 0.02;
  options.drift.grace_samples = 8;
  options.canary.shadow_fraction = 1.0;
  options.canary.min_evals = 8;
  options.canary.error_margin = 0.02;
  options.promoter.probation_observations = 12;
  adapt::AdaptController controller{registry, executor, clean, options};

  // Clean phase: the incumbent predicts its own training distribution;
  // residuals are calibration noise and the loop stays quiet.
  for (int round = 0; round < 4; ++round) {
    for (const auto& truth : clean) {
      controller.observe(AdaptCanaryTest::feedback_for(
          *registry.current().model, truth, truth));
    }
  }
  const serve::AdaptStats quiet = controller.adapt_stats();
  EXPECT_EQ(quiet.drift_events, 0u);
  EXPECT_EQ(quiet.retrains, 0u);

  // Shift: every observation now comes from the shifted world, predicted
  // by whatever model is current at that moment (as a serving loop
  // would). Drift -> retrain -> canary -> promote.
  LoopOutcome outcome;
  for (int round = 0; round < 40; ++round) {
    for (std::size_t i = 0; i < shifted.size(); ++i) {
      const serve::VersionedModel current = registry.current();
      // The serving side still predicts from its *retained* pre-shift
      // profile; only the measurements (and the labels a
      // re-characterization would yield) come from the shifted world.
      controller.observe(AdaptCanaryTest::feedback_for(*current.model,
                                                       clean[i], shifted[i]));
      // Synchronization point: a scheduled retrain completes before the
      // next observation, so the decision sequence is identical whether
      // the executor is the serial inline one or a thread pool.
      controller.wait_for_retrain();
    }
    if (controller.adapt_stats().promotions > 0 &&
        outcome.rounds_to_promotion < 0) {
      outcome.rounds_to_promotion = round + 1;
    }
    if (outcome.rounds_to_promotion > 0 && round >= outcome.rounds_to_promotion + 1) {
      break;  // a couple of post-promotion rounds cover probation
    }
  }
  outcome.stats = controller.adapt_stats();
  outcome.versions = registry.versions();
  outcome.final_model = registry.current().model->serialize();
  outcome.recovered_error =
      AdaptCanaryTest::mean_error(*registry.current().model, shifted);
  return outcome;
}

TEST_F(AdaptCanaryTest, EndToEndDriftRetrainCanaryPromote) {
  const LoopOutcome outcome =
      run_shift_loop(*clean_, *shifted_, clean_model_,
                     exec::inline_executor());
  EXPECT_GE(outcome.stats.drift_events, 1u);
  EXPECT_GE(outcome.stats.retrains, 1u);
  EXPECT_GE(outcome.stats.canary_accepted, 1u);
  EXPECT_GE(outcome.stats.promotions, 1u);
  EXPECT_EQ(outcome.stats.rollbacks, 0u);
  EXPECT_GT(outcome.rounds_to_promotion, 0);
  ASSERT_GE(outcome.versions.size(), 2u);

  // Recovery: the promoted model's selection error in the shifted world
  // is within 10% (plus a small absolute allowance for retraining from
  // reservoir-skewed data) of the pre-shift baseline.
  const double baseline = mean_error(*clean_model_, *clean_);
  EXPECT_LE(outcome.recovered_error, 1.1 * baseline + 0.05)
      << "baseline " << baseline << ", recovered " << outcome.recovered_error;
  // And far better than not adapting at all.
  EXPECT_LT(outcome.recovered_error, mean_error(*clean_model_, *shifted_));
}

TEST_F(AdaptCanaryTest, LoopIsDeterministicUnderAFixedSeed) {
  const LoopOutcome first =
      run_shift_loop(*clean_, *shifted_, clean_model_,
                     exec::inline_executor());
  exec::ThreadPool pool{2};
  const LoopOutcome second =
      run_shift_loop(*clean_, *shifted_, clean_model_, pool);
  // Identical decision sequence and identical promoted model, serial or
  // pooled: every decision is a pure function of the observation stream.
  EXPECT_EQ(first.stats, second.stats);
  EXPECT_EQ(first.versions, second.versions);
  EXPECT_EQ(first.rounds_to_promotion, second.rounds_to_promotion);
  EXPECT_EQ(first.final_model, second.final_model);
}

TEST_F(AdaptCanaryTest, ServingIsNotBlockedByABackgroundRetrain) {
  obs::Registry metrics;
  serve::ModelRegistry registry;
  registry.publish(clean_model_);

  // Enough seed data to make the retrain take real wall-clock time, so
  // the serving-while-retraining window below is reliably observable.
  std::vector<core::KernelCharacterization> seeds;
  for (int copy = 0; copy < 5; ++copy) {
    for (const auto& truth : *clean_) {
      seeds.push_back(truth);
      seeds.back().instance_id += "+copy" + std::to_string(copy);
    }
  }

  exec::ThreadPool pool{2};
  adapt::AdaptOptions options;
  options.metrics = &metrics;
  // CUSUM: the wire feedback is shifted from the first sample, a
  // sustained bias Page-Hinkley would absorb into its running mean.
  options.drift.method = adapt::DriftDetector::Method::Cusum;
  options.drift.threshold = 2.0;
  options.drift.delta = 0.01;
  options.drift.grace_samples = 5;
  options.canary.shadow_fraction = 1.0;
  adapt::AdaptController controller{registry, pool, seeds, options};

  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::Server server{registry, server_options};
  server.set_adapt_sink(&controller);

  const auto wire_feedback = [&](const core::KernelCharacterization& truth,
                                 std::uint64_t id) {
    const adapt::Feedback observation =
        feedback_for(*clean_model_, clean_->front(), truth);
    serve::FeedbackRequest request;
    request.request_id = id;
    request.cap_w = observation.cap_w;
    request.predicted_power_w = observation.predicted_power_w;
    request.predicted_performance = observation.predicted_performance;
    request.measured_power_w = observation.measured_power_w;
    request.measured_performance = observation.measured_performance;
    request.samples = observation.samples;
    std::vector<std::uint8_t> frame;
    serve::encode_feedback_request(request, frame);
    const serve::Decoded decoded = serve::decode_frame(server.serve_frame(frame));
    EXPECT_EQ(decoded.status, serve::DecodeStatus::Ok);
    EXPECT_EQ(decoded.feedback_response.status, serve::ResponseStatus::Ok);
  };

  // Shifted feedback for one kernel, repeated: one cluster's CUSUM
  // accumulates the bias until drift fires and a retrain is scheduled on
  // the pool.
  std::uint64_t id = 1;
  for (int i = 0; i < 200 && !controller.retrain_inflight(); ++i) {
    wire_feedback(shifted_->front(), id++);
  }
  ASSERT_TRUE(controller.retrain_inflight())
      << "drift never fired over the wire feedback stream";

  // Serving stays up and fast while the retrain grinds in the background.
  serve::SelectRequest request;
  request.cap_w = kCapW;
  std::size_t served_during_retrain = 0;
  std::chrono::nanoseconds worst{0};
  while (controller.retrain_inflight() && served_during_retrain < 10000) {
    request.request_id = 100000 + served_during_retrain;
    request.samples =
        (*clean_)[served_during_retrain % clean_->size()].samples;
    const auto start = std::chrono::steady_clock::now();
    const serve::SelectResponse response = server.select(request);
    worst = std::max(worst, std::chrono::steady_clock::now() - start);
    ASSERT_EQ(response.status, serve::ResponseStatus::Ok);
    ++served_during_retrain;
  }
  EXPECT_GT(served_during_retrain, 0u);
  // Generous bound (TSan headroom): a blocked server would exceed it by
  // orders of magnitude, a healthy one stays far under.
  EXPECT_LT(worst, std::chrono::seconds{5});

  controller.wait_for_retrain();
  const serve::AdaptStats stats = controller.adapt_stats();
  EXPECT_GE(stats.drift_events, 1u);
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.retrain_failures, 0u);
  EXPECT_GT(stats.observations, 0u);
  EXPECT_GT(server.metrics_snapshot().feedback, 0u);

  // The wire stats scrape reports the same adapt state.
  serve::StatsRequest stats_request;
  stats_request.request_id = 7;
  std::vector<std::uint8_t> frame;
  serve::encode_stats_request(stats_request, frame);
  const serve::Decoded decoded = serve::decode_frame(server.serve_frame(frame));
  ASSERT_EQ(decoded.status, serve::DecodeStatus::Ok);
  EXPECT_TRUE(decoded.stats_response.adapt.attached);
  EXPECT_EQ(decoded.stats_response.adapt.retrains, 1u);
  EXPECT_GT(decoded.stats_response.adapt.observations, 0u);
}

TEST_F(AdaptCanaryTest, FeedbackWithoutASinkIsUnsupported) {
  serve::ModelRegistry registry;
  registry.publish(clean_model_);
  serve::Server server{registry, {}};
  serve::FeedbackRequest request;
  request.request_id = 3;
  request.predicted_power_w = 10.0;
  request.predicted_performance = 1.0;
  request.measured_power_w = 11.0;
  request.measured_performance = 0.9;
  std::vector<std::uint8_t> frame;
  serve::encode_feedback_request(request, frame);
  const serve::Decoded decoded = serve::decode_frame(server.serve_frame(frame));
  ASSERT_EQ(decoded.status, serve::DecodeStatus::Ok);
  EXPECT_EQ(decoded.feedback_response.status,
            serve::ResponseStatus::Unsupported);
  // The stats scrape reports no adapt state attached.
  serve::StatsRequest stats_request;
  std::vector<std::uint8_t> stats_frame;
  serve::encode_stats_request(stats_request, stats_frame);
  EXPECT_FALSE(serve::decode_frame(server.serve_frame(stats_frame))
                   .stats_response.adapt.attached);
}

TEST_F(AdaptCanaryTest, ServedRequestsFeedTheShadowCanary) {
  obs::Registry metrics;
  serve::ModelRegistry registry;
  registry.publish(clean_model_);

  adapt::AdaptOptions options;
  options.metrics = &metrics;
  options.drift.threshold = 1e9;
  options.canary.shadow_fraction = 1.0;
  adapt::AdaptController controller{registry, exec::inline_executor(), *clean_,
                                    options};
  serve::Server server{registry, {}};
  server.set_adapt_sink(&controller);

  controller.begin_canary(shifted_model_);
  serve::SelectRequest request;
  request.request_id = 1;
  request.cap_w = kCapW;
  request.samples = clean_->front().samples;
  ASSERT_EQ(server.select(request).status, serve::ResponseStatus::Ok);
  const serve::AdaptStats stats = controller.adapt_stats();
  EXPECT_EQ(stats.shadow_evals, 1u);
  EXPECT_EQ(server.metrics_snapshot().shadowed, 1u);
}

TEST_F(AdaptCanaryTest, AdoptModelRepredictsTrackedKernels) {
  soc::Machine machine{soc::MachineSpec{}, 4242};
  const auto suite = workloads::Suite::standard();
  std::vector<core::PredictionFeedback> feedbacks;
  core::OnlineRuntime::Options options;
  options.power_cap_w = kCapW;
  options.on_feedback = [&](const core::PredictionFeedback& feedback) {
    feedbacks.push_back(feedback);
  };
  core::OnlineRuntime runtime{machine, clean_model_, options};
  const auto& instance = suite.instances().front();
  const core::KernelKey key{instance.kernel, "main", 10};
  for (int i = 0; i < 6; ++i) {
    runtime.invoke(key, instance);
  }
  ASSERT_EQ(runtime.phase(key), core::OnlineRuntime::Phase::Scheduled);
  // Steady-state invocations (after the two samples) emitted feedback
  // with the prediction the configuration was selected on.
  ASSERT_GE(feedbacks.size(), 3u);
  EXPECT_EQ(feedbacks.front().key, key);
  EXPECT_GT(feedbacks.front().predicted_power_w, 0.0);
  EXPECT_GT(feedbacks.front().measured_power_w, 0.0);
  EXPECT_DOUBLE_EQ(feedbacks.front().cap_w, kCapW);

  // Hot-swap to the shifted model: the tracked kernel is re-predicted
  // from its retained samples without re-sampling, and keeps serving.
  EXPECT_EQ(runtime.adopt_model(shifted_model_), 1u);
  EXPECT_EQ(runtime.phase(key), core::OnlineRuntime::Phase::Scheduled);
  ASSERT_TRUE(runtime.scheduled_config(key).has_value());
  const std::size_t before = feedbacks.size();
  runtime.invoke(key, instance);
  EXPECT_EQ(feedbacks.size(), before + 1);  // feedback keeps flowing
}

}  // namespace
}  // namespace acsel
