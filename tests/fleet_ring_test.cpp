// Consistent-hash ring properties the fleet's routing leans on: stability
// under membership churn (one shard's arrival or departure moves ~1/N of
// the keys, never a reshuffle), order-independence (two routers agreeing
// on the shard set agree on every owner), and distinct-fallback walks.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fleet/hash_ring.h"
#include "util/rng.h"

namespace {

using namespace acsel;
using fleet::HashRing;

/// A seeded population of kernel-cluster keys, hashed the way the router
/// hashes them (benchmark/input/kernel strings).
std::vector<std::uint64_t> seeded_keys(std::uint64_t seed, std::size_t n) {
  Rng rng{seed};
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string name = "bench" + std::to_string(rng.uniform_index(40)) +
                             "\x1finput" + std::to_string(i) + "\x1fkernel" +
                             std::to_string(rng.uniform_index(1000));
    keys.push_back(fleet::hash_bytes(name));
  }
  return keys;
}

HashRing ring_of(std::size_t shards, std::size_t vnodes = 64) {
  HashRing ring{vnodes};
  for (std::size_t s = 0; s < shards; ++s) {
    ring.add(static_cast<std::uint32_t>(s));
  }
  return ring;
}

TEST(FleetRing, OwnerIsDeterministicAndOrderIndependent) {
  const auto keys = seeded_keys(1, 500);
  HashRing forward{64};
  HashRing backward{64};
  for (std::uint32_t s = 0; s < 8; ++s) {
    forward.add(s);
    backward.add(7 - s);
  }
  for (const std::uint64_t key : keys) {
    EXPECT_EQ(forward.owner(key), backward.owner(key));
  }
}

TEST(FleetRing, RemovedShardRejoinsIdentically) {
  const auto keys = seeded_keys(2, 500);
  HashRing ring = ring_of(8);
  std::vector<std::uint32_t> before;
  for (const std::uint64_t key : keys) {
    before.push_back(ring.owner(key));
  }
  ring.remove(3);
  ring.add(3);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ring.owner(keys[i]), before[i]);
  }
}

// The tentpole property, as a property test over seeded key populations:
// adding one shard to an N-shard ring moves about 1/(N+1) of the keys —
// and every move goes *to* the new shard, never between old shards.
TEST(FleetRing, AddingOneShardMovesAboutOneNthOfKeys) {
  constexpr std::size_t kKeys = 4000;
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
    const auto keys = seeded_keys(seed, kKeys);
    for (const std::size_t shards : {4u, 8u, 16u}) {
      HashRing ring = ring_of(shards);
      std::vector<std::uint32_t> before;
      before.reserve(keys.size());
      for (const std::uint64_t key : keys) {
        before.push_back(ring.owner(key));
      }
      ring.add(static_cast<std::uint32_t>(shards));
      std::size_t moved = 0;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::uint32_t now = ring.owner(keys[i]);
        if (now != before[i]) {
          ++moved;
          // A key never moves between pre-existing shards.
          EXPECT_EQ(now, static_cast<std::uint32_t>(shards));
        }
      }
      const double expected =
          static_cast<double>(kKeys) / static_cast<double>(shards + 1);
      // Consistent hashing is statistical: allow a factor-2 band around
      // the ideal share (a naive mod-N rehash moves (N-1)/N of the keys
      // and lands orders of magnitude outside this band).
      EXPECT_GT(static_cast<double>(moved), expected * 0.5)
          << "seed " << seed << ", shards " << shards;
      EXPECT_LT(static_cast<double>(moved), expected * 2.0)
          << "seed " << seed << ", shards " << shards;
    }
  }
}

TEST(FleetRing, RemovingOneShardMovesOnlyItsKeys) {
  constexpr std::size_t kKeys = 4000;
  for (const std::uint64_t seed : {7u, 17u, 27u}) {
    const auto keys = seeded_keys(seed, kKeys);
    HashRing ring = ring_of(8);
    std::vector<std::uint32_t> before;
    before.reserve(keys.size());
    for (const std::uint64_t key : keys) {
      before.push_back(ring.owner(key));
    }
    ring.remove(5);
    std::size_t orphaned = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const std::uint32_t now = ring.owner(keys[i]);
      if (before[i] == 5) {
        ++orphaned;
        EXPECT_NE(now, 5u);
      } else {
        // Keys the departed shard never owned do not move at all.
        EXPECT_EQ(now, before[i]);
      }
    }
    const double expected = static_cast<double>(kKeys) / 8.0;
    EXPECT_GT(static_cast<double>(orphaned), expected * 0.5);
    EXPECT_LT(static_cast<double>(orphaned), expected * 2.0);
  }
}

TEST(FleetRing, LoadSpreadIsBounded) {
  const auto keys = seeded_keys(99, 8000);
  HashRing ring = ring_of(8, 128);
  std::map<std::uint32_t, std::size_t> load;
  for (const std::uint64_t key : keys) {
    ++load[ring.owner(key)];
  }
  ASSERT_EQ(load.size(), 8u);  // every shard owns something
  const double ideal = 8000.0 / 8.0;
  for (const auto& [shard, count] : load) {
    EXPECT_GT(static_cast<double>(count), ideal * 0.5) << "shard " << shard;
    EXPECT_LT(static_cast<double>(count), ideal * 1.5) << "shard " << shard;
  }
}

TEST(FleetRing, OwnersReturnsDistinctShardsOwnerFirst) {
  const auto keys = seeded_keys(5, 200);
  HashRing ring = ring_of(6);
  for (const std::uint64_t key : keys) {
    const auto owners = ring.owners(key, 3);
    ASSERT_EQ(owners.size(), 3u);
    EXPECT_EQ(owners[0], ring.owner(key));
    std::vector<std::uint32_t> sorted = owners;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  }
  // Asking for more shards than exist returns them all, once each.
  const auto all = ring.owners(keys[0], 99);
  EXPECT_EQ(all.size(), 6u);
}

TEST(FleetRing, AddAndRemoveAbsentAreNoOps) {
  HashRing ring = ring_of(4);
  const auto keys = seeded_keys(3, 100);
  std::vector<std::uint32_t> before;
  for (const std::uint64_t key : keys) {
    before.push_back(ring.owner(key));
  }
  ring.add(2);      // already present
  ring.remove(77);  // never added
  EXPECT_EQ(ring.shard_count(), 4u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ring.owner(keys[i]), before[i]);
  }
}

}  // namespace
