// Tests for the counter-based power estimator and the regression
// inference extensions (coefficient standard errors / t-statistics).
#include <gtest/gtest.h>

#include <cmath>

#include "core/power_estimator.h"
#include "eval/characterize.h"
#include "linalg/regression.h"
#include "soc/machine.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/suite.h"

namespace acsel::core {
namespace {

class PowerEstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new soc::Machine{soc::MachineSpec{}, 1212};
    const auto suite = workloads::Suite::standard();
    train_ = new std::vector<profile::KernelRecord>{};
    test_ = new std::vector<profile::KernelRecord>{};
    // Characterize a slice of the suite; split records into train/test.
    std::size_t index = 0;
    for (std::size_t i = 0; i < suite.size(); i += 3) {
      const auto c =
          eval::characterize_instance(*machine_, suite.instances()[i]);
      for (const auto& record : c.per_config) {
        (++index % 5 == 0 ? *test_ : *train_).push_back(record);
      }
    }
  }
  static void TearDownTestSuite() {
    delete test_;
    delete train_;
    delete machine_;
  }
  static soc::Machine* machine_;
  static std::vector<profile::KernelRecord>* train_;
  static std::vector<profile::KernelRecord>* test_;
};

soc::Machine* PowerEstimatorTest::machine_ = nullptr;
std::vector<profile::KernelRecord>* PowerEstimatorTest::train_ = nullptr;
std::vector<profile::KernelRecord>* PowerEstimatorTest::test_ = nullptr;

TEST_F(PowerEstimatorTest, FitsWithGoodR2) {
  const auto estimator = PowerEstimator::fit(*train_);
  EXPECT_GT(estimator.cpu_r_squared(), 0.8);
  EXPECT_GT(estimator.nbgpu_r_squared(), 0.8);
}

TEST_F(PowerEstimatorTest, HeldOutMapeIsSmall) {
  const auto estimator = PowerEstimator::fit(*train_);
  EXPECT_LT(estimator.mape(*test_), 12.0);
}

TEST_F(PowerEstimatorTest, EstimatesBothDomainsPositively) {
  const auto estimator = PowerEstimator::fit(*train_);
  for (const auto& record : *test_) {
    const auto estimate = estimator.estimate(record);
    EXPECT_GT(estimate.cpu_w, 0.0);
    EXPECT_GT(estimate.nbgpu_w, 0.0);
    EXPECT_LT(estimate.total(), 150.0);
  }
}

TEST_F(PowerEstimatorTest, GpuRecordsShiftPowerToNbGpuDomain) {
  const auto estimator = PowerEstimator::fit(*train_);
  double cpu_dom = 0.0;
  double gpu_dom = 0.0;
  std::size_t cpu_n = 0;
  std::size_t gpu_n = 0;
  for (const auto& record : *test_) {
    const auto estimate = estimator.estimate(record);
    if (record.config.device == hw::Device::Cpu) {
      cpu_dom += estimate.cpu_w / estimate.total();
      ++cpu_n;
    } else {
      gpu_dom += estimate.nbgpu_w / estimate.total();
      ++gpu_n;
    }
  }
  ASSERT_GT(cpu_n, 0u);
  ASSERT_GT(gpu_n, 0u);
  EXPECT_GT(cpu_dom / static_cast<double>(cpu_n), 0.35);
  EXPECT_GT(gpu_dom / static_cast<double>(gpu_n), 0.6);
}

TEST_F(PowerEstimatorTest, UnfittedAndTooFewRecordsRejected) {
  const PowerEstimator empty;
  EXPECT_THROW(empty.estimate(train_->front()), Error);
  std::vector<profile::KernelRecord> few(train_->begin(),
                                         train_->begin() + 5);
  EXPECT_THROW(PowerEstimator::fit(few), Error);
  const auto estimator = PowerEstimator::fit(*train_);
  EXPECT_THROW(estimator.mape({}), Error);
}

// ------------------------------------------- regression inference (§VI) --

TEST(RegressionInference, StandardErrorsMatchClosedForm) {
  // Simple regression y = a + b x: se(b) = s / sqrt(Sxx).
  Rng rng{99};
  const std::size_t n = 200;
  linalg::Matrix x{n, 1};
  std::vector<double> y(n);
  double sxx = 0.0;
  double mean_x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 10.0);
    mean_x += x(i, 0);
    y[i] = 2.0 + 3.0 * x(i, 0) + rng.normal(0.0, 1.0);
  }
  mean_x /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (x(i, 0) - mean_x) * (x(i, 0) - mean_x);
  }
  const auto model = linalg::LinearModel::fit(x, y);
  ASSERT_EQ(model.coefficient_stddev().size(), 1u);
  const double expected_se = model.residual_stddev() / std::sqrt(sxx);
  EXPECT_NEAR(model.coefficient_stddev()[0], expected_se,
              0.1 * expected_se);
  EXPECT_GT(model.intercept_stddev(), 0.0);
}

TEST(RegressionInference, StrongSlopeHasLargeTStatistic) {
  Rng rng{7};
  const std::size_t n = 150;
  linalg::Matrix x{n, 2};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);   // strong predictor
    x(i, 1) = rng.uniform(0.0, 1.0);   // pure noise column
    y[i] = 5.0 * x(i, 0) + rng.normal(0.0, 0.3);
  }
  const auto model = linalg::LinearModel::fit(x, y);
  EXPECT_GT(std::abs(model.t_statistic(0)), 10.0);
  EXPECT_LT(std::abs(model.t_statistic(1)), 4.0);
  EXPECT_THROW(model.t_statistic(2), acsel::Error);
}

TEST(RegressionInference, ParsedModelReportsZeroT) {
  linalg::Matrix x{4, 1};
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  x(3, 0) = 5;
  const std::vector<double> y{2.1, 3.9, 6.2, 9.8};
  const auto model = linalg::LinearModel::fit(x, y);
  EXPECT_NE(model.t_statistic(0), 0.0);
  const auto parsed = linalg::LinearModel::parse(model.serialize());
  EXPECT_EQ(parsed.t_statistic(0), 0.0);  // SEs are not serialized
}

}  // namespace
}  // namespace acsel::core
