// Tests for PAM k-medoids relational clustering and silhouette widths.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "linalg/matrix.h"
#include "stats/pam.h"
#include "util/error.h"
#include "util/rng.h"

namespace acsel::stats {
namespace {

using linalg::Matrix;

/// Euclidean distance matrix for 1-D points.
Matrix distance_matrix(const std::vector<double>& points) {
  const std::size_t n = points.size();
  Matrix d{n, n};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d(i, j) = std::abs(points[i] - points[j]);
    }
  }
  return d;
}

TEST(Pam, SingleClusterPicksMedianLikeMedoid) {
  const auto d = distance_matrix({0.0, 1.0, 2.0, 3.0, 100.0});
  const auto result = pam(d, 1);
  ASSERT_EQ(result.medoids.size(), 1u);
  EXPECT_EQ(result.medoids[0], 2u);  // point 2.0 minimizes total distance
  for (const std::size_t a : result.assignment) {
    EXPECT_EQ(a, 0u);
  }
}

TEST(Pam, SeparatesTwoObviousClusters) {
  const auto d = distance_matrix({0.0, 0.1, 0.2, 10.0, 10.1, 10.2});
  const auto result = pam(d, 2);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[1], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_EQ(result.assignment[4], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(Pam, MedoidsAssignedToOwnCluster) {
  Rng rng{4242};
  std::vector<double> points(30);
  for (auto& p : points) {
    p = rng.uniform(0.0, 100.0);
  }
  const auto d = distance_matrix(points);
  const auto result = pam(d, 4);
  for (std::size_t m = 0; m < result.medoids.size(); ++m) {
    EXPECT_EQ(result.assignment[result.medoids[m]], m);
  }
}

TEST(Pam, EveryItemAssignedToNearestMedoid) {
  Rng rng{808};
  std::vector<double> points(25);
  for (auto& p : points) {
    p = rng.uniform(0.0, 50.0);
  }
  const auto d = distance_matrix(points);
  const auto result = pam(d, 3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double assigned = d(i, result.medoids[result.assignment[i]]);
    for (const std::size_t m : result.medoids) {
      EXPECT_LE(assigned, d(i, m) + 1e-12);
    }
  }
}

TEST(Pam, KEqualsNMakesEveryItemAMedoid) {
  const auto d = distance_matrix({1.0, 5.0, 9.0});
  const auto result = pam(d, 3);
  EXPECT_EQ(result.total_cost, 0.0);
  std::set<std::size_t> medoids(result.medoids.begin(), result.medoids.end());
  EXPECT_EQ(medoids.size(), 3u);
}

TEST(Pam, CostIsSumOfAssignedDistances) {
  const auto d = distance_matrix({0.0, 1.0, 10.0, 11.0});
  const auto result = pam(d, 2);
  double expected = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    expected += d(i, result.medoids[result.assignment[i]]);
  }
  EXPECT_DOUBLE_EQ(result.total_cost, expected);
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
}

TEST(Pam, MoreClustersNeverIncreaseCost) {
  Rng rng{31337};
  std::vector<double> points(40);
  for (auto& p : points) {
    p = rng.uniform(0.0, 1.0);
  }
  const auto d = distance_matrix(points);
  double prev = pam(d, 1).total_cost;
  for (std::size_t k = 2; k <= 8; ++k) {
    const double cost = pam(d, k).total_cost;
    EXPECT_LE(cost, prev + 1e-12) << "k=" << k;
    prev = cost;
  }
}

TEST(Pam, RejectsInvalidK) {
  const auto d = distance_matrix({1.0, 2.0});
  EXPECT_THROW(pam(d, 0), Error);
  EXPECT_THROW(pam(d, 3), Error);
}

TEST(Pam, RejectsAsymmetricMatrix) {
  Matrix d{2, 2};
  d(0, 1) = 1.0;
  d(1, 0) = 2.0;
  EXPECT_THROW(pam(d, 1), Error);
}

TEST(Pam, RejectsNonZeroDiagonal) {
  Matrix d{2, 2};
  d(0, 0) = 0.5;
  EXPECT_THROW(pam(d, 1), Error);
}

TEST(Pam, RejectsNegativeEntries) {
  Matrix d{2, 2};
  d(0, 1) = -1.0;
  d(1, 0) = -1.0;
  EXPECT_THROW(pam(d, 1), Error);
}

TEST(Silhouette, PerfectSeparationNearOne) {
  const auto d = distance_matrix({0.0, 0.01, 10.0, 10.01});
  const auto result = pam(d, 2);
  EXPECT_GT(silhouette(d, result.assignment), 0.95);
}

TEST(Silhouette, WorseForWrongK) {
  // Three well-separated groups: k=3 should beat k=2.
  const auto d =
      distance_matrix({0.0, 0.1, 5.0, 5.1, 10.0, 10.1});
  const auto two = pam(d, 2);
  const auto three = pam(d, 3);
  EXPECT_GT(silhouette(d, three.assignment), silhouette(d, two.assignment));
}

TEST(Silhouette, SingletonsContributeZero) {
  const auto d = distance_matrix({0.0, 10.0});
  const std::vector<std::size_t> assignment{0, 1};
  EXPECT_DOUBLE_EQ(silhouette(d, assignment), 0.0);
}

TEST(Silhouette, ValidatesAssignmentSize) {
  const auto d = distance_matrix({0.0, 1.0, 2.0});
  const std::vector<std::size_t> wrong{0, 1};
  EXPECT_THROW(silhouette(d, wrong), Error);
}

// Property sweep: PAM invariants over random instances.
class PamProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PamProperty, InvariantsHold) {
  Rng rng{GetParam()};
  const std::size_t n = 5 + rng.uniform_index(30);
  const std::size_t k = 1 + rng.uniform_index(std::min<std::size_t>(n, 6));
  std::vector<double> points(n);
  for (auto& p : points) {
    p = rng.uniform(0.0, 100.0);
  }
  const auto d = distance_matrix(points);
  const auto result = pam(d, k);

  ASSERT_EQ(result.medoids.size(), k);
  ASSERT_EQ(result.assignment.size(), n);
  // Medoids are distinct.
  std::set<std::size_t> distinct(result.medoids.begin(),
                                 result.medoids.end());
  EXPECT_EQ(distinct.size(), k);
  // Labels in range; every cluster non-empty (its medoid belongs to it).
  for (const std::size_t label : result.assignment) {
    EXPECT_LT(label, k);
  }
  for (std::size_t m = 0; m < k; ++m) {
    EXPECT_EQ(result.assignment[result.medoids[m]], m);
  }
  EXPECT_GE(result.total_cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PamProperty,
                         ::testing::Range<std::uint64_t>(500, 525));

}  // namespace
}  // namespace acsel::stats
