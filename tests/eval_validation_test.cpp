// Tests for the prediction-accuracy assessment and the microbenchmark
// training suite.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "eval/characterize.h"
#include "eval/oracle.h"
#include "eval/validation.h"
#include "hw/config_space.h"
#include "soc/machine.h"
#include "util/error.h"
#include "workloads/microbench.h"
#include "workloads/suite.h"

namespace acsel::eval {
namespace {

/// A prediction that copies the oracle exactly.
core::Prediction perfect_prediction(const Oracle& oracle) {
  core::Prediction prediction;
  for (std::size_t i = 0; i < oracle.power_w.size(); ++i) {
    core::ClusterModel::Estimate e;
    e.power_w = oracle.power_w[i];
    e.performance = oracle.performance[i];
    prediction.per_config.push_back(e);
  }
  prediction.frontier = oracle.frontier;
  return prediction;
}

TEST(Validation, PerfectPredictionScoresPerfectly) {
  soc::Machine machine{soc::MachineSpec{}, 1};
  const auto suite = workloads::Suite::standard();
  const Oracle oracle =
      build_oracle(machine, suite.instance("LULESH-Small/CalcQForElems"));
  const auto accuracy =
      assess_prediction(perfect_prediction(oracle), oracle);
  EXPECT_NEAR(accuracy.power_mape, 0.0, 1e-9);
  EXPECT_NEAR(accuracy.perf_mape, 0.0, 1e-9);
  // tau-a counts tied pairs (quantized GPU performance levels produce
  // exact ties) as neither concordant nor discordant, so even a perfect
  // prediction sits marginally below 1.
  EXPECT_GT(accuracy.power_rank_tau, 0.99);
  EXPECT_GT(accuracy.perf_rank_tau, 0.99);
  EXPECT_TRUE(accuracy.best_device_match);
  EXPECT_DOUBLE_EQ(accuracy.top_choice_quality, 1.0);
}

TEST(Validation, ScaledPowerShowsUpInMape) {
  soc::Machine machine{soc::MachineSpec{}, 2};
  const auto suite = workloads::Suite::standard();
  const Oracle oracle =
      build_oracle(machine, suite.instance("LU-Medium/lud"));
  auto prediction = perfect_prediction(oracle);
  for (auto& estimate : prediction.per_config) {
    estimate.power_w *= 1.10;  // uniform +10% power error
  }
  const auto accuracy = assess_prediction(prediction, oracle);
  EXPECT_NEAR(accuracy.power_mape, 10.0, 1e-6);
  EXPECT_GT(accuracy.power_rank_tau, 0.99);  // order unchanged
}

TEST(Validation, WrongTopChoicePenalized) {
  soc::Machine machine{soc::MachineSpec{}, 3};
  const auto suite = workloads::Suite::standard();
  const Oracle oracle =
      build_oracle(machine, suite.instance("LU-Medium/lud"));
  auto prediction = perfect_prediction(oracle);
  // Pretend the lowest-power config is the best performer.
  const std::size_t lowest = oracle.frontier.lowest_power().config_index;
  std::vector<double> power(oracle.power_w.size());
  std::vector<double> perf(oracle.performance.size());
  for (std::size_t i = 0; i < power.size(); ++i) {
    power[i] = prediction.per_config[i].power_w;
    perf[i] = prediction.per_config[i].performance;
  }
  perf[lowest] = 1e9;
  prediction.per_config[lowest].performance = 1e9;
  prediction.frontier = pareto::ParetoFrontier::build(power, perf);
  const auto accuracy = assess_prediction(prediction, oracle);
  EXPECT_LT(accuracy.top_choice_quality, 0.2);
  EXPECT_FALSE(accuracy.best_device_match);  // LU's true best is the GPU
}

TEST(Validation, SummaryAveragesFields) {
  PredictionAccuracy a;
  a.power_mape = 10.0;
  a.best_device_match = true;
  a.top_choice_quality = 1.0;
  PredictionAccuracy b;
  b.power_mape = 30.0;
  b.best_device_match = false;
  b.top_choice_quality = 0.5;
  const auto summary = summarize_accuracy({a, b});
  EXPECT_EQ(summary.kernels, 2u);
  EXPECT_DOUBLE_EQ(summary.power_mape, 20.0);
  EXPECT_DOUBLE_EQ(summary.best_device_match_rate, 0.5);
  EXPECT_DOUBLE_EQ(summary.top_choice_quality, 0.75);
}

TEST(Validation, EmptySummaryIsZero) {
  const auto summary = summarize_accuracy({});
  EXPECT_EQ(summary.kernels, 0u);
  EXPECT_DOUBLE_EQ(summary.power_mape, 0.0);
}

TEST(Validation, SizeMismatchRejected) {
  soc::Machine machine{soc::MachineSpec{}, 4};
  const auto suite = workloads::Suite::standard();
  const Oracle oracle =
      build_oracle(machine, suite.instance("LU-Medium/lud"));
  core::Prediction truncated = perfect_prediction(oracle);
  truncated.per_config.pop_back();
  EXPECT_THROW(assess_prediction(truncated, oracle), Error);
}

// ----------------------------------------------------------- microbench --

TEST(Microbench, GridSizeAndValidity) {
  const auto bench = workloads::microbenchmark_suite(3);
  EXPECT_EQ(bench.kernels.size(), 27u);
  EXPECT_EQ(bench.name, "Micro");
  for (const auto& kernel : bench.kernels) {
    EXPECT_NO_THROW(kernel.traits.validate()) << kernel.name;
  }
  EXPECT_THROW(workloads::microbenchmark_suite(1), Error);
  EXPECT_THROW(workloads::microbenchmark_suite(9), Error);
}

TEST(Microbench, CoversBothDeviceAffinities) {
  // The grid must contain clearly GPU-friendly and clearly CPU-friendly
  // kernels, or it cannot teach the model device selection.
  soc::Machine machine{soc::MachineSpec{}, 5};
  const workloads::Suite micro{{workloads::microbenchmark_suite(3)}};
  const hw::ConfigSpace space;
  std::size_t gpu_best = 0;
  for (const auto& instance : micro.instances()) {
    const Oracle oracle = build_oracle(machine, instance);
    if (space.at(oracle.frontier.best_performance().config_index).device ==
        hw::Device::Gpu) {
      ++gpu_best;
    }
  }
  EXPECT_GE(gpu_best, 5u);
  EXPECT_LE(gpu_best, micro.size() - 5);
}

TEST(Microbench, ModelTrainedOnMicrobenchmarksPredictsApps) {
  // The §III-B claim: microbenchmarks can form the training set. Train on
  // the synthetic grid, validate prediction accuracy on real app kernels.
  soc::Machine machine{soc::MachineSpec{}, 6};
  const workloads::Suite micro{{workloads::microbenchmark_suite(3)}};
  const auto training = characterize(machine, micro);
  const auto model = core::train(training).model;

  const auto apps = workloads::Suite::standard();
  std::vector<PredictionAccuracy> assessments;
  for (const auto& id :
       {"LULESH-Large/CalcFBHourglassForce", "CoMD-LJ/ComputeForce",
        "SMC-Default/ChemistryRates", "LU-Large/lud"}) {
    const auto& instance = apps.instance(id);
    const auto characterization =
        characterize_instance(machine, instance);
    const Oracle oracle = build_oracle(machine, instance);
    assessments.push_back(assess_prediction(
        model.predict(characterization.samples), oracle));
  }
  const auto summary = summarize_accuracy(assessments);
  EXPECT_LT(summary.power_mape, 30.0);
  EXPECT_GT(summary.perf_rank_tau, 0.4);
  EXPECT_GT(summary.top_choice_quality, 0.5);
}

}  // namespace
}  // namespace acsel::eval
